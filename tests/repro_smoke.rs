//! Smoke tests for the experiment library: every `repro` experiment
//! must run end-to-end at micro scale and produce a well-formed report.
//! (The real numbers come from `cargo run --release --bin repro`; this
//! guards the plumbing.)

use dist_clk::bench::experiments;
use dist_clk::bench::testbed::Scale;

fn micro() -> Scale {
    Scale {
        runs: 1,
        clk_kicks: 30,
        size_factor: 0.07,
        nodes: 4,
        kicks_per_call: 3,
    }
}

#[test]
fn every_experiment_id_is_known() {
    for id in experiments::ALL {
        // Don't run them all here (cost); just make sure dispatch knows
        // every advertised id by probing the unknown-id path once.
        assert!(experiments::ALL.contains(&id));
    }
    let scale = micro();
    assert!(experiments::run("definitely-not-an-experiment", &scale).is_none());
}

#[test]
fn table4_micro_runs() {
    let report = experiments::run("table4", &micro()).expect("known id");
    assert_eq!(report.id, "table4");
    assert!(report.markdown.contains("| Instance |"));
    assert!(!report.csv.is_empty());
}

#[test]
fn table5_micro_runs() {
    let report = experiments::run("table5", &micro()).expect("known id");
    assert!(report.markdown.contains("Random-Walk"));
}

#[test]
fn messages_micro_runs() {
    let report = experiments::run("messages", &micro()).expect("known id");
    assert!(report.markdown.contains("Broadcasts"));
}

#[test]
fn variator_micro_runs() {
    let report = experiments::run("variator", &micro()).expect("known id");
    assert!(report.markdown.contains("Run A"));
    assert!(report.markdown.contains("Run B"));
}

#[test]
fn figure3_micro_runs() {
    let report = experiments::run("figure3", &micro()).expect("known id");
    // Three configurations per instance.
    assert!(report.csv.len() >= 6, "expected ≥6 series, got {}", report.csv.len());
}
