//! Cross-crate property tests: the optimizer stack preserves tour
//! validity and exact length bookkeeping under arbitrary seeds and
//! sizes.

use dist_clk::distclk::{run_lockstep, DistConfig};
use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy, Optimizer};
use dist_clk::tsp_core::{generate, NeighborLists, Tour};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CLK always returns a valid tour whose recomputed length matches
    /// the reported one, under any seed / kick strategy / size.
    #[test]
    fn clk_invariants(seed in any::<u64>(), n in 40usize..150, which in 0usize..4) {
        let inst = generate::uniform(n, 100_000.0, seed);
        let nl = NeighborLists::build(&inst, 8);
        let cfg = ChainedLkConfig {
            kick: KickStrategy::ALL[which],
            seed,
            ..Default::default()
        };
        let mut engine = ChainedLk::new(&inst, &nl, cfg);
        let res = engine.run(&Budget::kicks(15));
        prop_assert!(res.tour.is_valid());
        prop_assert_eq!(res.tour.length(&inst), res.length);
        // CLK result is never worse than its own construction.
        let qb = dist_clk::lk::construct::quick_boruvka(&inst).length(&inst);
        prop_assert!(res.length <= qb);
    }

    /// LK never worsens a tour and accounts gains exactly, from any
    /// random start.
    #[test]
    fn lk_gain_exactness(seed in any::<u64>(), n in 30usize..120) {
        use dist_clk::lk::lin_kernighan::{lin_kernighan, LinKernighan, LkConfig};
        use rand::{rngs::SmallRng, SeedableRng};
        let inst = generate::clustered(n, 100_000.0, 4, 3_000.0, seed);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tour = Tour::random(n, &mut rng);
        let before = tour.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let mut lk = LinKernighan::new(LkConfig::default());
        let gain = lin_kernighan(&mut lk, &mut opt, &mut tour);
        prop_assert!(gain >= 0);
        prop_assert!(tour.is_valid());
        prop_assert_eq!(tour.length(&inst), before - gain);
    }

    /// The distributed network's reported best equals the recomputed
    /// length of its best tour, for any node count and topology.
    #[test]
    fn distributed_reporting_is_truthful(
        seed in any::<u64>(),
        nodes in 1usize..6,
        topo_ix in 0usize..4,
    ) {
        use dist_clk::p2p::Topology;
        let topo = [Topology::Hypercube, Topology::Ring, Topology::Complete, Topology::Star][topo_ix];
        let inst = generate::uniform(60, 100_000.0, seed % 1000);
        let nl = NeighborLists::build(&inst, 8);
        let cfg = DistConfig {
            nodes,
            topology: topo,
            clk_kicks_per_call: 2,
            budget: Budget::kicks(2),
            seed,
            ..Default::default()
        };
        let res = run_lockstep(&inst, &nl, &cfg);
        prop_assert!(res.best_tour.is_valid());
        prop_assert_eq!(res.best_tour.length(&inst), res.best_length);
        // Every node's best is at least the network best.
        for nr in &res.nodes {
            prop_assert!(nr.best_length >= res.best_length);
        }
    }
}
