//! Integration tests for the Table 2 comparator family.

use dist_clk::heldkarp::{held_karp_bound, AscentConfig};
use dist_clk::lk::lkh_lite::{lkh_lite, LkhLiteConfig};
use dist_clk::lk::multilevel::{multilevel_clk, MultilevelConfig};
use dist_clk::lk::tour_merge::merge_tours;
use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};
use dist_clk::tsp_core::{generate, NeighborLists};

/// Every solver family stays above the Held-Karp bound and below the
/// construction tour — the sandwich every correct TSP heuristic obeys.
#[test]
fn solvers_sandwiched_between_bound_and_construction() {
    let inst = generate::uniform(300, 100_000.0, 11);
    let hk = held_karp_bound(
        &inst,
        &AscentConfig {
            max_iterations: 80,
            ..Default::default()
        },
    )
    .bound;
    let qb = dist_clk::lk::construct::quick_boruvka(&inst).length(&inst);

    let nl = NeighborLists::build(&inst, 10);
    let mut engine = ChainedLk::new(&inst, &nl, ChainedLkConfig::default());
    let clk = engine.run(&Budget::kicks(200)).length;

    let lkh = lkh_lite(
        &inst,
        &LkhLiteConfig {
            trials: 50,
            ascent: AscentConfig {
                max_iterations: 40,
                ..Default::default()
            },
            ..Default::default()
        },
        &Budget::kicks(50),
    )
    .clk
    .length;

    let ml = multilevel_clk(&inst, &MultilevelConfig::default(), 2).length;

    for (name, len) in [("CLK", clk), ("LKH-lite", lkh), ("multilevel", ml)] {
        assert!(len >= hk, "{name} {len} below HK bound {hk}");
        assert!(len <= qb, "{name} {len} worse than bare construction {qb}");
    }
}

/// Tour merging over diverse parents never loses to the best parent
/// and respects the HK bound.
#[test]
fn tour_merge_dominates_parents() {
    let inst = generate::clustered_dimacs(250, 12);
    let nl = NeighborLists::build(&inst, 10);
    let parents: Vec<_> = (0..8)
        .map(|seed| {
            let mut e = ChainedLk::new(
                &inst,
                &nl,
                ChainedLkConfig {
                    kick: KickStrategy::Geometric(12),
                    seed,
                    ..Default::default()
                },
            );
            e.run(&Budget::kicks(20)).tour
        })
        .collect();
    let merged = merge_tours(&inst, &parents);
    let best_parent = parents.iter().map(|p| p.length(&inst)).min().unwrap();
    assert!(merged.is_valid());
    assert!(merged.length(&inst) <= best_parent);
}

/// The α-nearness pipeline runs end to end on every generator family.
#[test]
fn alpha_pipeline_on_all_generators() {
    for inst in [
        generate::uniform(120, 100_000.0, 1),
        generate::clustered_dimacs(120, 2),
        generate::drill_plate(120, 3),
        generate::pcb_like(120, 4),
        generate::road_like(120, 5),
    ] {
        let cfg = LkhLiteConfig {
            trials: 10,
            ascent: AscentConfig {
                max_iterations: 25,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = lkh_lite(&inst, &cfg, &Budget::kicks(10));
        assert!(res.clk.tour.is_valid(), "{}", inst.name());
    }
}
