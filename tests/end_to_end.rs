//! Cross-crate integration tests: the full pipeline from instance
//! generation through the distributed algorithm, over both transports.

use dist_clk::distclk::{run_lockstep, run_threads, DistConfig};
use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};
use dist_clk::p2p::Topology;
use dist_clk::tsp_core::{generate, NeighborLists};

/// The headline claim, statistical miniature: with the same total kick
/// budget, the 8-node cooperative runs are on average at least as good
/// as the standalone CLK runs on a structured instance (the paper's
/// effect is statistical over 10 runs; we average 3 deterministic
/// seeds and allow 0.1% slack).
#[test]
fn distributed_not_worse_at_equal_total_effort() {
    let inst = generate::drill_plate(400, 7);
    let nl = NeighborLists::build(&inst, 10);

    let mut clk_total = 0f64;
    let mut dist_total = 0f64;
    for seed in 1..=3u64 {
        // Standalone: 800 kicks.
        let mut engine = ChainedLk::new(
            &inst,
            &nl,
            ChainedLkConfig {
                seed,
                ..Default::default()
            },
        );
        clk_total += engine.run(&Budget::kicks(800)).length as f64;

        // Distributed: 8 nodes x 100 kicks = same total effort.
        let cfg = DistConfig {
            nodes: 8,
            clk_kicks_per_call: 20,
            budget: Budget::kicks(5), // 5 calls x 20 kicks = 100 kicks/node
            seed,
            ..Default::default()
        };
        dist_total += run_lockstep(&inst, &nl, &cfg).best_length as f64;
    }
    assert!(
        dist_total <= clk_total * 1.001,
        "distributed mean {} worse than standalone mean {}",
        dist_total / 3.0,
        clk_total / 3.0
    );
}

/// A small grid is solved to its provable optimum by the network, and
/// the optimum-found notification shuts everyone down early.
#[test]
fn network_solves_grid_and_terminates() {
    let inst = generate::grid_known_optimum(8, 8, 100.0);
    let nl = NeighborLists::build(&inst, 8);
    let cfg = DistConfig {
        nodes: 4,
        clk_kicks_per_call: 40,
        budget: Budget::kicks(500).with_target(inst.known_optimum().unwrap()),
        seed: 3,
        ..Default::default()
    };
    let res = run_lockstep(&inst, &nl, &cfg);
    assert_eq!(res.best_length, inst.known_optimum().unwrap());
    for n in &res.nodes {
        assert!(
            n.clk_calls < 500,
            "node {} did not terminate early",
            n.id
        );
    }
}

/// Thread-per-node driver over the in-memory transport works with every
/// kicking strategy and topology.
#[test]
fn threads_all_strategies_and_topologies() {
    let inst = generate::uniform(150, 100_000.0, 5);
    let nl = NeighborLists::build(&inst, 8);
    for (strategy, topology) in [
        (KickStrategy::Random, Topology::Ring),
        (KickStrategy::Geometric(12), Topology::Complete),
        (KickStrategy::Close(100), Topology::Star),
        (KickStrategy::RandomWalk(30), Topology::Hypercube),
    ] {
        let mut cfg = DistConfig {
            nodes: 4,
            topology,
            clk_kicks_per_call: 5,
            budget: Budget::kicks(3),
            seed: 4,
            ..Default::default()
        };
        cfg.clk.kick = strategy;
        let res = run_threads(&inst, &nl, &cfg);
        assert!(res.best_tour.is_valid(), "{strategy:?}/{topology:?}");
        assert_eq!(res.best_tour.length(&inst), res.best_length);
    }
}

/// Real TCP loopback: hub bootstrap + hypercube + the node loop.
#[test]
fn tcp_cluster_end_to_end() {
    use dist_clk::distclk::driver::run_over_transports;
    use dist_clk::p2p::hub::bootstrap_local;
    use dist_clk::p2p::Transport;

    let inst = generate::uniform(120, 100_000.0, 6);
    let nl = NeighborLists::build(&inst, 8);
    let nodes = 4;
    let endpoints = bootstrap_local(nodes, Topology::Hypercube).expect("bootstrap");
    // Wait for reverse edges.
    dist_clk::p2p::wait_until(
        || {
            endpoints
                .iter()
                .enumerate()
                .all(|(i, e)| e.neighbors().len() >= Topology::Hypercube.neighbors(i, nodes).len())
        },
        std::time::Duration::from_secs(5),
    );
    let cfg = DistConfig {
        nodes,
        clk_kicks_per_call: 5,
        budget: Budget::kicks(3),
        seed: 7,
        ..Default::default()
    };
    let result = run_over_transports(&inst, &nl, &cfg, endpoints);
    assert_eq!(result.nodes.len(), nodes);
    for r in &result.nodes {
        assert!(r.best_tour.is_valid());
        assert!(r.clk_calls >= 3);
        assert!(!r.aborted);
    }
}

/// The lockstep driver is exactly reproducible across invocations —
/// the property every effort-budgeted experiment rests on.
#[test]
fn lockstep_reproducibility_across_configs() {
    let inst = generate::clustered_dimacs(200, 8);
    let nl = NeighborLists::build(&inst, 8);
    for nodes in [1usize, 2, 8] {
        let cfg = DistConfig {
            nodes,
            clk_kicks_per_call: 4,
            budget: Budget::kicks(4),
            seed: 9,
            ..Default::default()
        };
        let a = run_lockstep(&inst, &nl, &cfg);
        let b = run_lockstep(&inst, &nl, &cfg);
        assert_eq!(a.best_length, b.best_length, "nodes={nodes}");
        assert_eq!(a.total_broadcasts(), b.total_broadcasts(), "nodes={nodes}");
    }
}
