//! The Table 2 comparator family side by side: plain CLK, LKH-lite
//! (α-nearness), multilevel CLK, and tour merging, on one instance.
//!
//! ```text
//! cargo run --release --example baselines
//! ```

use dist_clk::lk::lkh_lite::{lkh_lite, LkhLiteConfig};
use dist_clk::lk::multilevel::{multilevel_clk, MultilevelConfig};
use dist_clk::lk::tour_merge::merge_tours;
use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};
use dist_clk::tsp_core::{generate, NeighborLists};

fn main() {
    let inst = generate::uniform(1200, 1_000_000.0, 5);
    let neighbors = NeighborLists::build(&inst, 10);
    println!("instance: {} ({} cities)\n", inst.name(), inst.len());
    println!("{:<22} {:>12} {:>10}", "method", "length", "secs");

    // Plain CLK, 800 kicks.
    let t = std::time::Instant::now();
    let mut engine = ChainedLk::new(&inst, &neighbors, ChainedLkConfig::default());
    let clk = engine.run(&Budget::kicks(800));
    println!("{:<22} {:>12} {:>9.2}s", "CLK (800 kicks)", clk.length, t.elapsed().as_secs_f64());

    // LKH-lite: α-nearness candidates, deeper search, fewer trials.
    let t = std::time::Instant::now();
    let lkh = lkh_lite(&inst, &LkhLiteConfig::default(), &Budget::kicks(200));
    println!(
        "{:<22} {:>12} {:>9.2}s (incl. {:.2}s ascent)",
        "LKH-lite (200 trials)",
        lkh.clk.length,
        t.elapsed().as_secs_f64(),
        lkh.preprocess_seconds
    );

    // Multilevel CLK.
    let t = std::time::Instant::now();
    let ml = multilevel_clk(&inst, &MultilevelConfig::default(), 1);
    println!(
        "{:<22} {:>12} {:>9.2}s ({} levels)",
        "Multilevel CLK",
        ml.length,
        t.elapsed().as_secs_f64(),
        ml.levels
    );

    // Tour merging over 10 independent CLK runs.
    let t = std::time::Instant::now();
    let parents: Vec<_> = (0..10)
        .map(|seed| {
            let mut e = ChainedLk::new(
                &inst,
                &neighbors,
                ChainedLkConfig {
                    kick: KickStrategy::Geometric(12),
                    seed,
                    ..Default::default()
                },
            );
            e.run(&Budget::kicks(80)).tour
        })
        .collect();
    let merged = merge_tours(&inst, &parents);
    let best_parent = parents.iter().map(|p| p.length(&inst)).min().unwrap();
    println!(
        "{:<22} {:>12} {:>9.2}s (best parent {})",
        "TourMerge (10x CLK)",
        merged.length(&inst),
        t.elapsed().as_secs_f64(),
        best_parent
    );
}
