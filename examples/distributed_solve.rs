//! The paper's headline experiment in miniature: the 8-node
//! distributed CLK finds better tours than standalone CLK given the
//! same *total* CPU budget, and solves drill-plate instances that trap
//! plain CLK in local optima.
//!
//! ```text
//! cargo run --release --example distributed_solve
//! ```

use dist_clk::distclk::{run_threads, DistConfig};
use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};
use dist_clk::p2p::Topology;
use dist_clk::tsp_core::{generate, NeighborLists};

fn main() {
    // A drill-plate instance: the structure of TSPLIB's fl1577/fl3795,
    // whose deep local optima defeat standalone CLK (paper §4.1).
    let inst = generate::drill_plate(1500, 7);
    let neighbors = NeighborLists::build(&inst, 10);
    println!("instance: {} ({} cities)", inst.name(), inst.len());

    // Standalone CLK: 2000 kicks.
    let clk_kicks = 2000u64;
    let mut engine = ChainedLk::new(
        &inst,
        &neighbors,
        ChainedLkConfig {
            kick: KickStrategy::RandomWalk(50),
            seed: 1,
            ..Default::default()
        },
    );
    let clk = engine.run(&Budget::kicks(clk_kicks));
    println!(
        "ABCC-CLK:      length {} after {} kicks ({:.2}s)",
        clk.length, clk.kicks, clk.seconds
    );

    // Distributed: 8 nodes, one tenth of the kicks per node — the
    // paper's budget ratio (total CPU = 8/10 of the standalone run).
    let cfg = DistConfig {
        nodes: 8,
        topology: Topology::Hypercube,
        clk_kicks_per_call: 25,
        budget: Budget::kicks(clk_kicks / 10 / 25),
        seed: 1,
        ..Default::default()
    };
    let dist = run_threads(&inst, &neighbors, &cfg);
    println!(
        "DistCLK (8):   length {} ({} broadcasts, {} messages, {:.2}s wall)",
        dist.best_length,
        dist.total_broadcasts(),
        dist.messages.0,
        dist.wall_seconds
    );

    let delta = clk.length - dist.best_length;
    if delta >= 0 {
        println!(
            "distributed variant is {delta} shorter ({:.3}%) with 20% less total CPU",
            delta as f64 / clk.length as f64 * 100.0
        );
    } else {
        println!("standalone won this seed by {}", -delta);
    }
}
