//! Large-instance workflow: the pla33810/pla85900-class sizes of the
//! paper's testbed need the two-level tour list (O(√n) flips). This
//! example optimizes a 50k-city instance with candidate-list 2-opt on
//! the two-level structure — a size where array-tour reversals would
//! dominate the runtime.
//!
//! ```text
//! cargo run --release --example large_instance [n]
//! ```

use dist_clk::lk::construct::space_filling;
use dist_clk::lk::two_opt::two_opt;
use dist_clk::lk::Optimizer;
use dist_clk::tsp_core::{generate, NeighborLists, TwoLevelList};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    println!("generating a {n}-city pcb-like instance…");
    let inst = generate::pcb_like(n, 3);

    let t = std::time::Instant::now();
    let neighbors = NeighborLists::build(&inst, 8);
    println!("candidate lists built in {:.2}s", t.elapsed().as_secs_f64());

    let t = std::time::Instant::now();
    let start = space_filling(&inst);
    let start_len = start.length(&inst);
    println!(
        "space-filling start: {start_len} in {:.2}s",
        t.elapsed().as_secs_f64()
    );

    let mut tl = TwoLevelList::from_tour(&start);
    let t = std::time::Instant::now();
    let mut opt = Optimizer::new(&inst, &neighbors);
    let gain = two_opt(&mut opt, &mut tl);
    let secs = t.elapsed().as_secs_f64();
    let final_len = start_len - gain;
    println!(
        "two-level 2-opt: {final_len} ({:.2}% better) in {:.2}s, {} segments",
        gain as f64 / start_len as f64 * 100.0,
        secs,
        tl.segment_count()
    );
    debug_assert_eq!(tl.to_tour().length(&inst), final_len);
}
