//! TSPLIB round-trip: write an instance to the TSPLIB format, read it
//! back, solve it, and emit a `.tour` file — the workflow for running
//! this library on the real paper testbed when the TSPLIB files are
//! available.
//!
//! ```text
//! cargo run --release --example tsplib_io [path/to/instance.tsp]
//! ```

use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig};
use dist_clk::tsp_core::{generate, tsplib, NeighborLists};

fn main() {
    let arg = std::env::args().nth(1);
    let inst = match &arg {
        Some(path) => {
            println!("reading {path}…");
            tsplib::read_instance(path).expect("parse TSPLIB instance")
        }
        None => {
            // No file supplied: demonstrate the round-trip on a
            // generated instance.
            let original = generate::clustered_dimacs(500, 9);
            let text = tsplib::write_instance(&original);
            let dir = std::env::temp_dir().join("dist_clk_example");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("demo.tsp");
            std::fs::write(&path, &text).unwrap();
            println!("wrote {} ({} bytes)", path.display(), text.len());
            tsplib::read_instance(&path).expect("re-read")
        }
    };
    println!("instance {} with {} cities", inst.name(), inst.len());

    let neighbors = NeighborLists::build(&inst, 10);
    let mut engine = ChainedLk::new(&inst, &neighbors, ChainedLkConfig::default());
    let res = engine.run(&Budget::kicks(300));
    println!("tour length {} after {} kicks", res.length, res.kicks);
    if let Some(opt) = inst.known_optimum() {
        println!(
            "known optimum {opt}: excess {:.3}%",
            (res.length - opt) as f64 / opt as f64 * 100.0
        );
    }

    let tour_text = tsplib::write_tour(inst.name(), &res.tour);
    let out = std::env::temp_dir().join("dist_clk_example.tour");
    std::fs::write(&out, tour_text).unwrap();
    println!("tour written to {}", out.display());
}
