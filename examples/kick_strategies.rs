//! Compare the four double-bridge kicking strategies of §2.1
//! (Tables 3-5 in miniature).
//!
//! ```text
//! cargo run --release --example kick_strategies
//! ```

use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};
use dist_clk::tsp_core::{generate, NeighborLists};

fn main() {
    // A clustered instance (DIMACS C1k recipe): kick locality matters
    // here, so the strategies separate clearly.
    let inst = generate::clustered_dimacs(1000, 3);
    let neighbors = NeighborLists::build(&inst, 10);
    println!(
        "instance: {} ({} cities), 500 kicks per strategy, 3 seeds each\n",
        inst.name(),
        inst.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "strategy", "best", "mean", "secs/run"
    );

    for strategy in KickStrategy::ALL {
        let mut lengths = Vec::new();
        let mut secs = Vec::new();
        for seed in 0..3 {
            let mut engine = ChainedLk::new(
                &inst,
                &neighbors,
                ChainedLkConfig {
                    kick: strategy,
                    seed,
                    ..Default::default()
                },
            );
            let res = engine.run(&Budget::kicks(500));
            lengths.push(res.length);
            secs.push(res.seconds);
        }
        let best = lengths.iter().min().unwrap();
        let mean = lengths.iter().sum::<i64>() as f64 / lengths.len() as f64;
        let mean_secs = secs.iter().sum::<f64>() / secs.len() as f64;
        println!(
            "{:<14} {:>12} {:>12.0} {:>9.2}s",
            strategy.name(),
            best,
            mean,
            mean_secs
        );
    }
}
