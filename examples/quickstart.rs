//! Quickstart: solve a TSP instance with Chained Lin-Kernighan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dist_clk::lk::{Budget, ChainedLk, ChainedLkConfig};
use dist_clk::tsp_core::{generate, NeighborLists};
use std::time::Duration;

fn main() {
    // A 1000-city uniform random instance (the DIMACS E1k recipe).
    let inst = generate::uniform(1000, 1_000_000.0, 42);
    println!("instance: {} ({} cities)", inst.name(), inst.len());

    // Candidate lists: 10 nearest neighbors per city.
    let neighbors = NeighborLists::build(&inst, 10);

    // Chained LK with the default Random-walk kicking strategy.
    let mut engine = ChainedLk::new(&inst, &neighbors, ChainedLkConfig::default());

    // 2 seconds of wall time, like `linkern -t 2`.
    let result = engine.run(&Budget::time(Duration::from_secs(2)));

    println!(
        "best tour: {} after {} kicks in {:.2}s",
        result.length, result.kicks, result.seconds
    );
    println!("improvements recorded: {}", result.trace.points().len());

    // Compare against the Held-Karp lower bound.
    let hk = dist_clk::heldkarp::held_karp_bound(
        &inst,
        &dist_clk::heldkarp::AscentConfig::default(),
    );
    let gap = (result.length - hk.bound) as f64 / hk.bound as f64 * 100.0;
    println!("Held-Karp bound: {} (gap {:.2}%)", hk.bound, gap);
}
