//! Run the distributed algorithm over *real TCP sockets* on localhost:
//! hub bootstrap, hypercube wiring, then the Fig. 1 node loop on every
//! endpoint — the full deployment path of the paper's §2.2, in one
//! process.
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use dist_clk::distclk::driver::run_over_transports;
use dist_clk::distclk::DistConfig;
use dist_clk::lk::Budget;
use dist_clk::p2p::hub::bootstrap_local;
use dist_clk::p2p::{Topology, Transport};
use dist_clk::tsp_core::{generate, NeighborLists};

fn main() {
    let nodes = 8;
    let inst = generate::uniform(800, 1_000_000.0, 11);
    let neighbors = NeighborLists::build(&inst, 10);
    println!(
        "bootstrapping {} TCP nodes in a hypercube via hub…",
        nodes
    );

    let endpoints = bootstrap_local(nodes, Topology::Hypercube).expect("bootstrap");
    // Wait briefly until every reverse edge registered.
    dist_clk::p2p::wait_until(
        || {
            endpoints
                .iter()
                .enumerate()
                .all(|(i, e)| e.neighbors().len() == Topology::Hypercube.neighbors(i, nodes).len())
        },
        std::time::Duration::from_secs(3),
    );
    for (i, e) in endpoints.iter().enumerate() {
        println!("node {i} @ {} — neighbors {:?}", e.listen_addr(), e.neighbors());
    }

    let cfg = DistConfig {
        nodes,
        topology: Topology::Hypercube,
        clk_kicks_per_call: 20,
        budget: Budget::kicks(10),
        seed: 2,
        ..Default::default()
    };
    let result = run_over_transports(&inst, &neighbors, &cfg, endpoints);

    println!("\nper-node results:");
    for r in &result.nodes {
        println!(
            "  node {}: best {} ({} CLK calls, {} broadcasts, {} received)",
            r.id, r.best_length, r.clk_calls, r.broadcasts, r.received
        );
    }
    println!("\nnetwork best: {}", result.best_length);
}
