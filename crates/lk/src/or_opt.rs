//! Or-opt local search: relocate short segments (1–3 cities).
//!
//! Complements 2-opt: the segment-relocation neighborhood contains
//! moves 2-opt cannot express (it is a restricted 3-opt). Candidates
//! for the new segment location come from the candidate lists of the
//! segment's end cities.

use tsp_core::TourOps;

use crate::search::{or_opt_move_by_edges, Optimizer};

/// Maximum relocated segment length.
pub const MAX_SEGMENT: usize = 3;

/// Try to relocate the segment of `len` cities starting at `s`
/// (forward). Returns the gain and applies the move, or 0.
fn try_segment<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T, s: usize, len: usize) -> i64 {
    let n = tour.len();
    if len + 2 >= n {
        return 0;
    }
    // Segment s .. e (forward); p precedes it, q follows it.
    let mut e = s;
    for _ in 1..len {
        e = tour.next(e);
    }
    let p = tour.prev(s);
    let q = tour.next(e);
    if p == e || q == s {
        return 0; // segment wraps the whole tour
    }
    let removed = opt.dist(p, s) + opt.dist(e, q);
    let bridge = opt.dist(p, q);

    // Candidate destinations: after city c (so the segment sits between
    // c and next(c)), with c drawn from the candidate lists of both
    // segment ends. Try both orientations. Each candidate carries its
    // cached metric distance to the list owner (`d(s,c)` in the first
    // half of the scan, `d(e,c)` in the second), saving one coordinate
    // distance per probe.
    let (cands_s, dists_s) = opt.neighbors().of_with_dists(s);
    let (cands_e, dists_e) = opt.neighbors().of_with_dists(e);
    let k = cands_s.len();
    for i in 0..k + cands_e.len() {
        let (c, cached) = if i < k {
            (cands_s[i] as usize, dists_s[i])
        } else {
            (cands_e[i - k] as usize, dists_e[i - k])
        };
        // c must lie outside the segment and not be p (no-op).
        if c == p {
            continue;
        }
        let mut inside = false;
        let mut walk = s;
        for _ in 0..len {
            if walk == c {
                inside = true;
                break;
            }
            walk = tour.next(walk);
        }
        if inside {
            continue;
        }
        let d = tour.next(c);
        if d == s {
            continue; // inserting right back
        }
        let broken = opt.dist(c, d);
        // Forward orientation: c -> s ... e -> d.
        let fwd_cost = (if i < k { cached } else { opt.dist(c, s) }) + opt.dist(e, d);
        // Reversed: c -> e ... s -> d.
        let rev_cost = (if i < k { opt.dist(c, e) } else { cached }) + opt.dist(s, d);
        let base = removed + broken - bridge;
        let (cost, reversed) = if fwd_cost <= rev_cost {
            (fwd_cost, false)
        } else {
            (rev_cost, true)
        };
        let gain = base - cost;
        if gain > 0 {
            or_opt_move_by_edges(tour, s, e, p, q, c, d, reversed);
            for city in [p, q, s, e, c, d] {
                opt.activate(city);
            }
            return gain;
        }
    }
    0
}

/// Run Or-opt to local optimality over the active queue. Returns the
/// total gain.
pub fn or_opt_pass<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    let mut total = 0i64;
    while let Some(t1) = opt.pop_active() {
        let mut gained = 0;
        for len in 1..=MAX_SEGMENT.min(tour.len() - 3) {
            gained = try_segment(opt, tour, t1, len);
            if gained > 0 {
                break;
            }
        }
        if gained > 0 {
            total += gained;
        } else {
            opt.set_dont_look(t1);
        }
    }
    total
}

/// Convenience: full Or-opt optimization from scratch.
pub fn or_opt<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    opt.activate_all();
    or_opt_pass(opt, tour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists, Tour};

    #[test]
    fn fixes_displaced_city() {
        // A line tour with one city moved out of place; Or-opt must
        // relocate it back.
        let pts: Vec<tsp_core::Point> = (0..8)
            .map(|i| tsp_core::Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let inst = tsp_core::Instance::new("line8", pts, tsp_core::Metric::Euc2d);
        let nl = NeighborLists::build(&inst, 5);
        let mut opt = Optimizer::new(&inst, &nl);
        // City 4 displaced between 0 and 1.
        let mut tour = Tour::from_order(vec![0, 4, 1, 2, 3, 5, 6, 7]);
        let before = tour.length(&inst);
        let gain = or_opt(&mut opt, &mut tour);
        assert!(gain > 0);
        assert_eq!(tour.length(&inst), before - gain);
        // Optimal line tour: 0..7 and back = 2*70
        assert_eq!(tour.length(&inst), 140);
    }

    #[test]
    fn improves_random_tours() {
        let inst = generate::uniform(150, 10_000.0, 31);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tour = Tour::random(150, &mut rng);
        let before = tour.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let gain = or_opt(&mut opt, &mut tour);
        assert!(tour.is_valid());
        assert!(gain > 0);
        assert_eq!(tour.length(&inst), before - gain);
    }

    #[test]
    fn gain_exactness_with_reversed_insertions() {
        let inst = generate::clustered_dimacs(100, 8);
        let nl = NeighborLists::build(&inst, 10);
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..5u64 {
            let mut rng2 = SmallRng::seed_from_u64(seed);
            let mut tour = Tour::random(100, &mut rng2);
            let before = tour.length(&inst);
            let mut opt = Optimizer::new(&inst, &nl);
            let gain = or_opt(&mut opt, &mut tour);
            assert_eq!(tour.length(&inst), before - gain);
        }
        let _ = &mut rng;
    }

    #[test]
    fn two_opt_then_or_opt_improves_further() {
        let inst = generate::uniform(200, 10_000.0, 33);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut tour = Tour::random(200, &mut rng);
        let mut opt = Optimizer::new(&inst, &nl);
        crate::two_opt::two_opt(&mut opt, &mut tour);
        let after_2opt = tour.length(&inst);
        let gain = or_opt(&mut opt, &mut tour);
        assert_eq!(tour.length(&inst), after_2opt - gain);
        // Or-opt usually finds something after plain 2-opt on 200 cities.
        assert!(gain >= 0);
    }
}
