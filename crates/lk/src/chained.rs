//! Chained Lin-Kernighan (Martin, Otto & Felten 1991; Applegate, Cook &
//! Rohe's `linkern`).
//!
//! Instead of restarting LK from fresh tours, CLK perturbates the
//! current LK-optimum with a double-bridge kick and re-optimizes only
//! around the kicked cities, following a simulated-annealing-at-zero-
//! temperature acceptance rule: keep the new tour iff it is no worse.
//!
//! This is the "ABCC-CLK" engine of the paper's §2.1/§4.1, with the
//! kicking strategy injectable — exactly the knob the paper sweeps in
//! Tables 3–5.
//!
//! Every search method is generic over [`TourOps`], so the whole chain
//! (construct → LK → kick → re-optimize) runs on either the array
//! [`Tour`] or the [`TwoLevelList`]; [`ClkEngine`] picks the
//! representation by instance size and hides the dispatch.

use obs_api::{Counter, Histogram, Obs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsp_core::{Instance, NeighborLists, Tour, TourOps, TourRep, TwoLevelList};

use crate::budget::{Budget, Stopwatch, Trace};
use crate::candidates::CandidateKind;
use crate::construct::{construct, Construction};
use crate::kick::{kick, KickStrategy};
use crate::lin_kernighan::{lk_pass, lin_kernighan, LinKernighan, LkConfig};
use crate::or_opt::or_opt_pass;
use crate::search::Optimizer;

/// Configuration of a Chained LK run.
#[derive(Debug, Clone)]
pub struct ChainedLkConfig {
    /// Kicking strategy (the paper's default and `linkern`'s is
    /// Random-walk).
    pub kick: KickStrategy,
    /// LK search parameters.
    pub lk: LkConfig,
    /// Initial tour construction (QB is the `linkern` default).
    pub construction: Construction,
    /// Candidate list width.
    pub neighbor_k: usize,
    /// How the candidate lists are constructed (k-NN, α-nearness, or
    /// hybrid). Part of the wire-level config of a distributed run:
    /// every node builds its lists from this knob, so all nodes must
    /// agree on it (see [`ChainedLkConfig::build_neighbors`]).
    pub candidates: CandidateKind,
    /// Also run an Or-opt pass after each LK pass (cheap extra
    /// neighborhood; off in plain linkern, on by default here).
    pub use_or_opt: bool,
    /// Instance size at which [`ClkEngine::auto`] switches from the
    /// array tour to the two-level list. Below the threshold the array's
    /// cache-friendly O(n) flips win; above it the two-level √n flips
    /// do. The default is the crossover measured with `bench perf`
    /// (seed 4242 uniform sweep; see EXPERIMENTS.md): break-even near
    /// 20k cities, two-level clearly ahead from 50k.
    pub tl_threshold: usize,
    /// Speculative kick workers per chained iteration. `1` (the
    /// default) keeps the serial chain bit-identical to the historical
    /// engine; `W > 1` clones the tour W times per step, applies an
    /// independent kick + local re-optimization to each clone on scoped
    /// threads, and adopts the best outcome with ties broken by worker
    /// index. Deterministic for fixed `(seed, W)`: per-worker RNG seeds
    /// are drawn from the engine RNG in worker order before any thread
    /// runs, so thread scheduling cannot reorder the stream.
    pub kick_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChainedLkConfig {
    fn default() -> Self {
        ChainedLkConfig {
            kick: KickStrategy::RandomWalk(50),
            lk: LkConfig::default(),
            construction: Construction::QuickBoruvka,
            neighbor_k: 10,
            candidates: CandidateKind::Knn,
            use_or_opt: true,
            tl_threshold: 50_000,
            kick_workers: 1,
            seed: 0,
        }
    }
}

impl ChainedLkConfig {
    /// Build the candidate lists this configuration asks for
    /// ([`ChainedLkConfig::candidates`] of width
    /// [`ChainedLkConfig::neighbor_k`]). Deterministic in the config
    /// alone: distributed nodes that share the wire-level config build
    /// bit-identical lists without exchanging them.
    pub fn build_neighbors(&self, inst: &Instance) -> NeighborLists {
        self.candidates.build(inst, self.neighbor_k)
    }
}

/// Outcome of a Chained LK run.
#[derive(Debug, Clone)]
pub struct ClkResult {
    /// Best tour found.
    pub tour: Tour,
    /// Its length.
    pub length: i64,
    /// Number of kicks performed.
    pub kicks: u64,
    /// Wall time used.
    pub seconds: f64,
    /// Best-so-far convergence trace.
    pub trace: Trace,
}

/// A reusable Chained LK engine bound to one instance.
///
/// The distributed algorithm calls [`ChainedLk::optimize`] on tours it
/// perturbated itself (paper Fig. 1: `CHAINEDLINKERNIGHAN(PERTURBATE(s))`),
/// and [`ChainedLk::run`] reproduces the standalone `linkern` behaviour.
///
/// ```
/// use tsp_core::{generate, NeighborLists};
/// use lk::{Budget, ChainedLk, ChainedLkConfig};
///
/// let inst = generate::uniform(200, 100_000.0, 7);
/// let neighbors = NeighborLists::build(&inst, 10);
/// let mut engine = ChainedLk::new(&inst, &neighbors, ChainedLkConfig::default());
/// let result = engine.run(&Budget::kicks(50));
/// assert!(result.tour.is_valid());
/// assert_eq!(result.tour.length(&inst), result.length);
/// ```
pub struct ChainedLk<'a> {
    inst: &'a Instance,
    neighbors: &'a NeighborLists,
    opt: Optimizer<'a>,
    lk: LinKernighan,
    cfg: ChainedLkConfig,
    rng: SmallRng,
    obs: Obs,
    probes: Probes,
    /// Persistent per-worker search state for speculative parallel
    /// kicks; empty when `cfg.kick_workers <= 1`.
    workers: Vec<WorkerSlot<'a>>,
    /// Total kick attempts so far (one per serial step, `W` per
    /// parallel step) — lets the budget loops charge parallel steps for
    /// the work they actually did.
    kicks_spent: u64,
}

/// One speculative kick worker's reusable search state (don't-look
/// bits, LK scratch). Kept across steps so parallel iterations stay
/// allocation-free on the hot path, like the serial engine.
struct WorkerSlot<'a> {
    opt: Optimizer<'a>,
    lk: LinKernighan,
}

/// Metric handles resolved once at attach time so the hot loop never
/// touches the registry map. All no-ops until [`ChainedLk::attach_obs`]
/// is called with a live handle.
struct Probes {
    /// Full-optimize call duration (ns) and gain.
    h_call_ns: Histogram,
    h_call_gain: Histogram,
    /// Chained-iteration duration (ns).
    h_step_ns: Histogram,
    /// Initial-tour construction duration (ns).
    h_construct_ns: Histogram,
    /// Kicks attempted / kicks whose result was kept.
    c_kicks: Counter,
    c_accepts: Counter,
    /// Per-worker kick counters (`clk.worker<i>.kicks`), one per
    /// speculative kick worker; empty for the serial engine.
    c_worker_kicks: Vec<Counter>,
    /// Parallel steps whose adopted result came from worker `i`
    /// (`clk.worker<i>.wins`).
    c_worker_wins: Vec<Counter>,
}

impl Probes {
    fn resolve(obs: &Obs, workers: usize) -> Self {
        let per_worker = if workers > 1 { workers } else { 0 };
        Probes {
            h_call_ns: obs.histogram("clk.call.ns"),
            h_call_gain: obs.histogram("clk.call.gain"),
            h_step_ns: obs.histogram("clk.step.ns"),
            h_construct_ns: obs.histogram("clk.construct.ns"),
            c_kicks: obs.counter("clk.kicks"),
            c_accepts: obs.counter("clk.accepts"),
            c_worker_kicks: (0..per_worker)
                .map(|w| obs.counter(&format!("clk.worker{w}.kicks")))
                .collect(),
            c_worker_wins: (0..per_worker)
                .map(|w| obs.counter(&format!("clk.worker{w}.wins")))
                .collect(),
        }
    }
}

/// LK-optimize `tour` around the given seed cities with explicit search
/// state — the body of [`ChainedLk::optimize_around`], factored out so
/// speculative kick workers can run it against their own
/// [`Optimizer`]/[`LinKernighan`] slots.
fn optimize_around_with<T: TourOps>(
    opt: &mut Optimizer<'_>,
    lk: &mut LinKernighan,
    use_or_opt: bool,
    tour: &mut T,
    seeds: &[usize],
) -> i64 {
    opt.deactivate_all();
    for &s in seeds {
        opt.activate(s);
        opt.activate(tour.next(s));
        opt.activate(tour.prev(s));
    }
    let mut gain = lk_pass(lk, opt, tour);
    if use_or_opt {
        for &s in seeds {
            opt.activate(s);
        }
        gain += or_opt_pass(opt, tour);
    }
    gain
}

impl<'a> ChainedLk<'a> {
    /// Create an engine. `neighbors` must cover the same instance.
    /// Observability is off until [`ChainedLk::attach_obs`].
    pub fn new(inst: &'a Instance, neighbors: &'a NeighborLists, cfg: ChainedLkConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let obs = Obs::disabled();
        let probes = Probes::resolve(&obs, cfg.kick_workers);
        let workers = if cfg.kick_workers > 1 {
            (0..cfg.kick_workers)
                .map(|_| WorkerSlot {
                    opt: Optimizer::new(inst, neighbors),
                    lk: LinKernighan::new(cfg.lk.clone()),
                })
                .collect()
        } else {
            Vec::new()
        };
        ChainedLk {
            inst,
            neighbors,
            opt: Optimizer::new(inst, neighbors),
            lk: LinKernighan::new(cfg.lk.clone()),
            cfg,
            rng,
            obs,
            probes,
            workers,
            kicks_spent: 0,
        }
    }

    /// Attach an observability handle: call durations, gains, and
    /// kick-acceptance counters flow into its registry from now on.
    /// Instrumentation never touches the RNG, so attaching cannot
    /// change the search trajectory.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.probes = Probes::resolve(&obs, self.cfg.kick_workers);
        self.obs = obs;
    }

    /// The engine's observability handle (disabled unless attached).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The engine's instance.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ChainedLkConfig {
        &self.cfg
    }

    /// Borrow the RNG (the distributed node drives perturbation with
    /// the same stream for reproducibility).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Construct the configured initial tour.
    pub fn construct_tour(&mut self) -> Tour {
        let t = self.obs.timer();
        let tour = construct(self.inst, self.cfg.construction, &mut self.rng);
        t.observe_into(&self.probes.h_construct_ns);
        tour
    }

    /// Fully LK-optimize `tour` (all cities active). Returns the gain.
    pub fn optimize<T: TourOps>(&mut self, tour: &mut T) -> i64 {
        let t = self.obs.timer();
        let mut gain = lin_kernighan(&mut self.lk, &mut self.opt, tour);
        if self.cfg.use_or_opt {
            self.opt.activate_all();
            let g2 = or_opt_pass(&mut self.opt, tour);
            if g2 > 0 {
                self.opt.activate_all();
                gain += g2 + lk_pass(&mut self.lk, &mut self.opt, tour);
            }
        }
        t.observe_into(&self.probes.h_call_ns);
        self.probes.h_call_gain.observe(gain.max(0) as u64);
        gain
    }

    /// LK-optimize only around the given seed cities (after a kick the
    /// paper's engine re-optimizes locally; this is what makes chained
    /// iterations cheap).
    pub fn optimize_around<T: TourOps>(&mut self, tour: &mut T, seeds: &[usize]) -> i64 {
        optimize_around_with(&mut self.opt, &mut self.lk, self.cfg.use_or_opt, tour, seeds)
    }

    /// One chained iteration on `tour` (assumed LK-optimal, of length
    /// `current_len`): kick, re-optimize around the kick, keep iff not
    /// worse. Returns the new length.
    ///
    /// With `kick_workers = 1` this is the historical serial step —
    /// bit-identical results for a given seed. With `W > 1` it runs `W`
    /// speculative kicks concurrently and adopts the best (see
    /// [`ChainedLk::chain_step_parallel`]); either way one call charges
    /// the kick budget for every attempt it made.
    ///
    /// Length bookkeeping is exact-delta (`kick.delta` minus the
    /// optimization gain); the tour is never re-measured, so a chained
    /// iteration costs only the local search plus an O(n) order
    /// snapshot for the revert path.
    pub fn chain_step<R: TourRep + Send + Sync>(&mut self, tour: &mut R, current_len: i64) -> i64 {
        if self.cfg.kick_workers > 1 {
            return self.chain_step_parallel(tour, current_len);
        }
        self.kicks_spent += 1;
        let t = self.obs.timer();
        let saved = tour.to_order();
        let k = match kick(self.cfg.kick, self.inst, tour, self.neighbors, &mut self.rng) {
            Some(k) => k,
            None => return current_len,
        };
        self.probes.c_kicks.incr();
        let opt_gain = self.optimize_around(tour, &k.cities);
        let new_len = current_len + k.delta - opt_gain;
        debug_assert_eq!(new_len, tour.tour_length(self.inst));
        t.observe_into(&self.probes.h_step_ns);
        if new_len <= current_len {
            self.probes.c_accepts.incr();
            new_len
        } else {
            *tour = R::from_order_slice(&saved);
            current_len
        }
    }

    /// One speculative parallel iteration: every worker clones the
    /// tour, applies its own kick + local re-optimization on a scoped
    /// thread, and the engine adopts the best resulting tour iff it is
    /// no worse than `current_len`, ties broken by the lowest worker
    /// index.
    ///
    /// Deterministic for fixed `(seed, W)`: the per-worker RNG seeds
    /// are drawn from the engine RNG *in worker order before any thread
    /// starts* — the step's only use of the main RNG — and the adoption
    /// rule `min(new_len, worker_index)` is scheduling-independent.
    fn chain_step_parallel<R: TourRep + Send + Sync>(
        &mut self,
        tour: &mut R,
        current_len: i64,
    ) -> i64 {
        let w = self.workers.len();
        self.kicks_spent += w as u64;
        let t = self.obs.timer();
        let worker_seeds: Vec<u64> = (0..w).map(|_| self.rng.gen()).collect();
        let strategy = self.cfg.kick;
        let use_or_opt = self.cfg.use_or_opt;
        let inst = self.inst;
        let neighbors = self.neighbors;
        let shared: &R = tour;
        let workers = &mut self.workers;
        let outcomes: Vec<Option<(i64, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .zip(worker_seeds)
                .map(|(slot, seed)| {
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        let mut cand = shared.clone();
                        let k = kick(strategy, inst, &mut cand, neighbors, &mut rng)?;
                        let gain = optimize_around_with(
                            &mut slot.opt,
                            &mut slot.lk,
                            use_or_opt,
                            &mut cand,
                            &k.cities,
                        );
                        let new_len = current_len + k.delta - gain;
                        debug_assert_eq!(new_len, cand.tour_length(inst));
                        Some((new_len, cand))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kick worker panicked"))
                .collect()
        });
        let mut best: Option<(i64, usize, R)> = None;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let Some((len, cand)) = outcome else { continue };
            self.probes.c_kicks.incr();
            self.probes.c_worker_kicks[i].incr();
            // Strict `<` keeps the earlier (lower-index) worker on ties.
            if best.as_ref().is_none_or(|&(bl, _, _)| len < bl) {
                best = Some((len, i, cand));
            }
        }
        t.observe_into(&self.probes.h_step_ns);
        match best {
            Some((len, i, cand)) if len <= current_len => {
                self.probes.c_accepts.incr();
                self.probes.c_worker_wins[i].incr();
                *tour = cand;
                len
            }
            _ => current_len,
        }
    }

    /// Kick attempts charged so far (one per serial step, `W` per
    /// parallel step). Monotone over the engine's lifetime.
    pub fn kicks_spent(&self) -> u64 {
        self.kicks_spent
    }

    /// One full CLK call on an array tour via representation `R`:
    /// convert, fully optimize, spend `kicks` kick attempts on chained
    /// iterations (bailing out as soon as `stop(len)` says so), convert
    /// back. Returns the final length.
    ///
    /// The budget counts *attempts*: a serial step spends 1, a parallel
    /// step spends `kick_workers` — so a worker pool explores the same
    /// number of kicks faster instead of multiplying the work.
    pub fn clk_call<R: TourRep + Send + Sync>(
        &mut self,
        tour: &mut Tour,
        kicks: u64,
        stop: &mut dyn FnMut(i64) -> bool,
    ) -> i64 {
        let before = tour.length(self.inst);
        let mut rep = R::from_tour(tour);
        let gain = self.optimize(&mut rep);
        let mut len = before - gain;
        let mut spent = 0u64;
        while spent < kicks {
            if stop(len) {
                break;
            }
            let before_spend = self.kicks_spent;
            len = self.chain_step(&mut rep, len);
            spent += self.kicks_spent - before_spend;
        }
        *tour = rep.to_tour();
        len
    }

    /// Full standalone CLK run on representation `R`: construct,
    /// optimize, chain kicks until the budget is exhausted. Like
    /// [`ChainedLk::clk_call`], the kick budget counts attempts, so the
    /// reported `kicks` grows by `kick_workers` per parallel step.
    pub fn run_rep<R: TourRep + Send + Sync>(&mut self, budget: &Budget) -> ClkResult {
        let watch = Stopwatch::start();
        let start = self.construct_tour();
        let before = start.length(self.inst);
        let mut rep = R::from_tour(&start);
        let mut best_len = before - self.optimize(&mut rep);
        let mut trace = Trace::new();
        let mut kicks = 0u64;
        trace.record(watch.secs(), kicks, best_len);

        while !budget.exhausted(watch.elapsed(), kicks, best_len) {
            let before_spend = self.kicks_spent;
            let new_len = self.chain_step(&mut rep, best_len);
            kicks += self.kicks_spent - before_spend;
            if new_len < best_len {
                best_len = new_len;
                trace.record(watch.secs(), kicks, best_len);
            }
        }
        let tour = rep.to_tour();
        debug_assert_eq!(tour.length(self.inst), best_len);
        ClkResult {
            length: best_len,
            tour,
            kicks,
            seconds: watch.secs(),
            trace,
        }
    }

    /// Full standalone CLK run on the array representation.
    pub fn run(&mut self, budget: &Budget) -> ClkResult {
        self.run_rep::<Tour>(budget)
    }
}

/// A [`ChainedLk`] plus a tour-representation choice.
///
/// Callers that should not care about the array-vs-two-level decision
/// (the distributed node driver, benchmarks, pipelines) go through this
/// wrapper: [`ClkEngine::auto`] picks the two-level list for instances
/// of at least [`ChainedLkConfig::tl_threshold`] cities, and every
/// method dispatches to the chosen representation internally while
/// keeping an array-`Tour` interface at the boundary.
pub struct ClkEngine<'a> {
    inner: ChainedLk<'a>,
    two_level: bool,
}

impl<'a> ClkEngine<'a> {
    /// Create an engine, selecting the representation by instance size.
    pub fn auto(inst: &'a Instance, neighbors: &'a NeighborLists, cfg: ChainedLkConfig) -> Self {
        let two_level = inst.len() >= cfg.tl_threshold;
        ClkEngine {
            inner: ChainedLk::new(inst, neighbors, cfg),
            two_level,
        }
    }

    /// Create an engine with an explicit representation (benchmarks
    /// force both to measure the crossover).
    pub fn with_representation(
        inst: &'a Instance,
        neighbors: &'a NeighborLists,
        cfg: ChainedLkConfig,
        two_level: bool,
    ) -> Self {
        ClkEngine {
            inner: ChainedLk::new(inst, neighbors, cfg),
            two_level,
        }
    }

    /// Name of the active representation (`"array"` / `"twolevel"`).
    pub fn representation(&self) -> &'static str {
        if self.two_level {
            TwoLevelList::NAME
        } else {
            Tour::NAME
        }
    }

    /// See [`ChainedLk::attach_obs`].
    pub fn attach_obs(&mut self, obs: Obs) {
        self.inner.attach_obs(obs);
    }

    /// See [`ChainedLk::obs`].
    pub fn obs(&self) -> &Obs {
        self.inner.obs()
    }

    /// The engine's instance.
    pub fn instance(&self) -> &'a Instance {
        self.inner.instance()
    }

    /// See [`ChainedLk::rng_mut`].
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        self.inner.rng_mut()
    }

    /// See [`ChainedLk::construct_tour`].
    pub fn construct_tour(&mut self) -> Tour {
        self.inner.construct_tour()
    }

    /// Fully LK-optimize `tour` in the chosen representation. Returns
    /// the new length.
    pub fn optimize_tour(&mut self, tour: &mut Tour) -> i64 {
        let before = tour.length(self.inner.inst);
        if self.two_level {
            let mut rep = TwoLevelList::from_tour(tour);
            let gain = self.inner.optimize(&mut rep);
            *tour = rep.to_tour();
            before - gain
        } else {
            before - self.inner.optimize(tour)
        }
    }

    /// See [`ChainedLk::clk_call`]; dispatches on the representation.
    pub fn clk_call(
        &mut self,
        tour: &mut Tour,
        kicks: u64,
        stop: &mut dyn FnMut(i64) -> bool,
    ) -> i64 {
        if self.two_level {
            self.inner.clk_call::<TwoLevelList>(tour, kicks, stop)
        } else {
            self.inner.clk_call::<Tour>(tour, kicks, stop)
        }
    }

    /// See [`ChainedLk::run`]; dispatches on the representation.
    pub fn run(&mut self, budget: &Budget) -> ClkResult {
        if self.two_level {
            self.inner.run_rep::<TwoLevelList>(budget)
        } else {
            self.inner.run_rep::<Tour>(budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    fn run_clk(inst: &Instance, kicks: u64, seed: u64) -> ClkResult {
        let nl = NeighborLists::build(inst, 10);
        let cfg = ChainedLkConfig {
            seed,
            ..Default::default()
        };
        let mut clk = ChainedLk::new(inst, &nl, cfg);
        clk.run(&Budget::kicks(kicks))
    }

    #[test]
    fn chaining_improves_over_plain_lk() {
        let inst = generate::uniform(200, 10_000.0, 71);
        let zero_kicks = run_clk(&inst, 0, 1);
        let many_kicks = run_clk(&inst, 200, 1);
        assert!(
            many_kicks.length <= zero_kicks.length,
            "kicks made things worse: {} vs {}",
            many_kicks.length,
            zero_kicks.length
        );
        assert_eq!(many_kicks.kicks, 200);
        assert!(many_kicks.tour.is_valid());
        assert_eq!(many_kicks.tour.length(&inst), many_kicks.length);
    }

    #[test]
    fn solves_small_grid_to_optimality() {
        let inst = generate::grid_known_optimum(8, 8, 100.0);
        let nl = NeighborLists::build(&inst, 8);
        let cfg = ChainedLkConfig {
            seed: 3,
            ..Default::default()
        };
        let mut clk = ChainedLk::new(&inst, &nl, cfg);
        let budget = Budget::kicks(3000).with_target(inst.known_optimum().unwrap());
        let res = clk.run(&budget);
        assert_eq!(
            res.length,
            inst.known_optimum().unwrap(),
            "CLK failed to solve an 8x8 grid within 3000 kicks"
        );
    }

    #[test]
    fn target_terminates_early() {
        let inst = generate::uniform(100, 10_000.0, 72);
        let nl = NeighborLists::build(&inst, 8);
        let mut clk = ChainedLk::new(&inst, &nl, ChainedLkConfig::default());
        // Absurdly easy target: any tour meets it.
        let res = clk.run(&Budget::kicks(10_000).with_target(i64::MAX / 2));
        assert_eq!(res.kicks, 0);
    }

    #[test]
    fn all_kick_strategies_work_end_to_end() {
        let inst = generate::uniform(120, 10_000.0, 73);
        let nl = NeighborLists::build(&inst, 10);
        for strategy in KickStrategy::ALL {
            let cfg = ChainedLkConfig {
                kick: strategy,
                seed: 9,
                ..Default::default()
            };
            let mut clk = ChainedLk::new(&inst, &nl, cfg);
            let res = clk.run(&Budget::kicks(30));
            assert!(res.tour.is_valid(), "{strategy:?}");
            assert_eq!(res.tour.length(&inst), res.length, "{strategy:?}");
        }
    }

    #[test]
    fn trace_is_monotone_decreasing() {
        let inst = generate::uniform(150, 10_000.0, 74);
        let res = run_clk(&inst, 100, 5);
        let lens: Vec<i64> = res.trace.points().iter().map(|&(_, _, l)| l).collect();
        for w in lens.windows(2) {
            assert!(w[1] < w[0], "trace not strictly improving: {lens:?}");
        }
    }

    #[test]
    fn deterministic_under_kick_budget() {
        let inst = generate::uniform(100, 10_000.0, 75);
        let a = run_clk(&inst, 50, 11);
        let b = run_clk(&inst, 50, 11);
        assert_eq!(a.length, b.length);
        assert_eq!(a.tour.order(), b.tour.order());
    }

    #[test]
    fn representations_agree_on_full_runs() {
        // The same seed must drive the exact same search on both
        // representations: identical kick sequence, identical final
        // tour, identical trace.
        let inst = generate::uniform(300, 10_000.0, 76);
        let nl = NeighborLists::build(&inst, 10);
        let cfg = ChainedLkConfig {
            seed: 13,
            ..Default::default()
        };
        let mut array = ChainedLk::new(&inst, &nl, cfg.clone());
        let mut twolevel = ChainedLk::new(&inst, &nl, cfg);
        let a = array.run_rep::<Tour>(&Budget::kicks(60));
        let b = twolevel.run_rep::<TwoLevelList>(&Budget::kicks(60));
        assert_eq!(a.length, b.length);
        assert_eq!(a.tour.order(), b.tour.order());
        assert_eq!(a.kicks, b.kicks);
    }

    #[test]
    fn parallel_kicks_deterministic_for_fixed_seed_and_workers() {
        let inst = generate::uniform(300, 10_000.0, 81);
        let nl = NeighborLists::build(&inst, 10);
        for workers in [2usize, 4] {
            let cfg = ChainedLkConfig {
                seed: 17,
                kick_workers: workers,
                ..Default::default()
            };
            let mut a = ChainedLk::new(&inst, &nl, cfg.clone());
            let mut b = ChainedLk::new(&inst, &nl, cfg);
            let ra = a.run(&Budget::kicks(40));
            let rb = b.run(&Budget::kicks(40));
            assert_eq!(ra.length, rb.length, "workers={workers}");
            assert_eq!(ra.tour.order(), rb.tour.order(), "workers={workers}");
            assert_eq!(ra.kicks, rb.kicks, "workers={workers}");
            assert!(ra.tour.is_valid());
            assert_eq!(ra.tour.length(&inst), ra.length);
        }
    }

    #[test]
    fn parallel_kicks_agree_across_representations() {
        // The adoption rule min(len, worker index) is representation-
        // independent, so both tour structures must produce identical
        // full runs under a worker pool too.
        let inst = generate::uniform(250, 10_000.0, 82);
        let nl = NeighborLists::build(&inst, 10);
        let cfg = ChainedLkConfig {
            seed: 23,
            kick_workers: 3,
            ..Default::default()
        };
        let mut array = ChainedLk::new(&inst, &nl, cfg.clone());
        let mut twolevel = ChainedLk::new(&inst, &nl, cfg);
        let a = array.run_rep::<Tour>(&Budget::kicks(45));
        let b = twolevel.run_rep::<TwoLevelList>(&Budget::kicks(45));
        assert_eq!(a.length, b.length);
        assert_eq!(a.tour.order(), b.tour.order());
        assert_eq!(a.kicks, b.kicks);
    }

    #[test]
    fn workers_one_is_bit_identical_to_serial_engine() {
        // kick_workers = 1 must take the exact serial code path: same
        // tour, same length, same kick count as the default config.
        let inst = generate::uniform(200, 10_000.0, 83);
        let nl = NeighborLists::build(&inst, 10);
        for seed in [1u64, 5, 9] {
            let serial_cfg = ChainedLkConfig {
                seed,
                ..Default::default()
            };
            assert_eq!(serial_cfg.kick_workers, 1, "default must stay serial");
            let one_cfg = ChainedLkConfig {
                seed,
                kick_workers: 1,
                ..Default::default()
            };
            let a = ChainedLk::new(&inst, &nl, serial_cfg).run(&Budget::kicks(50));
            let b = ChainedLk::new(&inst, &nl, one_cfg).run(&Budget::kicks(50));
            assert_eq!(a.length, b.length, "seed {seed}");
            assert_eq!(a.tour.order(), b.tour.order(), "seed {seed}");
            assert_eq!(a.kicks, b.kicks, "seed {seed}");
        }
    }

    #[test]
    fn parallel_steps_charge_the_kick_budget_per_attempt() {
        let inst = generate::uniform(150, 10_000.0, 84);
        let nl = NeighborLists::build(&inst, 10);
        let cfg = ChainedLkConfig {
            seed: 2,
            kick_workers: 4,
            ..Default::default()
        };
        let mut clk = ChainedLk::new(&inst, &nl, cfg);
        let res = clk.run(&Budget::kicks(40));
        // 40 attempts at 4 per step = exactly 10 parallel steps.
        assert_eq!(res.kicks, 40);
        assert_eq!(clk.kicks_spent(), 40);
        assert!(res.tour.is_valid());
        assert_eq!(res.tour.length(&inst), res.length);
    }

    #[test]
    fn engine_auto_selects_by_threshold() {
        let inst = generate::uniform(100, 10_000.0, 77);
        let nl = NeighborLists::build(&inst, 8);
        let small = ClkEngine::auto(&inst, &nl, ChainedLkConfig::default());
        assert_eq!(small.representation(), "array");
        let cfg = ChainedLkConfig {
            tl_threshold: 50,
            ..Default::default()
        };
        let big = ClkEngine::auto(&inst, &nl, cfg);
        assert_eq!(big.representation(), "twolevel");
    }

    #[test]
    fn engine_results_match_plain_chained_lk() {
        let inst = generate::uniform(150, 10_000.0, 78);
        let nl = NeighborLists::build(&inst, 10);
        let cfg = ChainedLkConfig {
            seed: 21,
            ..Default::default()
        };
        let mut plain = ChainedLk::new(&inst, &nl, cfg.clone());
        let want = plain.run(&Budget::kicks(40));
        for two_level in [false, true] {
            let mut engine = ClkEngine::with_representation(&inst, &nl, cfg.clone(), two_level);
            let got = engine.run(&Budget::kicks(40));
            assert_eq!(got.length, want.length, "two_level={two_level}");
            assert_eq!(got.tour.order(), want.tour.order(), "two_level={two_level}");
        }
    }

    #[test]
    fn engine_clk_call_matches_across_representations() {
        let inst = generate::uniform(200, 10_000.0, 79);
        let nl = NeighborLists::build(&inst, 10);
        let cfg = ChainedLkConfig {
            seed: 33,
            ..Default::default()
        };
        let mut results = Vec::new();
        for two_level in [false, true] {
            let mut engine = ClkEngine::with_representation(&inst, &nl, cfg.clone(), two_level);
            let mut tour = engine.construct_tour();
            let len = engine.clk_call(&mut tour, 25, &mut |_| false);
            assert_eq!(tour.length(&inst), len);
            results.push((len, tour.order().to_vec()));
        }
        assert_eq!(results[0], results[1]);
    }
}
