//! Divide-and-optimize sharding: partition → per-shard CLK → stitch →
//! seam refinement.
//!
//! The replicated-search design of the paper caps instance size at what
//! one node can hold; this module trades a bounded tour-quality gap for
//! horizontal data scaling (DualOpt style). The pipeline:
//!
//! 1. **Partition** — [`tsp_core::partition::Partition`] splits the
//!    instance into balanced k-d regions.
//! 2. **Solve** — a full [`ClkEngine`] runs on each region's
//!    [`SubInstance`] with a seed derived from the master seed
//!    ([`shard_seed`]), so any worker solving shard `s` produces the
//!    identical sub-tour.
//! 3. **Stitch** — sub-tours merge pairwise bottom-up along the
//!    partition's split tree: for each split, the cities nearest the
//!    split plane on each side nominate reconnection edges, the
//!    cheapest 2-opt-style reconnection (ties broken by city ids) joins
//!    the two cycles.
//! 4. **Refine** — moving windows centered on the stitch seams are
//!    re-optimized with 2-opt + Or-opt until a round yields no gain.
//!
//! ### Windowed re-optimization with pinned endpoints
//!
//! A window is a contiguous tour segment; its interior may be reordered
//! but its endpoints must keep facing the rest of the tour. We express
//! that as a standard sub-cycle optimization over an explicit-matrix
//! sub-instance where the *virtual* closing edge between the two
//! endpoints has weight `-PIN` (a huge negative constant): no improving
//! 2-opt/Or-opt move can afford to remove it, so the endpoints stay
//! adjacent in the sub-cycle and the sub-cycle minus the virtual edge
//! is exactly a path with fixed endpoints. The generic local-search
//! code runs unmodified.
//!
//! ### Determinism
//!
//! Everything here is a pure function of `(instance, ShardConfig)`:
//! the partition compares `(coordinate, id)`, shard seeds derive from
//! the master seed, stitching breaks ties by `(delta, city ids)`, and
//! refinement visits seams in sorted order. A 1-shard configuration
//! bypasses the pipeline entirely and is bit-identical to the
//! unsharded engine.

use std::time::Instant;

use obs_api::Obs;
use tsp_core::partition::{Partition, PartitionNode, SubInstance};
use tsp_core::{Instance, NeighborLists, Tour};

use crate::budget::Budget;
use crate::chained::{ChainedLkConfig, ClkEngine};
use crate::or_opt::or_opt;
use crate::search::Optimizer;
use crate::two_opt::two_opt;

/// Virtual-edge pin weight. Large enough that no gain computation can
/// profit from removing a `-PIN` edge, small enough that sums of six
/// such terms stay far from `i64` overflow.
const PIN: i64 = 1 << 40;

/// Configuration of the sharded solve pipeline.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested number of regions (clamped by the partitioner; `<= 1`
    /// selects the bit-identical unsharded path).
    pub shards: usize,
    /// Per-shard engine configuration. `clk.seed` is the *master* seed;
    /// each shard engine runs with [`shard_seed`]`(clk.seed, s)`.
    pub clk: ChainedLkConfig,
    /// CLK kick budget per shard.
    pub kicks_per_shard: u64,
    /// Seam window size in cities.
    pub window: usize,
    /// Hard cap on refinement rounds (the loop stops earlier at the
    /// first no-improvement round).
    pub max_refine_rounds: usize,
    /// Boundary cities per side nominated for stitching at each merge.
    pub boundary_cands: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 8,
            clk: ChainedLkConfig::default(),
            kicks_per_shard: 50,
            window: 256,
            max_refine_rounds: 16,
            boundary_cands: 24,
        }
    }
}

/// Per-shard seed derivation: the same multiplier the distributed
/// driver uses for node seeds, keyed by shard id, so any worker
/// assigned shard `s` reproduces the identical sub-tour.
#[inline]
pub fn shard_seed(master: u64, shard: usize) -> u64 {
    master.wrapping_mul(1_000_003).wrapping_add(shard as u64)
}

/// Counters and timings of one sharded solve.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Effective region count (1 on the unsharded path).
    pub shard_count: usize,
    /// Largest region — the per-worker memory bound.
    pub max_shard_cities: usize,
    /// Sub-tour length per shard, indexed by shard id.
    pub shard_lengths: Vec<i64>,
    /// Global tour length right after stitching, before refinement.
    pub stitched_length: i64,
    /// Total length recovered by seam refinement.
    pub refine_gain: i64,
    /// Refinement rounds executed (the last one gains nothing).
    pub refine_rounds: usize,
    /// Distinct seam cities enqueued for refinement.
    pub seam_cities: usize,
    /// Wall time in the per-shard CLK engines.
    pub solve_seconds: f64,
    /// Wall time stitching cycles.
    pub stitch_seconds: f64,
    /// Wall time refining seams.
    pub refine_seconds: f64,
}

/// Outcome of [`shard_solve`].
#[derive(Debug, Clone)]
pub struct ShardSolveResult {
    /// The stitched and refined global tour.
    pub tour: Tour,
    /// Its length under the instance metric.
    pub length: i64,
    /// Pipeline counters.
    pub stats: ShardStats,
}

/// Solve one region of a partition. Returns the sub-tour in *global*
/// city ids plus its length.
///
/// Pure function of `(inst, part, shard, cfg)` — this is what makes
/// distributed shard placement free: any node may solve any shard.
pub fn solve_one_shard(
    inst: &Instance,
    part: &Partition,
    shard: usize,
    cfg: &ShardConfig,
) -> (Vec<u32>, i64) {
    let sub = SubInstance::extract(
        inst,
        part.shard(shard),
        format!("{}[s{shard}]", inst.name()),
    );
    let mut clk_cfg = cfg.clk.clone();
    clk_cfg.seed = shard_seed(cfg.clk.seed, shard);
    let neighbors = clk_cfg.build_neighbors(sub.instance());
    let mut engine = ClkEngine::auto(sub.instance(), &neighbors, clk_cfg);
    let res = engine.run(&Budget::kicks(cfg.kicks_per_shard));
    (sub.to_global_order(res.tour.order()), res.length)
}

/// Stitch per-shard sub-tours into one global tour and refine the
/// seams. `cycles[s]` must be shard `s`'s sub-tour in global ids.
///
/// Shared by the local pipeline and the distributed collector.
pub fn stitch_and_refine(
    inst: &Instance,
    part: &Partition,
    mut cycles: Vec<Option<Vec<u32>>>,
    cfg: &ShardConfig,
    obs: &Obs,
    stats: &mut ShardStats,
) -> Tour {
    let t_stitch = Instant::now();
    let mut seams = Vec::new();
    let mut pos = vec![0u32; inst.len()];
    let order = stitch_rec(
        inst,
        part,
        part.root(),
        &mut cycles,
        cfg.boundary_cands.max(1),
        &mut seams,
        &mut pos,
    );
    stats.stitch_seconds = t_stitch.elapsed().as_secs_f64();
    obs.histogram("shard.stitch.ns")
        .observe(t_stitch.elapsed().as_nanos() as u64);

    let mut order = order;
    stats.stitched_length = order_length(inst, &order);

    let t_refine = Instant::now();
    seams.sort_unstable();
    seams.dedup();
    stats.seam_cities = seams.len();
    obs.counter(obs_api::kinds::C_SHARD_SEAM_CITIES)
        .add(seams.len() as u64);
    let (gain, rounds) = refine_seams(inst, &mut order, &seams, cfg);
    stats.refine_gain = gain;
    stats.refine_rounds = rounds;
    stats.refine_seconds = t_refine.elapsed().as_secs_f64();
    obs.histogram("shard.refine.ns")
        .observe(t_refine.elapsed().as_nanos() as u64);
    obs.counter(obs_api::kinds::C_SHARD_REFINE_GAIN).add(gain as u64);

    let tour = Tour::from_order(order);
    debug_assert!(tour.is_valid());
    tour
}

/// Run the full divide-and-optimize pipeline on `inst`.
pub fn shard_solve(inst: &Instance, cfg: &ShardConfig) -> ShardSolveResult {
    shard_solve_with_obs(inst, cfg, &Obs::disabled())
}

/// [`shard_solve`] with observability probes attached.
pub fn shard_solve_with_obs(inst: &Instance, cfg: &ShardConfig, obs: &Obs) -> ShardSolveResult {
    // Unsharded path: bit-identical to running the engine directly.
    if cfg.shards <= 1 || !inst.metric().is_geometric() {
        return unsharded(inst, cfg);
    }
    let part = Partition::build(inst, cfg.shards);
    if part.shard_count() <= 1 {
        return unsharded(inst, cfg);
    }

    let t_solve = Instant::now();
    let mut stats = ShardStats {
        shard_count: part.shard_count(),
        max_shard_cities: part.max_shard_len(),
        ..ShardStats::default()
    };
    let mut cycles: Vec<Option<Vec<u32>>> = Vec::with_capacity(part.shard_count());
    for s in 0..part.shard_count() {
        let t = obs.timer();
        let (order, len) = solve_one_shard(inst, &part, s, cfg);
        t.observe_into(&obs.histogram("shard.solve.ns"));
        obs.counter(obs_api::kinds::C_SHARDS_SOLVED).incr();
        stats.shard_lengths.push(len);
        cycles.push(Some(order));
    }
    stats.solve_seconds = t_solve.elapsed().as_secs_f64();

    let tour = stitch_and_refine(inst, &part, cycles, cfg, obs, &mut stats);
    let length = tour.length(inst);
    ShardSolveResult { tour, length, stats }
}

/// The bit-identical fallback: the plain engine on the full instance
/// with the master seed and the same kick budget.
fn unsharded(inst: &Instance, cfg: &ShardConfig) -> ShardSolveResult {
    let neighbors = cfg.clk.build_neighbors(inst);
    let mut engine = ClkEngine::auto(inst, &neighbors, cfg.clk.clone());
    let res = engine.run(&Budget::kicks(cfg.kicks_per_shard));
    let stats = ShardStats {
        shard_count: 1,
        max_shard_cities: inst.len(),
        shard_lengths: vec![res.length],
        stitched_length: res.length,
        solve_seconds: res.seconds,
        ..ShardStats::default()
    };
    ShardSolveResult {
        tour: res.tour,
        length: res.length,
        stats,
    }
}

/// Length of a cyclic order under the instance metric.
fn order_length(inst: &Instance, order: &[u32]) -> i64 {
    let mut total = 0i64;
    for i in 0..order.len() {
        let a = order[i] as usize;
        let b = order[(i + 1) % order.len()] as usize;
        total += inst.dist(a, b);
    }
    total
}

/// Post-order walk of the partition tree, merging child cycles at each
/// split.
fn stitch_rec(
    inst: &Instance,
    part: &Partition,
    node: u32,
    cycles: &mut [Option<Vec<u32>>],
    k: usize,
    seams: &mut Vec<u32>,
    pos: &mut [u32],
) -> Vec<u32> {
    match part.node(node) {
        PartitionNode::Leaf { shard } => cycles[shard as usize]
            .take()
            .expect("shard cycle consumed twice"),
        PartitionNode::Split { axis, lo, hi } => {
            let a = stitch_rec(inst, part, lo, cycles, k, seams, pos);
            let b = stitch_rec(inst, part, hi, cycles, k, seams, pos);
            merge_cycles(inst, a, b, axis, part.split_value(node), k, seams, pos)
        }
    }
}

/// The `k` cities of `cycle` nearest the split plane, ties by id.
fn boundary_candidates(
    inst: &Instance,
    cycle: &[u32],
    axis: u8,
    value: f64,
    k: usize,
) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = cycle
        .iter()
        .map(|&c| {
            let p = inst.point(c as usize);
            let coord = if axis == 0 { p.x } else { p.y };
            ((coord - value).abs(), c)
        })
        .collect();
    let k = k.min(scored.len());
    let cmp = |a: &(f64, u32), b: &(f64, u32)| {
        a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
    };
    if k < scored.len() {
        scored.select_nth_unstable_by(k - 1, cmp);
        scored.truncate(k);
    }
    scored.sort_unstable_by(cmp);
    scored.into_iter().map(|(_, c)| c).collect()
}

/// Greedy boundary reconnection of two cycles separated by a split
/// plane: over all (boundary city of A, boundary city of B) pairs,
/// remove one tour edge on each side and add the cheaper of the two
/// 2-opt-style reconnections. Deterministic: the best move is the
/// minimum of `(delta, a, b, combo)`.
#[allow(clippy::too_many_arguments)]
fn merge_cycles(
    inst: &Instance,
    a: Vec<u32>,
    b: Vec<u32>,
    axis: u8,
    value: f64,
    k: usize,
    seams: &mut Vec<u32>,
    pos: &mut [u32],
) -> Vec<u32> {
    for (i, &c) in a.iter().enumerate() {
        pos[c as usize] = i as u32;
    }
    for (i, &c) in b.iter().enumerate() {
        pos[c as usize] = i as u32;
    }
    let cand_a = boundary_candidates(inst, &a, axis, value, k);
    let cand_b = boundary_candidates(inst, &b, axis, value, k);

    let mut best: Option<(i64, u32, u32, u8)> = None;
    for &x in &cand_a {
        let nx = a[(pos[x as usize] as usize + 1) % a.len()];
        let d_x_nx = inst.dist(x as usize, nx as usize);
        for &y in &cand_b {
            let ny = b[(pos[y as usize] as usize + 1) % b.len()];
            let removed = d_x_nx + inst.dist(y as usize, ny as usize);
            // combo 0: add x–y and nx–ny (traverse B backwards);
            // combo 1: add x–ny and nx–y (traverse B forwards).
            let d0 = inst.dist(x as usize, y as usize) + inst.dist(nx as usize, ny as usize)
                - removed;
            let d1 = inst.dist(x as usize, ny as usize) + inst.dist(nx as usize, y as usize)
                - removed;
            for (combo, delta) in [(0u8, d0), (1u8, d1)] {
                let cand = (delta, x, y, combo);
                if best.is_none_or(|cur| cand < cur) {
                    best = Some(cand);
                }
            }
        }
    }
    let (_, x, y, combo) = best.expect("boundary candidate sets are never empty");
    let nx_pos = (pos[x as usize] as usize + 1) % a.len();
    let nx = a[nx_pos];
    let ny_pos = (pos[y as usize] as usize + 1) % b.len();
    let ny = b[ny_pos];
    seams.extend_from_slice(&[x, nx, y, ny]);

    // Output: A forward from nx around to x, then B joined by the
    // chosen combo. Both wrap edges are exactly the added edges.
    let mut out = Vec::with_capacity(a.len() + b.len());
    for i in 0..a.len() {
        out.push(a[(nx_pos + i) % a.len()]);
    }
    if combo == 0 {
        // x–y, then B backwards y → … → ny, wrap ny–nx.
        let start = pos[y as usize] as usize;
        for i in 0..b.len() {
            out.push(b[(start + b.len() - i) % b.len()]);
        }
    } else {
        // x–ny, then B forwards ny → … → y, wrap y–nx.
        for i in 0..b.len() {
            out.push(b[(ny_pos + i) % b.len()]);
        }
    }
    out
}

/// Iterate windowed re-optimization over the seam cities (sorted order)
/// until a round yields no improvement or the round cap is hit.
/// Returns `(total gain, rounds executed)`.
fn refine_seams(
    inst: &Instance,
    order: &mut [u32],
    seams: &[u32],
    cfg: &ShardConfig,
) -> (i64, usize) {
    let mut pos = vec![0u32; inst.len()];
    for (i, &c) in order.iter().enumerate() {
        pos[c as usize] = i as u32;
    }
    let mut total = 0i64;
    let mut rounds = 0usize;
    while rounds < cfg.max_refine_rounds.max(1) {
        let mut round_gain = 0i64;
        for &c in seams {
            let center = pos[c as usize] as usize;
            round_gain += refine_window(inst, order, &mut pos, center, cfg.window);
        }
        rounds += 1;
        total += round_gain;
        if round_gain == 0 {
            break;
        }
    }
    (total, rounds)
}

/// Re-optimize the window of `window` consecutive tour cities centered
/// at position `center` as a pinned-endpoint path (see module docs).
/// Splices the improved path back in place and returns the gain.
fn refine_window(
    inst: &Instance,
    order: &mut [u32],
    pos: &mut [u32],
    center: usize,
    window: usize,
) -> i64 {
    let n = order.len();
    // Keep at least one city outside the window so the pinned path has
    // a rest-of-tour to face.
    let m = window.min(n - 1);
    if m < 5 {
        return 0;
    }
    let start = (center + n - m / 2) % n;
    let w: Vec<u32> = (0..m).map(|i| order[(start + i) % n]).collect();
    let old_cost: i64 = w
        .windows(2)
        .map(|p| inst.dist(p[0] as usize, p[1] as usize))
        .sum();

    // Explicit sub-instance over the window with the virtual closing
    // edge pinned at -PIN: local ids are window offsets, the path
    // endpoints are local 0 and m-1.
    let mut mat = vec![0i64; m * m];
    for i in 0..m {
        for j in (i + 1)..m {
            let d = inst.dist(w[i] as usize, w[j] as usize);
            mat[i * m + j] = d;
            mat[j * m + i] = d;
        }
    }
    mat[m - 1] = -PIN;
    mat[(m - 1) * m] = -PIN;
    let sub = Instance::explicit("seam-window", mat, m);
    let neighbors = NeighborLists::build(&sub, 8.min(m - 1));
    let mut opt = Optimizer::new(&sub, &neighbors);
    let mut tour = Tour::identity(m);
    loop {
        let g = two_opt(&mut opt, &mut tour) + or_opt(&mut opt, &mut tour);
        if g <= 0 {
            break;
        }
    }

    // The virtual pair (0, m-1) is still adjacent; unroll the cycle
    // into the path 0 → … → m-1 by walking away from m-1.
    let step_next = tour.next(0) != m - 1;
    debug_assert!(step_next || tour.prev(0) != m - 1 || m == 2);
    let mut path = Vec::with_capacity(m);
    let mut c = 0usize;
    for _ in 0..m {
        path.push(c as u32);
        c = if step_next { tour.next(c) } else { tour.prev(c) };
    }
    debug_assert_eq!(path[m - 1] as usize, m - 1, "virtual edge was broken");

    let new_cost: i64 = path
        .windows(2)
        .map(|p| inst.dist(w[p[0] as usize] as usize, w[p[1] as usize] as usize))
        .sum();
    if new_cost >= old_cost {
        return 0;
    }
    for (i, &li) in path.iter().enumerate() {
        let slot = (start + i) % n;
        let city = w[li as usize];
        order[slot] = city;
        pos[city as usize] = slot as u32;
    }
    old_cost - new_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    fn small_cfg(shards: usize, seed: u64) -> ShardConfig {
        let mut cfg = ShardConfig {
            shards,
            kicks_per_shard: 10,
            window: 48,
            ..ShardConfig::default()
        };
        cfg.clk.seed = seed;
        cfg
    }

    #[test]
    fn sharded_solve_yields_valid_tour() {
        let inst = generate::uniform(600, 10_000.0, 31);
        for shards in [2, 4, 7] {
            let res = shard_solve(&inst, &small_cfg(shards, 9));
            assert!(res.tour.is_valid(), "shards={shards}");
            assert_eq!(res.tour.len(), inst.len());
            assert_eq!(res.length, res.tour.length(&inst), "shards={shards}");
            assert_eq!(res.stats.shard_count, shards);
            assert!(res.stats.seam_cities > 0);
            assert!(res.stats.refine_gain >= 0);
        }
    }

    #[test]
    fn fixed_seed_reruns_bit_identical() {
        let inst = generate::uniform(500, 10_000.0, 17);
        let cfg = small_cfg(4, 77);
        let a = shard_solve(&inst, &cfg);
        let b = shard_solve(&inst, &cfg);
        assert_eq!(a.length, b.length);
        assert_eq!(a.tour.order(), b.tour.order());
    }

    #[test]
    fn one_shard_bit_identical_to_unsharded_engine() {
        let inst = generate::uniform(300, 10_000.0, 5);
        let cfg = small_cfg(1, 123);
        let sharded = shard_solve(&inst, &cfg);
        let neighbors = cfg.clk.build_neighbors(&inst);
        let mut engine = ClkEngine::auto(&inst, &neighbors, cfg.clk.clone());
        let direct = engine.run(&Budget::kicks(cfg.kicks_per_shard));
        assert_eq!(sharded.length, direct.length);
        assert_eq!(sharded.tour.order(), direct.tour.order());
    }

    #[test]
    fn refinement_never_loses_length() {
        let inst = generate::uniform(800, 10_000.0, 3);
        let res = shard_solve(&inst, &small_cfg(8, 1));
        assert_eq!(
            res.length,
            res.stats.stitched_length - res.stats.refine_gain,
            "refine gain accounting"
        );
        assert!(res.length <= res.stats.stitched_length);
    }

    #[test]
    fn known_optimum_grid_stays_near_optimal() {
        // 40x40 unit grid, optimum 1600. The sharded pipeline must stay
        // within a few percent — seams cost something, but stitching
        // along k-d planes on a grid is nearly free.
        let inst = generate::grid_known_optimum(40, 40, 10.0);
        let mut cfg = small_cfg(4, 7);
        cfg.kicks_per_shard = 30;
        let res = shard_solve(&inst, &cfg);
        let excess = inst.excess(res.length).unwrap();
        assert!(
            excess <= 0.05,
            "sharded grid gap {excess:.4} above 5% (len {})",
            res.length
        );
    }

    #[test]
    fn refine_window_improves_a_bad_seam() {
        // A tour with a deliberately crossed seam in the middle; one
        // window pass must uncross it without moving the fixed ends.
        let inst = generate::uniform(64, 1_000.0, 21);
        let mut order: Vec<u32> = (0..64u32).collect();
        // Shuffle the middle deterministically to create crossings.
        order[20..44].reverse();
        order.swap(25, 40);
        order.swap(28, 33);
        let mut pos = vec![0u32; 64];
        for (i, &c) in order.iter().enumerate() {
            pos[c as usize] = i as u32;
        }
        let before: i64 = order_length(&inst, &order);
        let gain = refine_window(&inst, &mut order, &mut pos, 32, 32);
        let after: i64 = order_length(&inst, &order);
        assert_eq!(before - after, gain);
        assert!(gain >= 0);
        // Still a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64u32).collect::<Vec<_>>());
    }

    #[test]
    fn merge_cycles_produces_one_cycle() {
        let inst = generate::uniform(40, 1_000.0, 8);
        let part = Partition::build(&inst, 2);
        let a: Vec<u32> = part.shard(0).to_vec();
        let b: Vec<u32> = part.shard(1).to_vec();
        let (axis, value) = match part.node(part.root()) {
            PartitionNode::Split { axis, .. } => (axis, part.split_value(part.root())),
            _ => unreachable!(),
        };
        let mut seams = Vec::new();
        let mut pos = vec![0u32; 40];
        let merged = merge_cycles(&inst, a, b, axis, value, 8, &mut seams, &mut pos);
        assert_eq!(merged.len(), 40);
        let mut sorted = merged.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40u32).collect::<Vec<_>>());
        assert_eq!(seams.len(), 4);
    }
}
