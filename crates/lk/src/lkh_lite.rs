//! LKH-lite: Lin-Kernighan steered by α-nearness candidate lists.
//!
//! Stand-in for Helsgaun's LKH in the paper's Table 2 comparison. Like
//! LKH it (a) builds candidate lists from Held-Karp 1-trees (α-nearness)
//! rather than geometric distance, (b) searches deeper chains with wider
//! backtracking, and (c) trades much longer running time for better
//! final tours — exactly the profile the paper compares against
//! ("LKH is known for good tour qualities, but requires long running
//! times", §4.3).

use heldkarp::{alpha_candidate_lists, AscentConfig};
use tsp_core::{Instance, NeighborLists};

use crate::budget::Budget;
use crate::chained::{ChainedLk, ChainedLkConfig, ClkResult};
use crate::kick::KickStrategy;
use crate::lin_kernighan::LkConfig;

/// Configuration for LKH-lite.
#[derive(Debug, Clone)]
pub struct LkhLiteConfig {
    /// α-candidate list width (LKH's default is 5).
    pub alpha_k: usize,
    /// Held-Karp ascent effort.
    pub ascent: AscentConfig,
    /// Chain depth / breadth (deeper & wider than plain CLK).
    pub lk: LkConfig,
    /// Number of kicked restarts ("trials" in LKH terms).
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LkhLiteConfig {
    fn default() -> Self {
        LkhLiteConfig {
            alpha_k: 6,
            ascent: AscentConfig::default(),
            lk: LkConfig {
                max_depth: 64,
                breadth: vec![8, 6, 4, 2],
            },
            trials: 100,
            seed: 0,
        }
    }
}

/// Result of an LKH-lite run, including the α-list preprocessing time.
#[derive(Debug, Clone)]
pub struct LkhLiteResult {
    /// The underlying chained-search result.
    pub clk: ClkResult,
    /// Seconds spent on the Held-Karp ascent + α lists.
    pub preprocess_seconds: f64,
}

/// Build the α-nearness lists for an instance (exposed for reuse).
pub fn alpha_lists(inst: &Instance, cfg: &LkhLiteConfig) -> NeighborLists {
    alpha_candidate_lists(inst, cfg.alpha_k, &cfg.ascent)
}

/// Run LKH-lite under a budget (the budget applies to the search phase;
/// preprocessing is reported separately, as the DIMACS normalization
/// does).
pub fn lkh_lite(inst: &Instance, cfg: &LkhLiteConfig, budget: &Budget) -> LkhLiteResult {
    let pre = std::time::Instant::now();
    let neighbors = alpha_lists(inst, cfg);
    let preprocess_seconds = pre.elapsed().as_secs_f64();

    let clk_cfg = ChainedLkConfig {
        kick: KickStrategy::RandomWalk(50),
        lk: cfg.lk.clone(),
        neighbor_k: cfg.alpha_k,
        seed: cfg.seed,
        ..Default::default()
    };
    let mut engine = ChainedLk::new(inst, &neighbors, clk_cfg);
    let budget = if budget.max_kicks.is_none() && budget.time_limit.is_none() {
        budget.clone().with_max_kicks(cfg.trials)
    } else {
        budget.clone()
    };
    let clk = engine.run(&budget);
    LkhLiteResult {
        clk,
        preprocess_seconds,
    }
}

/// Compare-style helper: returns the final tour quality of LKH-lite.
pub fn final_length(inst: &Instance, cfg: &LkhLiteConfig, budget: &Budget) -> i64 {
    lkh_lite(inst, cfg, budget).clk.length
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn produces_valid_good_tours() {
        let inst = generate::uniform(100, 10_000.0, 81);
        let cfg = LkhLiteConfig {
            trials: 20,
            ascent: AscentConfig {
                max_iterations: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = lkh_lite(&inst, &cfg, &Budget::kicks(20));
        assert!(res.clk.tour.is_valid());
        assert_eq!(res.clk.tour.length(&inst), res.clk.length);
        assert!(res.preprocess_seconds >= 0.0);
    }

    #[test]
    fn solves_grid_like_clk_does() {
        let inst = generate::grid_known_optimum(6, 6, 100.0);
        let cfg = LkhLiteConfig {
            ascent: AscentConfig {
                max_iterations: 60,
                ..Default::default()
            },
            seed: 2,
            ..Default::default()
        };
        let budget = Budget::kicks(1500).with_target(inst.known_optimum().unwrap());
        let res = lkh_lite(&inst, &cfg, &budget);
        assert_eq!(res.clk.length, inst.known_optimum().unwrap());
    }

    #[test]
    fn alpha_lists_differ_from_geometric() {
        // On clustered data the α ordering re-ranks candidates for at
        // least some cities (bridging edges get low α despite length).
        let inst = generate::clustered(80, 100_000.0, 4, 2_000.0, 3);
        let cfg = LkhLiteConfig {
            ascent: AscentConfig {
                max_iterations: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        let alpha = alpha_lists(&inst, &cfg);
        let geo = NeighborLists::build(&inst, cfg.alpha_k);
        let mut differs = false;
        for c in 0..inst.len() {
            if alpha.of(c) != geo.of(c) {
                differs = true;
                break;
            }
        }
        assert!(differs, "α lists identical to geometric lists");
    }
}
