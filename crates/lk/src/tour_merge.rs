//! Tour merging (in the spirit of Cook & Seymour 2003).
//!
//! Stand-in for the paper's Table 2 "TM-CLK" comparator. Cook & Seymour
//! merge the edge sets of several good tours into a sparse graph and
//! find the best tour *within that graph* by branch decomposition. We
//! implement the pairwise core of the idea as a partition-based merge
//! (a.k.a. partition crossover): take the union graph of two tours,
//! contract the edges they share, split the remainder into independent
//! differing components, and inside every component independently pick
//! whichever parent's edge set is shorter. The result is the best tour
//! in the (exponentially large) recombination family, computed in
//! linear time. Folding k tours pairwise approximates the k-way merge.

use tsp_core::{Instance, Tour};

/// Merge two tours: returns a tour at most as long as the better
/// parent, optimal over the component-wise recombinations of the two.
pub fn merge_two(inst: &Instance, a: &Tour, b: &Tour) -> Tour {
    let n = inst.len();
    debug_assert_eq!(a.len(), n);
    debug_assert_eq!(b.len(), n);

    // Edge membership of b for O(1) "shared edge" queries.
    let shared = |x: usize, y: usize| -> bool { b.has_edge(x, y) };

    // Label the connected components of the symmetric difference graph:
    // vertices connected by *unshared* edges of either tour belong to
    // one component. Vertices only touched by shared edges get their
    // own (irrelevant) labels.
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut ncomp = 0u32;
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = ncomp;
        stack.push(start as u32);
        while let Some(v) = stack.pop() {
            let v = v as usize;
            // Unshared edges of a and of b at v.
            let vnbrs = [a.prev(v), a.next(v), b.prev(v), b.next(v)];
            for (i, &u) in vnbrs.iter().enumerate() {
                let is_a = i < 2;
                let edge_shared = if is_a { shared(v, u) } else { a.has_edge(v, u) };
                if edge_shared {
                    continue;
                }
                if comp[u] == u32::MAX {
                    comp[u] = ncomp;
                    stack.push(u as u32);
                }
            }
        }
        ncomp += 1;
    }

    // Cost of each parent's unshared edges per component. Shared edges
    // cost the same in both parents, so only unshared edges decide.
    let mut cost_a = vec![0i64; ncomp as usize];
    let mut cost_b = vec![0i64; ncomp as usize];
    let mut crosses = vec![false; ncomp as usize];
    for (x, y) in a.edges() {
        if !shared(x, y) {
            if comp[x] != comp[y] {
                // An unshared edge crossing components means the
                // component structure is not independent; fall back.
                crosses[comp[x] as usize] = true;
                crosses[comp[y] as usize] = true;
            } else {
                cost_a[comp[x] as usize] += inst.dist(x, y);
            }
        }
    }
    for (x, y) in b.edges() {
        if !a.has_edge(x, y) {
            if comp[x] != comp[y] {
                crosses[comp[x] as usize] = true;
                crosses[comp[y] as usize] = true;
            } else {
                cost_b[comp[x] as usize] += inst.dist(x, y);
            }
        }
    }

    // Choose per component. Components where b is cheaper adopt b's
    // unshared edges; everything else keeps a's. (Components marked
    // `crosses` conservatively keep a.)
    let use_b: Vec<bool> = (0..ncomp as usize)
        .map(|c| !crosses[c] && cost_b[c] < cost_a[c])
        .collect();
    if !use_b.iter().any(|&u| u) {
        return if a.length(inst) <= b.length(inst) {
            a.clone()
        } else {
            b.clone()
        };
    }

    // Assemble: adjacency from shared edges + per-component choice.
    let mut adj = vec![[u32::MAX; 2]; n];
    let mut deg = vec![0u8; n];
    let push = |x: usize, y: usize, adj: &mut Vec<[u32; 2]>, deg: &mut Vec<u8>| -> bool {
        if deg[x] >= 2 || deg[y] >= 2 {
            return false;
        }
        adj[x][deg[x] as usize] = y as u32;
        adj[y][deg[y] as usize] = x as u32;
        deg[x] += 1;
        deg[y] += 1;
        true
    };
    let mut ok = true;
    for (x, y) in a.edges() {
        let take = if shared(x, y) {
            true
        } else {
            !use_b[comp[x] as usize]
        };
        if take && !push(x, y, &mut adj, &mut deg) {
            ok = false;
            break;
        }
    }
    if ok {
        for (x, y) in b.edges() {
            if !a.has_edge(x, y)
                && use_b[comp[x] as usize]
                && !push(x, y, &mut adj, &mut deg)
            {
                ok = false;
                break;
            }
        }
    }
    // Validate: all degrees 2 and a single cycle.
    if ok && deg.iter().all(|&d| d == 2) {
        let mut order = Vec::with_capacity(n);
        let mut prev = u32::MAX;
        let mut cur = 0u32;
        loop {
            order.push(cur);
            let nbrs = adj[cur as usize];
            let next = if nbrs[0] != prev { nbrs[0] } else { nbrs[1] };
            if next == 0 || order.len() > n {
                break;
            }
            prev = cur;
            cur = next;
        }
        if order.len() == n {
            let merged = Tour::from_order(order);
            let (la, lb, lm) = (a.length(inst), b.length(inst), merged.length(inst));
            if lm <= la.min(lb) {
                return merged;
            }
        }
    }
    // Fallback: the better parent (recombination was degenerate).
    if a.length(inst) <= b.length(inst) {
        a.clone()
    } else {
        b.clone()
    }
}

/// Merge many tours by pairwise folding (best-first).
///
/// # Panics
///
/// Panics if `tours` is empty.
pub fn merge_tours(inst: &Instance, tours: &[Tour]) -> Tour {
    assert!(!tours.is_empty(), "need at least one tour to merge");
    let mut sorted: Vec<&Tour> = tours.iter().collect();
    sorted.sort_by_key(|t| t.length(inst));
    let mut acc = sorted[0].clone();
    for t in &sorted[1..] {
        acc = merge_two(inst, &acc, t);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::chained::{ChainedLk, ChainedLkConfig};
    use tsp_core::{generate, NeighborLists};

    fn clk_tour(inst: &Instance, seed: u64, kicks: u64) -> Tour {
        let nl = NeighborLists::build(inst, 8);
        let cfg = ChainedLkConfig {
            seed,
            ..Default::default()
        };
        let mut clk = ChainedLk::new(inst, &nl, cfg);
        clk.run(&Budget::kicks(kicks)).tour
    }

    #[test]
    fn merge_never_worse_than_parents() {
        let inst = generate::uniform(150, 10_000.0, 101);
        let a = clk_tour(&inst, 1, 10);
        let b = clk_tour(&inst, 2, 10);
        let m = merge_two(&inst, &a, &b);
        assert!(m.is_valid());
        assert!(m.length(&inst) <= a.length(&inst).min(b.length(&inst)));
    }

    #[test]
    fn merge_identical_tours_is_identity() {
        let inst = generate::uniform(80, 10_000.0, 102);
        let a = clk_tour(&inst, 3, 5);
        let m = merge_two(&inst, &a, &a.clone());
        assert_eq!(m.length(&inst), a.length(&inst));
    }

    #[test]
    fn multi_merge_of_diverse_tours() {
        let inst = generate::uniform(120, 10_000.0, 103);
        let tours: Vec<Tour> = (0..6).map(|s| clk_tour(&inst, s, 8)).collect();
        let best_parent = tours.iter().map(|t| t.length(&inst)).min().unwrap();
        let merged = merge_tours(&inst, &tours);
        assert!(merged.is_valid());
        assert!(merged.length(&inst) <= best_parent);
    }

    #[test]
    fn merge_can_strictly_improve() {
        // Two tours differing in two independent regions, each better in
        // one region, merge beats both. Construct explicitly on a grid.
        let inst = generate::uniform(200, 10_000.0, 104);
        // Weakly-optimized diverse parents give the merge room to win.
        let a = clk_tour(&inst, 11, 2);
        let b = clk_tour(&inst, 12, 2);
        let m = merge_two(&inst, &a, &b);
        // Strict improvement is not guaranteed for every seed, but the
        // merged tour must never regress; record strictness when present.
        assert!(m.length(&inst) <= a.length(&inst).min(b.length(&inst)));
    }
}
