//! 2-opt local search with candidate lists and don't-look bits.
//!
//! For every active city `t1`, both incident tour edges are considered
//! for removal; the replacement endpoint `t3` is drawn from `t1`'s
//! candidate list and pruned as soon as `d(t1,t3) ≥ d(t1,t2)` (lists are
//! sorted). This is the textbook neighbor-list 2-opt of Johnson &
//! McGeoch, used here both standalone (baseline) and as a building
//! block in tests.

use tsp_core::TourOps;

use crate::search::{two_opt_by_edges, Optimizer};

/// One attempt to improve around city `t1`. Applies the first improving
/// move found, re-activates its four endpoints and returns the
/// (positive) gain, or returns 0.
fn improve_city<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T, t1: usize) -> i64 {
    // Candidate distances come from the cache, not the metric: the
    // inner loop never recomputes a sqrt/trig distance.
    let (cands, cdists) = opt.neighbors().of_with_dists(t1);
    // Direction 0: remove (t1, next(t1)); new edge (t1, t3),
    // second removed edge (t3, next(t3)), second new edge (t2, t4).
    // Direction 1 mirrors with prev().
    for dir in 0..2 {
        let t2 = if dir == 0 { tour.next(t1) } else { tour.prev(t1) };
        let d_t1_t2 = opt.dist(t1, t2);
        for (ci, &t3) in cands.iter().enumerate() {
            let t3 = t3 as usize;
            let d_t1_t3 = cdists[ci];
            if d_t1_t3 >= d_t1_t2 {
                break; // sorted candidates: no further gain possible
            }
            if t3 == t2 {
                continue;
            }
            let t4 = if dir == 0 { tour.next(t3) } else { tour.prev(t3) };
            if t4 == t1 {
                continue;
            }
            let gain = d_t1_t2 + opt.dist(t3, t4) - d_t1_t3 - opt.dist(t2, t4);
            if gain > 0 {
                two_opt_by_edges(tour, (t1, t2), (t3, t4));
                debug_assert!(tour.has_edge(t1, t3) && tour.has_edge(t2, t4));
                for c in [t1, t2, t3, t4] {
                    opt.activate(c);
                }
                return gain;
            }
        }
    }
    0
}

/// Run 2-opt to local optimality over the active queue.
///
/// Returns the total gain. On return every city's don't-look bit is set
/// (no improving 2-opt move exists among candidate edges).
pub fn two_opt_pass<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    let mut total = 0i64;
    while let Some(t1) = opt.pop_active() {
        let gain = improve_city(opt, tour, t1);
        if gain > 0 {
            total += gain;
        } else {
            opt.set_dont_look(t1);
        }
    }
    total
}

/// Convenience: fully optimize `tour` with 2-opt from scratch.
pub fn two_opt<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    opt.activate_all();
    two_opt_pass(opt, tour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists, Tour};

    #[test]
    fn uncrosses_square() {
        let inst = tsp_core::Instance::new(
            "sq",
            vec![
                tsp_core::Point::new(0.0, 0.0),
                tsp_core::Point::new(10.0, 0.0),
                tsp_core::Point::new(10.0, 10.0),
                tsp_core::Point::new(0.0, 10.0),
            ],
            tsp_core::Metric::Euc2d,
        );
        let nl = NeighborLists::build(&inst, 3);
        let mut opt = Optimizer::new(&inst, &nl);
        let mut tour = Tour::from_order(vec![0, 2, 1, 3]);
        let before = tour.length(&inst);
        let gain = two_opt(&mut opt, &mut tour);
        assert_eq!(tour.length(&inst), before - gain);
        assert_eq!(tour.length(&inst), 40);
    }

    #[test]
    fn improves_random_tours_substantially() {
        let inst = generate::uniform(200, 10_000.0, 21);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut tour = Tour::random(200, &mut rng);
        let before = tour.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let gain = two_opt(&mut opt, &mut tour);
        assert!(tour.is_valid());
        assert_eq!(tour.length(&inst), before - gain);
        assert!(
            (tour.length(&inst) as f64) < 0.35 * before as f64,
            "2-opt should cut a random tour by >65%: {} -> {}",
            before,
            tour.length(&inst)
        );
    }

    #[test]
    fn converges_to_a_fixed_point() {
        // Endpoint-only DLB reactivation means a single sweep may stop
        // slightly short of the true candidate-list local optimum (the
        // standard trade-off); repeated sweeps must reach a fixed point.
        let inst = generate::uniform(100, 10_000.0, 22);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut tour = Tour::random(100, &mut rng);
        let mut opt = Optimizer::new(&inst, &nl);
        let mut sweeps = 0;
        loop {
            let gain = two_opt(&mut opt, &mut tour);
            sweeps += 1;
            if gain == 0 {
                break;
            }
            assert!(sweeps < 50, "2-opt failed to converge");
        }
        let len = tour.length(&inst);
        assert_eq!(two_opt(&mut opt, &mut tour), 0);
        assert_eq!(tour.length(&inst), len);
    }

    #[test]
    fn gain_accounting_is_exact() {
        let inst = generate::clustered_dimacs(150, 4);
        let nl = NeighborLists::build(&inst, 10);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut tour = Tour::random(150, &mut rng);
        let before = tour.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let gain = two_opt(&mut opt, &mut tour);
        assert_eq!(before - gain, tour.length(&inst));
    }

    #[test]
    fn two_level_matches_array_quality() {
        use tsp_core::{TourOps, TwoLevelList};
        let inst = generate::uniform(400, 100_000.0, 51);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let start = Tour::random(400, &mut rng);

        // Array engine.
        let mut array_tour = start.clone();
        let mut opt = Optimizer::new(&inst, &nl);
        let array_gain = two_opt(&mut opt, &mut array_tour);

        // The same generic engine on a two-level list from the same
        // start: trajectories are identical, so gains and final orders
        // must match exactly.
        let mut tl = TwoLevelList::from_tour(&start);
        let before = start.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let tl_gain = two_opt(&mut opt, &mut tl);
        let tl_tour = tl.to_tour();
        assert!(tl_tour.is_valid());
        assert_eq!(tl_tour.length(&inst), before - tl_gain);
        assert_eq!(array_gain, tl_gain);
        assert_eq!(TourOps::to_order(&array_tour), TourOps::to_order(&tl));
    }

    #[test]
    fn two_level_gain_accounting_on_families() {
        use tsp_core::TwoLevelList;
        for inst in [
            generate::clustered_dimacs(200, 52),
            generate::drill_plate(200, 53),
        ] {
            let nl = NeighborLists::build(&inst, 8);
            let mut rng = SmallRng::seed_from_u64(2);
            let start = Tour::random(200, &mut rng);
            let before = start.length(&inst);
            let mut tl = TwoLevelList::from_tour(&start);
            let mut opt = Optimizer::new(&inst, &nl);
            let gain = two_opt(&mut opt, &mut tl);
            assert_eq!(tl.to_tour().length(&inst), before - gain, "{}", inst.name());
            assert!(gain > 0);
        }
    }

    #[test]
    fn two_level_large_instance_smoke() {
        use tsp_core::TwoLevelList;
        // 20k cities: array 2-opt from random would be minutes; the
        // two-level engine from a space-filling start finishes fast.
        let inst = generate::uniform(20_000, 1_000_000.0, 54);
        let nl = NeighborLists::build(&inst, 6);
        let start = crate::construct::space_filling(&inst);
        let before = start.length(&inst);
        let mut tl = TwoLevelList::from_tour(&start);
        let mut opt = Optimizer::new(&inst, &nl);
        let gain = two_opt(&mut opt, &mut tl);
        assert!(gain > 0);
        assert_eq!(tl.to_tour().length(&inst), before - gain);
    }
}
