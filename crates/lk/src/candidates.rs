//! Candidate-list construction strategies for the CLK engine.
//!
//! Lin-Kernighan move quality is dominated by which edges the search is
//! allowed to consider (Helsgaun, EJOR 2000): plain k-nearest-neighbor
//! lists are cheap but purely geometric, while α-nearness lists derived
//! from the Held-Karp 1-tree rank edges by how much they would cost a
//! relaxed optimum and capture *structural* edges (cluster bridges,
//! detours) that k-NN misses. [`CandidateKind`] selects between:
//!
//! - **k-NN** — spatial-index lists (`NeighborLists::build`), O(n log n),
//!   the default; the only practical choice at 10⁵⁺ cities.
//! - **α** — `heldkarp::alpha` lists after a subgradient ascent. The
//!   α computation is O(n²), so this is for the paper-scale instances
//!   (10³–10⁴ cities) the ablation sweeps, not the 100k perf point.
//! - **Hybrid** — the first ⌈k/2⌉ α candidates per city (structural
//!   edges), remaining slots filled with the nearest k-NN candidates not
//!   already present. Same O(n²) cost as α.
//!
//! All three are deterministic: the ascent is seed-free, k-NN ties are
//! broken by `(dist, id)` in every builder, and α ties by
//! `(α, shifted cost, id)` — so distributed nodes that agree on the
//! wire-level config build bit-identical lists independently.

use heldkarp::alpha::alpha_lists_from_tree;
use heldkarp::{held_karp_bound, AscentConfig};
use tsp_core::{Instance, NeighborLists};

/// How the engine's candidate lists are built. Part of the wire-level
/// node configuration: every node of a distributed run derives its lists
/// from this knob, so all nodes must agree on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// Plain k-nearest-neighbor lists (spatial index).
    Knn,
    /// Helsgaun α-nearness lists over the Held-Karp 1-tree.
    Alpha,
    /// ⌈k/2⌉ α candidates per city, topped up with nearest neighbors.
    Hybrid,
}

impl CandidateKind {
    /// All kinds, in ablation-sweep order.
    pub const ALL: [CandidateKind; 3] =
        [CandidateKind::Knn, CandidateKind::Alpha, CandidateKind::Hybrid];

    /// Stable lower-case name used in benchmark reports and CLI args.
    pub fn name(&self) -> &'static str {
        match self {
            CandidateKind::Knn => "knn",
            CandidateKind::Alpha => "alpha",
            CandidateKind::Hybrid => "hybrid",
        }
    }

    /// Parse by (case-insensitive) name; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<CandidateKind> {
        match name.to_ascii_lowercase().as_str() {
            "knn" => Some(CandidateKind::Knn),
            "alpha" => Some(CandidateKind::Alpha),
            "hybrid" => Some(CandidateKind::Hybrid),
            _ => None,
        }
    }

    /// Build width-`k` candidate lists of this kind.
    pub fn build(self, inst: &Instance, k: usize) -> NeighborLists {
        build_candidate_lists(inst, self, k)
    }
}

/// Ascent effort for α-based lists, scaled inversely with n so list
/// construction stays a bounded fraction of a run: ~100 iterations for
/// paper-scale instances, tapering to 8 for very large ones. Purely a
/// function of n — every node computes the same schedule.
pub fn default_ascent(n: usize) -> AscentConfig {
    AscentConfig {
        max_iterations: (200_000 / n.max(1)).clamp(8, 100),
        ..Default::default()
    }
}

/// Build candidate lists of the given kind and width `k`.
pub fn build_candidate_lists(inst: &Instance, kind: CandidateKind, k: usize) -> NeighborLists {
    let n = inst.len();
    let k = k.min(n - 1);
    match kind {
        CandidateKind::Knn => NeighborLists::build(inst, k),
        CandidateKind::Alpha => {
            let res = held_karp_bound(inst, &default_ascent(n));
            alpha_lists_from_tree(inst, &res.pi, &res.one_tree, k)
        }
        CandidateKind::Hybrid => hybrid_lists(inst, k),
    }
}

/// Hybrid lists: per city, the first ⌈k/2⌉ α candidates followed by the
/// nearest k-NN candidates not already present. The α prefix keeps the
/// structural edges Helsgaun's ranking surfaces; the k-NN suffix keeps
/// the short local edges the double-bridge kicks rely on.
fn hybrid_lists(inst: &Instance, k: usize) -> NeighborLists {
    let n = inst.len();
    let res = held_karp_bound(inst, &default_ascent(n));
    let alpha = alpha_lists_from_tree(inst, &res.pi, &res.one_tree, k);
    let knn = NeighborLists::build(inst, k);
    let alpha_k = k.div_ceil(2);
    let mut flat = vec![0u32; n * k];
    let mut out: Vec<u32> = Vec::with_capacity(k);
    for c in 0..n {
        out.clear();
        out.extend_from_slice(&alpha.of(c)[..alpha_k]);
        for &g in knn.of(c) {
            if out.len() == k {
                break;
            }
            if !out.contains(&g) {
                out.push(g);
            }
        }
        // The k-NN list holds k distinct cities, so at most alpha_k of
        // them were already present and the top-up always reaches k.
        debug_assert_eq!(out.len(), k);
        flat[c * k..(c + 1) * k].copy_from_slice(&out);
    }
    NeighborLists::from_flat(inst, k, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn names_roundtrip() {
        for kind in CandidateKind::ALL {
            assert_eq!(CandidateKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(CandidateKind::by_name("KNN"), Some(CandidateKind::Knn));
        assert_eq!(CandidateKind::by_name("quadrant"), None);
    }

    #[test]
    fn all_kinds_build_valid_lists() {
        let inst = generate::uniform(60, 10_000.0, 31);
        for kind in CandidateKind::ALL {
            let nl = build_candidate_lists(&inst, kind, 8);
            assert_eq!(nl.k(), 8, "{kind:?}");
            assert_eq!(nl.len(), 60, "{kind:?}");
            for c in 0..60 {
                assert!(!nl.of(c).contains(&(c as u32)), "{kind:?} self-loop at {c}");
                let mut ids = nl.of(c).to_vec();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), 8, "{kind:?} duplicate candidate at {c}");
                for (&o, &d) in nl.of(c).iter().zip(nl.dists_of(c)) {
                    assert_eq!(d, inst.dist(c, o as usize), "{kind:?} cached dist");
                }
            }
        }
    }

    #[test]
    fn hybrid_starts_with_alpha_prefix_and_stays_deterministic() {
        let inst = generate::uniform(80, 10_000.0, 32);
        let res = held_karp_bound(&inst, &default_ascent(80));
        let alpha = alpha_lists_from_tree(&inst, &res.pi, &res.one_tree, 8);
        let a = build_candidate_lists(&inst, CandidateKind::Hybrid, 8);
        let b = build_candidate_lists(&inst, CandidateKind::Hybrid, 8);
        for c in 0..80 {
            assert_eq!(a.of(c), b.of(c), "hybrid not deterministic at {c}");
            assert_eq!(&a.of(c)[..4], &alpha.of(c)[..4], "α prefix lost at {c}");
        }
    }

    #[test]
    fn alpha_and_knn_kinds_match_their_direct_builders() {
        let inst = generate::uniform(50, 10_000.0, 33);
        let knn = build_candidate_lists(&inst, CandidateKind::Knn, 6);
        let direct = tsp_core::NeighborLists::build(&inst, 6);
        for c in 0..50 {
            assert_eq!(knn.of(c), direct.of(c));
        }
        let alpha = build_candidate_lists(&inst, CandidateKind::Alpha, 6);
        let res = held_karp_bound(&inst, &default_ascent(50));
        let direct = alpha_lists_from_tree(&inst, &res.pi, &res.one_tree, 6);
        for c in 0..50 {
            assert_eq!(alpha.of(c), direct.of(c));
        }
    }

    #[test]
    fn k_clamped_on_tiny_instances() {
        let inst = generate::uniform(5, 1_000.0, 34);
        for kind in CandidateKind::ALL {
            let nl = build_candidate_lists(&inst, kind, 10);
            assert_eq!(nl.k(), 4, "{kind:?}");
        }
    }
}
