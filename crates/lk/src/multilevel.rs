//! Multilevel Chained Lin-Kernighan (Walshaw 2000/2002).
//!
//! Stand-in for Walshaw's `MLC_N LK` in the paper's Table 2: the
//! instance is recursively *coarsened* by matching each city with its
//! nearest unmatched neighbor and merging the pair into their midpoint;
//! the coarsest instance is solved with CLK; then each level is
//! *uncoarsened* (merged nodes expand back into their two children,
//! inserted adjacently with the cheaper orientation) and refined with a
//! kick-limited CLK. Walshaw's headline: slightly better tours than
//! plain CLK, several times faster to a given quality.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsp_core::kdtree::KdTree;
use tsp_core::{Instance, NeighborLists, Point, Tour};

use crate::budget::Budget;
use crate::chained::{ChainedLk, ChainedLkConfig};

/// Configuration of the multilevel scheme.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Stop coarsening at or below this many cities.
    pub coarsest_size: usize,
    /// Kicks per city during each refinement (Walshaw's `N/10` rule:
    /// `kicks = cities * kicks_per_city_permille / 1000`).
    pub kicks_per_city_permille: u32,
    /// Underlying CLK configuration.
    pub clk: ChainedLkConfig,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest_size: 32,
            kicks_per_city_permille: 100, // N/10
            clk: ChainedLkConfig::default(),
        }
    }
}

/// One coarsening level: the coarse instance plus, per coarse node, its
/// one or two constituent fine nodes.
struct Level {
    inst: Instance,
    groups: Vec<(u32, Option<u32>)>,
}

/// Match nearest unmatched pairs and merge to midpoints.
fn coarsen(inst: &Instance, rng: &mut SmallRng) -> Level {
    let n = inst.len();
    let tree = KdTree::build(inst);
    let mut matched = vec![false; n];
    let mut groups: Vec<(u32, Option<u32>)> = Vec::with_capacity(n / 2 + 1);
    // Random sweep order avoids systematic matching bias.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &v in &order {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        matched[v] = true;
        let mate = tree.nearest_filtered(inst.point(v), |c| matched[c] || c == v);
        match mate {
            Some(m) => {
                matched[m] = true;
                groups.push((v as u32, Some(m as u32)));
            }
            None => groups.push((v as u32, None)),
        }
    }
    let pts: Vec<Point> = groups
        .iter()
        .map(|&(a, b)| {
            let pa = inst.point(a as usize);
            match b {
                Some(b) => {
                    let pb = inst.point(b as usize);
                    Point::new((pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0)
                }
                None => pa,
            }
        })
        .collect();
    let coarse = Instance::new(
        format!("{}-c{}", inst.name(), groups.len()),
        pts,
        inst.metric().clone(),
    );
    Level {
        inst: coarse,
        groups,
    }
}

/// Expand a coarse tour one level: merged nodes become their two
/// children in the orientation that connects more cheaply to the
/// already-expanded prefix.
fn uncoarsen_tour(fine: &Instance, level: &Level, coarse_tour: &Tour) -> Tour {
    let mut order: Vec<u32> = Vec::with_capacity(fine.len());
    for p in 0..coarse_tour.len() {
        let cnode = coarse_tour.city_at(p);
        let (a, b) = level.groups[cnode];
        match b {
            None => order.push(a),
            Some(b) => {
                if let Some(&prev) = order.last() {
                    let da = fine.dist(prev as usize, a as usize);
                    let db = fine.dist(prev as usize, b as usize);
                    if da <= db {
                        order.push(a);
                        order.push(b);
                    } else {
                        order.push(b);
                        order.push(a);
                    }
                } else {
                    order.push(a);
                    order.push(b);
                }
            }
        }
    }
    Tour::from_order(order)
}

/// Result of a multilevel run.
#[derive(Debug, Clone)]
pub struct MultilevelResult {
    /// Final refined tour on the original instance.
    pub tour: Tour,
    /// Its length.
    pub length: i64,
    /// Number of levels (including the original).
    pub levels: usize,
    /// Total wall time.
    pub seconds: f64,
}

/// Run multilevel CLK on `inst`.
pub fn multilevel_clk(inst: &Instance, cfg: &MultilevelConfig, seed: u64) -> MultilevelResult {
    let start = std::time::Instant::now();
    let mut rng = SmallRng::seed_from_u64(seed);

    // Build the level hierarchy, finest first.
    let mut levels: Vec<Level> = Vec::new();
    loop {
        let cur: &Instance = levels.last().map(|l| &l.inst).unwrap_or(inst);
        if cur.len() <= cfg.coarsest_size.max(8) {
            break;
        }
        let lvl = coarsen(cur, &mut rng);
        if lvl.inst.len() >= cur.len() {
            break; // no progress (degenerate data)
        }
        levels.push(lvl);
    }

    // Solve the coarsest instance outright.
    let coarsest: &Instance = levels.last().map(|l| &l.inst).unwrap_or(inst);
    let nl = NeighborLists::build(coarsest, cfg.clk.neighbor_k.min(coarsest.len() - 1));
    let mut clk_cfg = cfg.clk.clone();
    clk_cfg.seed = rng.gen();
    let mut engine = ChainedLk::new(coarsest, &nl, clk_cfg);
    let kicks = (coarsest.len() as u64 * cfg.kicks_per_city_permille as u64) / 1000 + 10;
    let mut tour = engine.run(&Budget::kicks(kicks)).tour;

    // Uncoarsen + refine level by level.
    for i in (0..levels.len()).rev() {
        let fine: &Instance = if i == 0 { inst } else { &levels[i - 1].inst };
        tour = uncoarsen_tour(fine, &levels[i], &tour);
        let nl = NeighborLists::build(fine, cfg.clk.neighbor_k.min(fine.len() - 1));
        let mut clk_cfg = cfg.clk.clone();
        clk_cfg.seed = rng.gen();
        let mut engine = ChainedLk::new(fine, &nl, clk_cfg);
        engine.optimize(&mut tour);
        let kicks = (fine.len() as u64 * cfg.kicks_per_city_permille as u64) / 1000;
        let mut best = tour.length(fine);
        for _ in 0..kicks {
            best = engine.chain_step(&mut tour, best);
        }
    }

    let length = tour.length(inst);
    MultilevelResult {
        tour,
        length,
        levels: levels.len() + 1,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn coarsening_halves_roughly() {
        let inst = generate::uniform(200, 10_000.0, 91);
        let mut rng = SmallRng::seed_from_u64(1);
        let lvl = coarsen(&inst, &mut rng);
        assert!(lvl.inst.len() <= 101 && lvl.inst.len() >= 100);
        // Every fine node appears in exactly one group.
        let mut seen = [false; 200];
        for &(a, b) in &lvl.groups {
            assert!(!seen[a as usize]);
            seen[a as usize] = true;
            if let Some(b) = b {
                assert!(!seen[b as usize]);
                seen[b as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uncoarsening_produces_valid_tours() {
        let inst = generate::uniform(120, 10_000.0, 92);
        let mut rng = SmallRng::seed_from_u64(2);
        let lvl = coarsen(&inst, &mut rng);
        let coarse_tour = Tour::identity(lvl.inst.len());
        let fine_tour = uncoarsen_tour(&inst, &lvl, &coarse_tour);
        assert!(fine_tour.is_valid());
        assert_eq!(fine_tour.len(), 120);
    }

    #[test]
    fn end_to_end_beats_construction() {
        let inst = generate::uniform(300, 10_000.0, 93);
        let res = multilevel_clk(&inst, &MultilevelConfig::default(), 7);
        assert!(res.tour.is_valid());
        assert_eq!(res.tour.length(&inst), res.length);
        assert!(res.levels >= 3);
        let qb = crate::construct::quick_boruvka(&inst).length(&inst);
        assert!(
            res.length < qb,
            "multilevel {} not better than QB {}",
            res.length,
            qb
        );
    }

    #[test]
    fn solves_small_grid_well() {
        let inst = generate::grid_known_optimum(8, 8, 100.0);
        let res = multilevel_clk(&inst, &MultilevelConfig::default(), 3);
        let opt = inst.known_optimum().unwrap();
        assert!(
            (res.length as f64) <= 1.05 * opt as f64,
            "multilevel got {} vs optimum {}",
            res.length,
            opt
        );
    }
}
