//! Shared local-search context: don't-look bits, the active-city queue
//! and the orientation-independent move primitives every search builds
//! on. The primitives are generic over [`TourOps`], so the same search
//! code drives both the array [`Tour`] and the two-level list.

use tsp_core::{Instance, NeighborLists, TourOps};

/// Apply the unique non-identity 2-opt reconnection that removes the
/// two undirected tour edges `e1` and `e2`.
///
/// Removing two edges from a cycle leaves two arcs; there is exactly one
/// way to reconnect them into a different cycle (the "crossing" pair),
/// so callers only name the removed edges. This helper derives the
/// orientation from the current tour, which makes it immune to the
/// orientation flips that shorter-side segment reversal can introduce
/// in either representation.
///
/// # Panics
///
/// Debug-panics if either pair is not a current tour edge, or the edges
/// share an endpoint.
pub fn two_opt_by_edges<T: TourOps>(tour: &mut T, e1: (usize, usize), e2: (usize, usize)) {
    let (a, b) = orient(tour, e1);
    let (c, d) = orient(tour, e2);
    debug_assert!(a != c && a != d && b != c && b != d, "edges must be disjoint");
    // With b = next(a) and d = next(c), flipping the path b…c removes
    // (a,b), (c,d) and adds (a,c), (b,d).
    let _ = (a, d);
    tour.flip(b, c);
}

/// Orient an undirected tour edge so that `.1 == next(.0)`.
#[inline]
fn orient<T: TourOps>(tour: &T, (x, y): (usize, usize)) -> (usize, usize) {
    if tour.next(x) == y {
        (x, y)
    } else {
        debug_assert_eq!(tour.next(y), x, "({x},{y}) is not a tour edge");
        (y, x)
    }
}

/// Relocate the segment `s … e` (which currently sits between `p` and
/// `q`) so that it follows `c` instead (before `d = next(c)`), as one
/// to three 2-opt flips — the representation-independent form of the
/// Or-opt move.
///
/// `reversed` inserts the segment as `c → e … s → d`; forward as
/// `c → s … e → d`. Callers guarantee: `next(p) == s`, `next(e) == q`,
/// `next(c) == d`, `c` outside the segment, `c != p`, `d != s`,
/// `p != q` and `p != e` (segment plus destination don't cover the
/// whole tour).
#[allow(clippy::too_many_arguments)] // the args are the six edge endpoints
pub fn or_opt_move_by_edges<T: TourOps>(
    tour: &mut T,
    s: usize,
    e: usize,
    p: usize,
    q: usize,
    c: usize,
    d: usize,
    reversed: bool,
) {
    debug_assert_eq!(tour.next(p), s);
    debug_assert_eq!(tour.next(e), q);
    debug_assert_eq!(tour.next(c), d);
    debug_assert!(c != p && d != s && p != q && p != e);
    debug_assert!(!(c == q && d == p), "segment + destination cover the tour");
    // Build the reversed insertion c → e…s → d first; it takes a single
    // 2-opt when the destination edge touches the segment boundary, two
    // otherwise.
    if c == q {
        two_opt_by_edges(tour, (p, s), (c, d));
    } else if d == p {
        two_opt_by_edges(tour, (e, q), (c, p));
    } else {
        two_opt_by_edges(tour, (p, s), (c, d));
        two_opt_by_edges(tour, (p, c), (q, e));
    }
    // One more 2-opt un-reverses the segment in place.
    if !reversed && s != e {
        two_opt_by_edges(tour, (c, e), (s, d));
    }
    debug_assert!(tour.has_edge(p, q));
    debug_assert!(if reversed || s == e {
        tour.has_edge(c, e) && tour.has_edge(s, d)
    } else {
        tour.has_edge(c, s) && tour.has_edge(e, d)
    });
}

/// Local-search context: the instance, candidate lists, don't-look bits
/// and the active-city queue. All buffers are allocated once and reused
/// across passes (nothing allocates on the hot path).
pub struct Optimizer<'a> {
    inst: &'a Instance,
    neighbors: &'a NeighborLists,
    /// Don't-look bits: `true` = city is quiescent.
    dont_look: Vec<bool>,
    /// FIFO of active cities (those whose neighborhood may contain an
    /// improving move).
    queue: std::collections::VecDeque<u32>,
    in_queue: Vec<bool>,
}

impl<'a> Optimizer<'a> {
    /// Create a context; all cities start active.
    pub fn new(inst: &'a Instance, neighbors: &'a NeighborLists) -> Self {
        let n = inst.len();
        Optimizer {
            inst,
            neighbors,
            dont_look: vec![false; n],
            queue: (0..n as u32).collect(),
            in_queue: vec![true; n],
        }
    }

    /// The instance being optimized.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// The candidate lists steering the search.
    #[inline]
    pub fn neighbors(&self) -> &'a NeighborLists {
        self.neighbors
    }

    /// Distance shorthand.
    #[inline(always)]
    pub fn dist(&self, i: usize, j: usize) -> i64 {
        self.inst.dist(i, j)
    }

    /// Re-activate every city (used after a restart or a fresh tour).
    pub fn activate_all(&mut self) {
        self.queue.clear();
        for c in 0..self.inst.len() as u32 {
            self.queue.push_back(c);
            self.in_queue[c as usize] = true;
            self.dont_look[c as usize] = false;
        }
    }

    /// Deactivate every city (used before seeding a targeted queue,
    /// e.g. after a kick only the kicked cities are active).
    pub fn deactivate_all(&mut self) {
        self.queue.clear();
        self.in_queue.iter_mut().for_each(|b| *b = false);
        self.dont_look.iter_mut().for_each(|b| *b = true);
    }

    /// Mark a city active (idempotent).
    #[inline]
    pub fn activate(&mut self, c: usize) {
        self.dont_look[c] = false;
        if !self.in_queue[c] {
            self.in_queue[c] = true;
            self.queue.push_back(c as u32);
        }
    }

    /// Pop the next active city, if any.
    #[inline]
    pub fn pop_active(&mut self) -> Option<usize> {
        while let Some(c) = self.queue.pop_front() {
            let c = c as usize;
            self.in_queue[c] = false;
            if !self.dont_look[c] {
                return Some(c);
            }
        }
        None
    }

    /// Set the don't-look bit of `c` (the city found no improving move).
    #[inline]
    pub fn set_dont_look(&mut self, c: usize) {
        self.dont_look[c] = true;
    }

    /// Number of currently queued cities (diagnostics).
    pub fn active_count(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{generate, Tour};

    #[test]
    fn two_opt_by_edges_any_orientation() {
        let inst = generate::uniform(10, 1000.0, 1);
        let mut tour = Tour::identity(10);
        let before = tour.length(&inst);
        // Remove (2,3) and (7,8), passing endpoints in scrambled order.
        two_opt_by_edges(&mut tour, (3, 2), (7, 8));
        assert!(tour.is_valid());
        assert!(!tour.has_edge(2, 3));
        assert!(!tour.has_edge(7, 8));
        // The crossing pair appears.
        assert!(tour.has_edge(2, 7) || tour.has_edge(2, 8));
        // Re-applying on the added edges restores the original tour.
        let (e1, e2) = if tour.has_edge(2, 7) {
            ((2, 7), (3, 8))
        } else {
            ((2, 8), (3, 7))
        };
        two_opt_by_edges(&mut tour, e1, e2);
        assert_eq!(tour.length(&inst), before);
        assert!(tour.has_edge(2, 3));
        assert!(tour.has_edge(7, 8));
    }

    #[test]
    fn queue_discipline() {
        let inst = generate::uniform(5, 100.0, 2);
        let nl = NeighborLists::build(&inst, 3);
        let mut opt = Optimizer::new(&inst, &nl);
        assert_eq!(opt.active_count(), 5);
        let first = opt.pop_active().unwrap();
        assert_eq!(first, 0);
        opt.set_dont_look(1);
        assert_eq!(opt.pop_active(), Some(2)); // 1 is skipped
        opt.activate(1);
        opt.activate(1); // idempotent
        // Drain: 3, 4, then 1.
        assert_eq!(opt.pop_active(), Some(3));
        assert_eq!(opt.pop_active(), Some(4));
        assert_eq!(opt.pop_active(), Some(1));
        assert_eq!(opt.pop_active(), None);
    }

    #[test]
    fn deactivate_then_seed() {
        let inst = generate::uniform(6, 100.0, 3);
        let nl = NeighborLists::build(&inst, 3);
        let mut opt = Optimizer::new(&inst, &nl);
        opt.deactivate_all();
        assert_eq!(opt.pop_active(), None);
        opt.activate(4);
        opt.activate(2);
        assert_eq!(opt.pop_active(), Some(4));
        assert_eq!(opt.pop_active(), Some(2));
        assert_eq!(opt.pop_active(), None);
    }
}
