//! The four double-bridge kicking strategies of Applegate, Cook & Rohe,
//! as described in the paper (§2.1).
//!
//! A kick selects four "relevant" cities and applies the double-bridge
//! 4-exchange at their positions:
//!
//! - **Random** — all four uniformly at random. Degenerates the tour
//!   but escapes deep optima (best on small instances, Table 3).
//! - **Geometric** — first city `v` random; the other three from the
//!   `k` nearest neighbors of `v` (local kick for small `k`).
//! - **Close** — sample a subset of `⌈β·n⌉` cities, take the six
//!   nearest to `v` from the subset, pick three of them.
//! - **Random-walk** — three independent random walks of fixed length
//!   over the neighbor graph, started at `v`; the walk end points are
//!   the other cities (the paper's best all-rounder and `linkern`'s
//!   default).

use rand::Rng;
use tsp_core::{NeighborLists, Tour};

/// Which kicking strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KickStrategy {
    /// Uniform random selection of all four cities.
    Random,
    /// Neighborhood of a random city; the field is the candidate pool
    /// size `k` (cities drawn from the `k` nearest of `v`).
    Geometric(usize),
    /// Subset sampling; the field is `β` as per-mille (β·n cities are
    /// sampled, default 100‰ = 0.1).
    Close(u32),
    /// Random walks over the neighbor graph; the field is the walk
    /// length (the paper/linkern use short walks, default 50 steps).
    RandomWalk(usize),
}

impl KickStrategy {
    /// The paper's four strategies with `linkern`-like defaults.
    pub const ALL: [KickStrategy; 4] = [
        KickStrategy::Random,
        KickStrategy::Geometric(16),
        KickStrategy::Close(100),
        KickStrategy::RandomWalk(50),
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            KickStrategy::Random => "Random",
            KickStrategy::Geometric(_) => "Geometric",
            KickStrategy::Close(_) => "Close",
            KickStrategy::RandomWalk(_) => "Random-Walk",
        }
    }

    /// Parse a strategy by (case-insensitive) name with default
    /// parameters; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<KickStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "random" => Some(KickStrategy::Random),
            "geometric" => Some(KickStrategy::Geometric(16)),
            "close" => Some(KickStrategy::Close(100)),
            "random-walk" | "randomwalk" | "walk" => Some(KickStrategy::RandomWalk(50)),
            _ => None,
        }
    }
}

/// Select the four relevant cities for a kick. Returns tour *positions*
/// suitable for [`Tour::double_bridge_at`]; `None` if a valid distinct
/// quadruple could not be found (tiny instances).
pub fn select_kick_cities<R: Rng>(
    strategy: KickStrategy,
    tour: &Tour,
    neighbors: &NeighborLists,
    rng: &mut R,
) -> Option<[usize; 4]> {
    let n = tour.len();
    if n < 8 {
        return None;
    }
    let mut positions = [0usize; 4];
    for _attempt in 0..32 {
        let cities = match strategy {
            KickStrategy::Random => {
                let mut cs = [0usize; 4];
                for c in cs.iter_mut() {
                    *c = rng.gen_range(0..n);
                }
                cs
            }
            KickStrategy::Geometric(k) => {
                let v = rng.gen_range(0..n);
                let pool = neighbors.of(v);
                let k = k.min(pool.len());
                if k < 3 {
                    return None;
                }
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    *c = pool[rng.gen_range(0..k)] as usize;
                }
                cs
            }
            KickStrategy::Close(beta_permille) => {
                let v = rng.gen_range(0..n);
                let subset_size = ((n as u64 * beta_permille as u64) / 1000).max(6) as usize;
                // Sample the subset, keep the six closest to v.
                let vp = v;
                let mut six: Vec<(i64, usize)> = Vec::with_capacity(subset_size);
                for _ in 0..subset_size {
                    let c = rng.gen_range(0..n);
                    if c == vp {
                        continue;
                    }
                    six.push((dist_of(neighbors, tour, vp, c), c));
                }
                six.sort_unstable();
                six.truncate(6);
                six.dedup_by_key(|e| e.1);
                if six.len() < 3 {
                    continue;
                }
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    *c = six[rng.gen_range(0..six.len())].1;
                }
                cs
            }
            KickStrategy::RandomWalk(len) => {
                let v = rng.gen_range(0..n);
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    let mut cur = v;
                    for _ in 0..len {
                        let nb = neighbors.of(cur);
                        cur = nb[rng.gen_range(0..nb.len())] as usize;
                    }
                    *c = cur;
                }
                cs
            }
        };
        // Distinct positions required for a proper double bridge.
        for (i, &c) in cities.iter().enumerate() {
            positions[i] = tour.position(c);
        }
        positions.sort_unstable();
        if positions[0] < positions[1] && positions[1] < positions[2] && positions[2] < positions[3]
        {
            return Some(positions);
        }
    }
    None
}

/// Placeholder distance used by the Close strategy when ranking the
/// sampled subset: we rank by *tour distance* proxy — the index gap in
/// the candidate list if present, else a large constant plus random
/// noise is avoided by using the neighbor-list rank.
///
/// Rationale: the kick only needs a "closeness" ordering; the candidate
/// lists already encode exact geometric ranks for the `k` nearest and
/// the subset sampling makes finer ranks irrelevant (the paper's β
/// controls locality the same way).
fn dist_of(neighbors: &NeighborLists, _tour: &Tour, v: usize, c: usize) -> i64 {
    match neighbors.of(v).iter().position(|&x| x as usize == c) {
        Some(rank) => rank as i64,
        None => i64::from(u32::MAX),
    }
}

/// Apply one kick of the given strategy. Returns the four cut positions
/// used, or `None` if the tour was too small.
pub fn kick<R: Rng>(
    strategy: KickStrategy,
    tour: &mut Tour,
    neighbors: &NeighborLists,
    rng: &mut R,
) -> Option<[usize; 4]> {
    let cuts = select_kick_cities(strategy, tour, neighbors, rng)?;
    tour.double_bridge_at(cuts);
    Some(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists};

    fn setup(n: usize) -> (tsp_core::Instance, NeighborLists, Tour) {
        let inst = generate::uniform(n, 10_000.0, 50);
        let nl = NeighborLists::build(&inst, 10);
        let tour = Tour::identity(n);
        (inst, nl, tour)
    }

    #[test]
    fn all_strategies_produce_valid_kicks() {
        let (inst, nl, mut tour) = setup(100);
        let mut rng = SmallRng::seed_from_u64(1);
        for strategy in KickStrategy::ALL {
            for _ in 0..20 {
                let cuts = kick(strategy, &mut tour, &nl, &mut rng);
                assert!(cuts.is_some(), "{strategy:?}");
                assert!(tour.is_valid(), "{strategy:?}");
            }
        }
        let _ = inst;
    }

    #[test]
    fn kick_changes_exactly_up_to_4_edges() {
        let (_, nl, mut tour) = setup(64);
        let mut rng = SmallRng::seed_from_u64(2);
        for strategy in KickStrategy::ALL {
            let before: std::collections::HashSet<(usize, usize)> =
                tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            kick(strategy, &mut tour, &nl, &mut rng).unwrap();
            let after: std::collections::HashSet<(usize, usize)> =
                tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            assert!(before.difference(&after).count() <= 4, "{strategy:?}");
        }
    }

    #[test]
    fn geometric_kick_is_local() {
        // With a small pool the four cities are geometric neighbors, so
        // the cut positions span a bounded range of the candidate graph.
        let inst = generate::uniform(200, 10_000.0, 51);
        let nl = NeighborLists::build(&inst, 12);
        let tour = Tour::identity(200);
        let mut rng = SmallRng::seed_from_u64(3);
        let cuts = select_kick_cities(KickStrategy::Geometric(8), &tour, &nl, &mut rng).unwrap();
        // The four cut cities must all be within the kick city's
        // 8-neighborhood (by construction); verify via the lists.
        let cities: Vec<usize> = cuts.iter().map(|&p| tour.city_at(p)).collect();
        let any_is_center = cities.iter().any(|&c| {
            cities
                .iter()
                .filter(|&&o| o != c)
                .all(|&o| nl.of(c)[..8].contains(&(o as u32)))
        });
        assert!(any_is_center, "no city is the center of the others");
    }

    #[test]
    fn tiny_tour_returns_none() {
        let (_, nl, tour) = setup(100);
        let small = Tour::identity(6);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(select_kick_cities(KickStrategy::Random, &small, &nl, &mut rng).is_none());
        let _ = tour;
    }

    #[test]
    fn names_and_parsing() {
        assert_eq!(KickStrategy::Random.name(), "Random");
        assert_eq!(KickStrategy::by_name("geometric"), Some(KickStrategy::Geometric(16)));
        assert_eq!(KickStrategy::by_name("Random-Walk"), Some(KickStrategy::RandomWalk(50)));
        assert_eq!(KickStrategy::by_name("nope"), None);
    }

    #[test]
    fn random_walk_stays_on_neighbor_graph() {
        let (_, nl, tour) = setup(100);
        let mut rng = SmallRng::seed_from_u64(5);
        // Just exercise it a lot; validity asserted by distinct cuts.
        for _ in 0..50 {
            let cuts =
                select_kick_cities(KickStrategy::RandomWalk(10), &tour, &nl, &mut rng).unwrap();
            assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
