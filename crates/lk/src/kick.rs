//! The four double-bridge kicking strategies of Applegate, Cook & Rohe,
//! as described in the paper (§2.1).
//!
//! A kick selects four "relevant" cities and applies the double-bridge
//! 4-exchange between them:
//!
//! - **Random** — all four uniformly at random. Degenerates the tour
//!   but escapes deep optima (best on small instances, Table 3).
//! - **Geometric** — first city `v` random; the other three from the
//!   `k` nearest neighbors of `v` (local kick for small `k`).
//! - **Close** — sample a subset of `⌈β·n⌉` cities, take the six
//!   nearest to `v` from the subset, pick three of them.
//! - **Random-walk** — three independent random walks of fixed length
//!   over the neighbor graph, started at `v`; the walk end points are
//!   the other cities (the paper's best all-rounder and `linkern`'s
//!   default).
//!
//! Kicks are expressed entirely through [`TourOps`] (`between` ordering
//! plus 2-opt flips), so they run on the array tour and the two-level
//! list alike — no tour positions involved.

use rand::Rng;
use tsp_core::{Instance, NeighborLists, TourOps};

use crate::search::two_opt_by_edges;

/// Which kicking strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KickStrategy {
    /// Uniform random selection of all four cities.
    Random,
    /// Neighborhood of a random city; the field is the candidate pool
    /// size `k` (cities drawn from the `k` nearest of `v`).
    Geometric(usize),
    /// Subset sampling; the field is `β` as per-mille (β·n cities are
    /// sampled, default 100‰ = 0.1).
    Close(u32),
    /// Random walks over the neighbor graph; the field is the walk
    /// length (the paper/linkern use short walks, default 50 steps).
    RandomWalk(usize),
}

impl KickStrategy {
    /// The paper's four strategies with `linkern`-like defaults.
    pub const ALL: [KickStrategy; 4] = [
        KickStrategy::Random,
        KickStrategy::Geometric(16),
        KickStrategy::Close(100),
        KickStrategy::RandomWalk(50),
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            KickStrategy::Random => "Random",
            KickStrategy::Geometric(_) => "Geometric",
            KickStrategy::Close(_) => "Close",
            KickStrategy::RandomWalk(_) => "Random-Walk",
        }
    }

    /// Parse a strategy by (case-insensitive) name with default
    /// parameters; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<KickStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "random" => Some(KickStrategy::Random),
            "geometric" => Some(KickStrategy::Geometric(16)),
            "close" => Some(KickStrategy::Close(100)),
            "random-walk" | "randomwalk" | "walk" => Some(KickStrategy::RandomWalk(50)),
            _ => None,
        }
    }
}

/// One applied kick: the four cut cities (in tour order) and the exact
/// tour-length change of the 4-exchange.
#[derive(Debug, Clone, Copy)]
pub struct Kick {
    /// The cut cities, ordered along the tour.
    pub cities: [usize; 4],
    /// Length delta applied by the kick (usually positive — kicks make
    /// the tour worse before re-optimization).
    pub delta: i64,
}

/// Select the four relevant cities for a kick, in tour order; `None` if
/// a distinct quadruple could not be found (tiny instances).
pub fn select_kick_cities<T: TourOps, R: Rng>(
    strategy: KickStrategy,
    inst: &Instance,
    tour: &T,
    neighbors: &NeighborLists,
    rng: &mut R,
) -> Option<[usize; 4]> {
    let n = tour.len();
    if n < 8 {
        return None;
    }
    for _attempt in 0..32 {
        let cities = match strategy {
            KickStrategy::Random => {
                let mut cs = [0usize; 4];
                for c in cs.iter_mut() {
                    *c = rng.gen_range(0..n);
                }
                cs
            }
            KickStrategy::Geometric(k) => {
                let v = rng.gen_range(0..n);
                let pool = neighbors.of(v);
                let k = k.min(pool.len());
                if k < 3 {
                    return None;
                }
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    *c = pool[rng.gen_range(0..k)] as usize;
                }
                cs
            }
            KickStrategy::Close(beta_permille) => {
                let v = rng.gen_range(0..n);
                let subset_size = ((n as u64 * beta_permille as u64) / 1000).max(6) as usize;
                let six = close_pool(inst, v, n, subset_size, rng);
                if six.len() < 3 {
                    continue;
                }
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    *c = six[rng.gen_range(0..six.len())].1;
                }
                cs
            }
            KickStrategy::RandomWalk(len) => {
                let v = rng.gen_range(0..n);
                let mut cs = [v, 0, 0, 0];
                for c in cs.iter_mut().skip(1) {
                    let mut cur = v;
                    for _ in 0..len {
                        let nb = neighbors.of(cur);
                        cur = nb[rng.gen_range(0..nb.len())] as usize;
                    }
                    *c = cur;
                }
                cs
            }
        };
        // Distinct cities required for a proper double bridge.
        let distinct = cities
            .iter()
            .all(|&c| cities.iter().filter(|&&o| o == c).count() == 1);
        if distinct {
            return Some(tour_order_cities(tour, cities));
        }
    }
    None
}

/// The Close strategy's candidate pool: sample `subset_size` random
/// cities, keep the (up to) six *distinct* ones nearest to `v` by the
/// real metric distance. Duplicate draws are deduplicated before the
/// pool is truncated to six — truncating first let repeated samples of
/// the nearest cities crowd out genuinely distinct ones and shrink the
/// pool below six.
fn close_pool<R: Rng>(
    inst: &Instance,
    v: usize,
    n: usize,
    subset_size: usize,
    rng: &mut R,
) -> Vec<(i64, usize)> {
    let mut six: Vec<(i64, usize)> = Vec::with_capacity(subset_size);
    for _ in 0..subset_size {
        let c = rng.gen_range(0..n);
        if c == v {
            continue;
        }
        six.push((inst.dist(v, c), c));
    }
    // Sorted by (dist, city), duplicate samples of a city are adjacent.
    six.sort_unstable();
    six.dedup_by_key(|e| e.1);
    six.truncate(6);
    six
}

/// Order four distinct cities along the tour, starting from the first.
fn tour_order_cities<T: TourOps>(tour: &T, mut cs: [usize; 4]) -> [usize; 4] {
    // Insertion sort of cs[1..] by "comes earlier when walking forward
    // from cs[0]" — `between(a, x, y)` is exactly that comparator.
    let anchor = cs[0];
    for i in 2..4 {
        let mut j = i;
        while j > 1 && tour.between(anchor, cs[j], cs[j - 1]) {
            cs.swap(j, j - 1);
            j -= 1;
        }
    }
    cs
}

/// Apply the double-bridge 4-exchange that cuts the tour after each of
/// the four cities and reconnects the quarters `A B C D` as `A C B D`,
/// expressed as up to four 2-opt flips. Returns the exact length delta,
/// or `None` — leaving the tour untouched — when every quarter between
/// consecutive cuts is empty (only possible for n = 4) and no 4-exchange
/// exists. A `Some` result always means at least one edge changed.
///
/// `cities` must be distinct and ordered along the tour (as returned by
/// [`select_kick_cities`]). The reconnection is invariant under
/// rotation of the quadruple; internally the anchor rotates until the
/// quarter after the last cut is non-empty.
pub fn double_bridge_by_cities<T: TourOps>(
    inst: &Instance,
    tour: &mut T,
    cities: [usize; 4],
) -> Option<i64> {
    let mut x = cities;
    // The decomposition below needs next(x3) != x0 (a non-empty quarter
    // after the last cut). At least one of the four quarters is
    // non-empty for n >= 8, so some rotation works.
    let mut tries = 0;
    while tour.next(x[3]) == x[0] {
        x.rotate_left(1);
        tries += 1;
        if tries == 4 {
            return None;
        }
    }
    let nx = [
        tour.next(x[0]),
        tour.next(x[1]),
        tour.next(x[2]),
        tour.next(x[3]),
    ];
    // Removed: (x_i, next(x_i)); added: (x0,n2), (x3,n1), (x2,n0),
    // (x1,n3). When a quarter is empty the corresponding pair appears
    // on both sides and cancels numerically.
    let delta = inst.dist(x[0], nx[2]) + inst.dist(x[3], nx[1]) + inst.dist(x[2], nx[0])
        + inst.dist(x[1], nx[3])
        - inst.dist(x[0], nx[0])
        - inst.dist(x[1], nx[1])
        - inst.dist(x[2], nx[2])
        - inst.dist(x[3], nx[3]);
    // Step 1 reverses everything between the outer cuts; steps 2-4
    // restore each quarter's direction, skipping empty quarters.
    two_opt_by_edges(tour, (x[0], nx[0]), (x[3], nx[3]));
    if nx[2] != x[3] {
        two_opt_by_edges(tour, (x[0], x[3]), (nx[2], x[2]));
    }
    if nx[1] != x[2] {
        two_opt_by_edges(tour, (x[3], x[2]), (nx[1], x[1]));
    }
    if nx[0] != x[1] {
        two_opt_by_edges(tour, (x[2], x[1]), (nx[0], nx[3]));
    }
    debug_assert!(
        tour.has_edge(x[0], nx[2])
            && tour.has_edge(x[3], nx[1])
            && tour.has_edge(x[2], nx[0])
            && tour.has_edge(x[1], nx[3])
    );
    Some(delta)
}

/// Apply one kick of the given strategy. Returns the cut cities and the
/// exact length delta, or `None` if the tour was too small or the
/// 4-exchange degenerated to a no-op. A reported kick always changed at
/// least one tour edge, so acceptance counters and kick-strength
/// histograms never record phantom perturbations.
pub fn kick<T: TourOps, R: Rng>(
    strategy: KickStrategy,
    inst: &Instance,
    tour: &mut T,
    neighbors: &NeighborLists,
    rng: &mut R,
) -> Option<Kick> {
    let cities = select_kick_cities(strategy, inst, tour, neighbors, rng)?;
    let delta = double_bridge_by_cities(inst, tour, cities)?;
    Some(Kick { cities, delta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists, Tour, TwoLevelList};

    fn setup(n: usize) -> (tsp_core::Instance, NeighborLists, Tour) {
        let inst = generate::uniform(n, 10_000.0, 50);
        let nl = NeighborLists::build(&inst, 10);
        let tour = Tour::identity(n);
        (inst, nl, tour)
    }

    #[test]
    fn all_strategies_produce_valid_kicks() {
        let (inst, nl, mut tour) = setup(100);
        let mut rng = SmallRng::seed_from_u64(1);
        for strategy in KickStrategy::ALL {
            for _ in 0..20 {
                let before = tour.length(&inst);
                let k = kick(strategy, &inst, &mut tour, &nl, &mut rng);
                let k = k.expect("kick on 100 cities");
                assert!(tour.is_valid(), "{strategy:?}");
                assert_eq!(tour.length(&inst), before + k.delta, "{strategy:?}");
            }
        }
    }

    #[test]
    fn kick_changes_exactly_up_to_4_edges() {
        let (inst, nl, mut tour) = setup(64);
        let mut rng = SmallRng::seed_from_u64(2);
        for strategy in KickStrategy::ALL {
            let before: std::collections::HashSet<(usize, usize)> =
                tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            kick(strategy, &inst, &mut tour, &nl, &mut rng).unwrap();
            let after: std::collections::HashSet<(usize, usize)> =
                tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            assert!(before.difference(&after).count() <= 4, "{strategy:?}");
        }
    }

    #[test]
    fn geometric_kick_is_local() {
        // With a small pool the four cities are geometric neighbors.
        let inst = generate::uniform(200, 10_000.0, 51);
        let nl = NeighborLists::build(&inst, 12);
        let tour = Tour::identity(200);
        let mut rng = SmallRng::seed_from_u64(3);
        let cities =
            select_kick_cities(KickStrategy::Geometric(8), &inst, &tour, &nl, &mut rng).unwrap();
        let any_is_center = cities.iter().any(|&c| {
            cities
                .iter()
                .filter(|&&o| o != c)
                .all(|&o| nl.of(c)[..8].contains(&(o as u32)))
        });
        assert!(any_is_center, "no city is the center of the others");
    }

    #[test]
    fn tiny_tour_returns_none() {
        let (inst, nl, tour) = setup(100);
        let small = Tour::identity(6);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(
            select_kick_cities(KickStrategy::Random, &inst, &small, &nl, &mut rng).is_none()
        );
        let _ = tour;
    }

    #[test]
    fn names_and_parsing() {
        assert_eq!(KickStrategy::Random.name(), "Random");
        assert_eq!(KickStrategy::by_name("geometric"), Some(KickStrategy::Geometric(16)));
        assert_eq!(KickStrategy::by_name("Random-Walk"), Some(KickStrategy::RandomWalk(50)));
        assert_eq!(KickStrategy::by_name("nope"), None);
    }

    #[test]
    fn selected_cities_are_distinct_and_tour_ordered() {
        let (inst, nl, tour) = setup(100);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let cs = select_kick_cities(KickStrategy::RandomWalk(10), &inst, &tour, &nl, &mut rng)
                .unwrap();
            for i in 0..4 {
                for j in i + 1..4 {
                    assert_ne!(cs[i], cs[j]);
                }
            }
            // Walking forward from cs[0], the others appear in order.
            assert!(tour.between(cs[0], cs[1], cs[2]));
            assert!(tour.between(cs[1], cs[2], cs[3]));
        }
    }

    #[test]
    fn double_bridge_matches_position_based_reference() {
        // The generic flip decomposition must produce the same
        // undirected cycle as Tour::double_bridge_at on the same cuts.
        let inst = generate::uniform(60, 10_000.0, 52);
        let mut rng = SmallRng::seed_from_u64(6);
        for trial in 0..40 {
            let base = Tour::random(60, &mut rng);
            let mut cs = [0usize; 4];
            let mut ps = [0usize; 4];
            loop {
                for p in ps.iter_mut() {
                    *p = rng.gen_range(0..60);
                }
                ps.sort_unstable();
                if ps[0] < ps[1] && ps[1] < ps[2] && ps[2] < ps[3] {
                    break;
                }
            }
            for (i, &p) in ps.iter().enumerate() {
                cs[i] = base.city_at(p);
            }

            let mut reference = base.clone();
            reference.double_bridge_at(ps);

            let mut generic = base.clone();
            let before = base.length(&inst);
            let delta =
                double_bridge_by_cities(&inst, &mut generic, cs).expect("n=60 cuts degenerate");
            assert_eq!(generic.length(&inst), before + delta, "trial {trial}");

            let want: std::collections::HashSet<(usize, usize)> = reference
                .edges()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            let got: std::collections::HashSet<(usize, usize)> = generic
                .edges()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            assert_eq!(want, got, "trial {trial}");
        }
    }

    #[test]
    fn close_pool_dedups_before_truncating() {
        // Regression: the pool used to be truncated to six entries
        // *before* deduplication, so duplicate draws of the nearest
        // cities shrank the "six nearest" pool below six distinct ones.
        let inst = generate::uniform(10, 1_000.0, 54);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut saw_duplicates = false;
        for _ in 0..50 {
            // Replay the exact sampling stream to know what was drawn.
            let mut replay = rng.clone();
            let mut sampled: Vec<(i64, usize)> = Vec::new();
            for _ in 0..30 {
                let c = replay.gen_range(0..10);
                if c != 3 {
                    sampled.push((inst.dist(3, c), c));
                }
            }
            let raw = sampled.len();
            sampled.sort_unstable();
            sampled.dedup_by_key(|e| e.1);
            saw_duplicates |= sampled.len() < raw;
            sampled.truncate(6);

            let pool = close_pool(&inst, 3, 10, 30, &mut rng);
            // The pool is the six nearest *distinct* sampled cities.
            assert_eq!(pool, sampled);
            let distinct: std::collections::HashSet<usize> =
                pool.iter().map(|e| e.1).collect();
            assert_eq!(distinct.len(), pool.len(), "pool contains duplicates");
            assert_eq!(pool.len(), sampled.len().min(6));
        }
        assert!(saw_duplicates, "sampling never collided; test is vacuous");
    }

    #[test]
    fn degenerate_double_bridge_is_reported_not_applied() {
        // n = 4 with all four cities cut: every quarter is empty, no
        // 4-exchange exists. The call must return None and leave the
        // tour untouched instead of reporting a zero-delta "kick".
        let inst = generate::uniform(4, 1_000.0, 55);
        let mut tour = Tour::identity(4);
        let before = TourOps::to_order(&tour);
        assert_eq!(double_bridge_by_cities(&inst, &mut tour, [0, 1, 2, 3]), None);
        assert_eq!(TourOps::to_order(&tour), before, "no-op modified the tour");
    }

    #[test]
    fn reported_kicks_change_at_least_one_edge() {
        let (inst, nl, mut tour) = setup(64);
        let mut rng = SmallRng::seed_from_u64(12);
        for strategy in KickStrategy::ALL {
            for _ in 0..25 {
                let before: std::collections::HashSet<(usize, usize)> =
                    tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
                if kick(strategy, &inst, &mut tour, &nl, &mut rng).is_some() {
                    let after: std::collections::HashSet<(usize, usize)> =
                        tour.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
                    assert_ne!(before, after, "{strategy:?} reported a no-op kick");
                }
            }
        }
    }

    #[test]
    fn kicks_agree_across_representations() {
        let inst = generate::uniform(120, 10_000.0, 53);
        let nl = NeighborLists::build(&inst, 10);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let start = Tour::random(120, &mut SmallRng::seed_from_u64(8));
        let mut array = start.clone();
        let mut tl = TwoLevelList::from_tour(&start);
        for strategy in KickStrategy::ALL {
            for _ in 0..10 {
                let ka = kick(strategy, &inst, &mut array, &nl, &mut rng_a).unwrap();
                let kb = kick(strategy, &inst, &mut tl, &nl, &mut rng_b).unwrap();
                assert_eq!(ka.cities, kb.cities, "{strategy:?}");
                assert_eq!(ka.delta, kb.delta, "{strategy:?}");
                assert_eq!(
                    TourOps::to_order(&tl),
                    TourOps::to_order(&array),
                    "{strategy:?}"
                );
            }
        }
    }
}
