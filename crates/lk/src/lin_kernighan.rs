//! Variable-depth Lin-Kernighan search.
//!
//! ## Formulation
//!
//! We use the classic Hamiltonian-path view (Lin & Kernighan 1973;
//! Johnson & McGeoch's implementation notes): after removing the edge
//! `(t1, t2)` the tour becomes a path anchored at `t1` with moving
//! endpoint `last`. Each step adds `y_i = (last, c)` to a candidate `c`
//! and removes the (forced) edge `x_{i+1} = (c, v)` where `v` is `c`'s
//! path-neighbor on the `last` side; `v` becomes the new endpoint.
//!
//! ## Representation trick
//!
//! Instead of representing the open path, we always keep the *closed*
//! tour `path + (last, t1)`. One LK step then equals one 2-opt move:
//! remove `{(c, v), (last, t1)}`, add `{(last, c), (v, t1)}` — applied
//! with [`two_opt_by_edges`], which derives orientation from the tour
//! itself and is therefore immune to the orientation flips of
//! shorter-side segment reversal. At any depth the current tour is a
//! *valid* tour, so "closing up" is free, and backtracking is the
//! inverse 2-opt move.
//!
//! The search keeps the LK positive-gain criterion
//! `G_i = Σ d(x_j) − Σ d(y_j) > 0`, a tabu list of added/removed edges
//! (edges once added are never removed and vice versa), breadth limits
//! per level with backtracking on the first levels, and commits to the
//! most improving prefix of the chain.

use tsp_core::TourOps;

use crate::search::{two_opt_by_edges, Optimizer};

/// Tuning parameters for the LK search.
#[derive(Debug, Clone)]
pub struct LkConfig {
    /// Maximum chain depth (number of sequential edge exchanges).
    pub max_depth: usize,
    /// Breadth (candidates tried with backtracking) per level; levels
    /// beyond the vector use 1 (greedy).
    pub breadth: Vec<usize>,
}

impl Default for LkConfig {
    fn default() -> Self {
        LkConfig {
            max_depth: 50,
            breadth: vec![5, 3, 2],
        }
    }
}

impl LkConfig {
    /// Restricted configuration equivalent to a sequential 3-opt
    /// (chains of length ≤ 2).
    pub fn three_opt() -> Self {
        LkConfig {
            max_depth: 2,
            breadth: vec![8, 8],
        }
    }

    #[inline]
    fn breadth_at(&self, depth: usize) -> usize {
        self.breadth.get(depth - 1).copied().unwrap_or(1).max(1)
    }
}

/// Reusable scratch state for one LK chain.
struct Chain {
    /// Edges added so far (normalized `(min,max)`), never to be removed.
    added: Vec<(u32, u32)>,
    /// Edges removed so far, never to be re-added.
    removed: Vec<(u32, u32)>,
    /// Undo log: the 2-opt step `(c, v, last)` applied at each depth
    /// (undone by removing the edges it added).
    undo: Vec<(usize, usize, usize)>,
    /// Cities touched by the committed chain (for DLB re-activation).
    touched: Vec<u32>,
}

impl Chain {
    fn new() -> Self {
        Chain {
            added: Vec::with_capacity(64),
            removed: Vec::with_capacity(64),
            undo: Vec::with_capacity(64),
            touched: Vec::with_capacity(64),
        }
    }

    fn reset(&mut self) {
        self.added.clear();
        self.removed.clear();
        self.undo.clear();
        self.touched.clear();
    }
}

#[inline]
fn norm(a: usize, b: usize) -> (u32, u32) {
    if a < b {
        (a as u32, b as u32)
    } else {
        (b as u32, a as u32)
    }
}

/// The Lin-Kernighan searcher. Owns its scratch buffers so repeated
/// calls allocate nothing.
pub struct LinKernighan {
    cfg: LkConfig,
    chain: Chain,
}

impl LinKernighan {
    /// Create a searcher with the given configuration.
    pub fn new(cfg: LkConfig) -> Self {
        LinKernighan {
            cfg,
            chain: Chain::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LkConfig {
        &self.cfg
    }

    /// Try to improve the tour starting from anchor `t1`.
    ///
    /// Returns the gain (> 0, tour already updated and the chain's
    /// endpoint cities re-activated in `opt`) or 0 (tour unchanged).
    pub fn improve_from<T: TourOps>(
        &mut self,
        opt: &mut Optimizer<'_>,
        tour: &mut T,
        t1: usize,
    ) -> i64 {
        // Try both tour edges at t1 as the first removed edge.
        for first_side in 0..2 {
            let last0 = if first_side == 0 { tour.prev(t1) } else { tour.next(t1) };
            self.chain.reset();
            self.chain.removed.push(norm(t1, last0));
            let g0 = opt.dist(t1, last0);
            let gain = self.step(opt, tour, t1, last0, g0, 0, 1);
            if gain > 0 {
                // Re-activate everything the chain touched.
                self.chain.touched.push(t1 as u32);
                self.chain.touched.push(last0 as u32);
                for i in 0..self.chain.touched.len() {
                    opt.activate(self.chain.touched[i] as usize);
                }
                return gain;
            }
        }
        0
    }

    /// Recursive LK step. `last` is the path endpoint, `g` the LK gain
    /// `Σd(x) − Σd(y)` so far (always > 0 on entry), `l_delta` the tour
    /// length change vs. the original tour (the improvement when
    /// stopping here is `-l_delta`). Returns the committed improvement
    /// (> 0, leaving the tour in the improved state) or 0 (tour restored
    /// to its state at entry).
    #[allow(clippy::too_many_arguments)]
    fn step<T: TourOps>(
        &mut self,
        opt: &mut Optimizer<'_>,
        tour: &mut T,
        t1: usize,
        last: usize,
        g: i64,
        l_delta: i64,
        depth: usize,
    ) -> i64 {
        // Candidate ids and their cached metric distances: the pruning
        // test below never recomputes a distance from coordinates.
        let (cands, cdists) = opt.neighbors().of_with_dists(last);
        let breadth = self.cfg.breadth_at(depth);
        let mut tried = 0usize;
        // `fwd`: does the path run in the tour's forward direction?
        // (last is one of t1's two tour neighbors; the path leaves t1 on
        // the other side.)
        let d_last_t1 = opt.dist(last, t1);

        for ci in 0..cands.len() {
            if tried >= breadth {
                break;
            }
            let c = cands[ci] as usize;
            if c == t1 || c == last {
                continue;
            }
            let d_last_c = cdists[ci];
            // Positive-gain pruning (candidates sorted by distance).
            if d_last_c >= g {
                break;
            }
            // Orientation is derived fresh: reverse_segment may have
            // flipped the array direction at any earlier step.
            let fwd = tour.prev(t1) == last;
            debug_assert!(fwd || tour.next(t1) == last);
            let v = if fwd { tour.next(c) } else { tour.prev(c) };
            if v == t1 || v == last {
                continue;
            }
            let e_add = norm(last, c);
            let e_rem = norm(c, v);
            if self.chain.removed.contains(&e_add) || self.chain.added.contains(&e_rem) {
                continue;
            }
            // Already a tour edge? Adding (last, c) when it's the (c,v)
            // edge itself is degenerate (v == last case caught above;
            // tour adjacency of last and c makes the 2-opt a no-op).
            if tour.has_edge(last, c) {
                continue;
            }

            let new_g = g + opt.dist(c, v) - d_last_c;
            let delta = d_last_c + opt.dist(v, t1) - opt.dist(c, v) - d_last_t1;
            let new_l = l_delta + delta;

            // Apply the step.
            two_opt_by_edges(tour, (c, v), (last, t1));
            debug_assert!(tour.has_edge(last, c) && tour.has_edge(v, t1));
            self.chain.added.push(e_add);
            self.chain.removed.push(e_rem);
            self.chain.undo.push((c, v, last));
            tried += 1;

            // Recurse while the gain criterion holds.
            if new_g > 0 && depth < self.cfg.max_depth {
                let deeper = self.step(opt, tour, t1, v, new_g, new_l, depth + 1);
                if deeper > 0 {
                    self.chain.touched.push(c as u32);
                    self.chain.touched.push(v as u32);
                    self.chain.touched.push(last as u32);
                    return deeper;
                }
            }
            // No deeper commit: accept here if this prefix improves.
            if new_l < 0 {
                self.chain.touched.push(c as u32);
                self.chain.touched.push(v as u32);
                self.chain.touched.push(last as u32);
                return -new_l;
            }
            // Backtrack: undo this step and forget its tabu entries.
            two_opt_by_edges(tour, (last, c), (v, t1));
            self.chain.added.pop();
            self.chain.removed.pop();
            self.chain.undo.pop();
        }
        0
    }
}

/// Run LK to local optimality over the active queue: every active city
/// is used as anchor until no anchor yields an improving chain.
/// Returns the total gain.
pub fn lk_pass<T: TourOps>(lk: &mut LinKernighan, opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    let mut total = 0i64;
    while let Some(t1) = opt.pop_active() {
        let gain = lk.improve_from(opt, tour, t1);
        if gain > 0 {
            total += gain;
        } else {
            opt.set_dont_look(t1);
        }
    }
    total
}

/// Convenience: full LK optimization from scratch.
pub fn lin_kernighan<T: TourOps>(
    lk: &mut LinKernighan,
    opt: &mut Optimizer<'_>,
    tour: &mut T,
) -> i64 {
    opt.activate_all();
    lk_pass(lk, opt, tour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists, Tour};

    fn optimize(inst: &tsp_core::Instance, tour: &mut Tour, k: usize) -> i64 {
        let nl = NeighborLists::build(inst, k);
        let mut opt = Optimizer::new(inst, &nl);
        let mut lk = LinKernighan::new(LkConfig::default());
        lin_kernighan(&mut lk, &mut opt, tour)
    }

    #[test]
    fn length_bookkeeping_is_exact() {
        let inst = generate::uniform(120, 10_000.0, 41);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut tour = Tour::random(120, &mut rng);
        let before = tour.length(&inst);
        let gain = optimize(&inst, &mut tour, 8);
        assert!(tour.is_valid());
        assert_eq!(tour.length(&inst), before - gain);
    }

    #[test]
    fn beats_two_opt() {
        let inst = generate::uniform(250, 10_000.0, 42);
        let nl = NeighborLists::build(&inst, 10);
        let mut rng = SmallRng::seed_from_u64(2);
        let start = Tour::random(250, &mut rng);

        let mut t2 = start.clone();
        let mut opt = Optimizer::new(&inst, &nl);
        crate::two_opt::two_opt(&mut opt, &mut t2);

        let mut tlk = start.clone();
        let mut opt2 = Optimizer::new(&inst, &nl);
        let mut lk = LinKernighan::new(LkConfig::default());
        lin_kernighan(&mut lk, &mut opt2, &mut tlk);

        assert!(
            tlk.length(&inst) <= t2.length(&inst),
            "LK {} worse than 2-opt {}",
            tlk.length(&inst),
            t2.length(&inst)
        );
    }

    #[test]
    fn finds_grid_optimum_from_good_start() {
        let inst = generate::grid_known_optimum(6, 6, 100.0);
        let mut tour = crate::construct::quick_boruvka(&inst);
        optimize(&inst, &mut tour, 8);
        // LK from a QB start should usually reach the optimum on a tiny
        // grid; allow 2% slack to avoid flakiness.
        let opt = inst.known_optimum().unwrap();
        assert!(
            tour.length(&inst) as f64 <= 1.02 * opt as f64,
            "LK got {} vs optimum {}",
            tour.length(&inst),
            opt
        );
    }

    #[test]
    fn no_gain_at_local_optimum_second_pass() {
        let inst = generate::uniform(100, 10_000.0, 44);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut tour = Tour::random(100, &mut rng);
        let nl = NeighborLists::build(&inst, 8);
        let mut opt = Optimizer::new(&inst, &nl);
        let mut lk = LinKernighan::new(LkConfig::default());
        lin_kernighan(&mut lk, &mut opt, &mut tour);
        let len = tour.length(&inst);
        let gain2 = lin_kernighan(&mut lk, &mut opt, &mut tour);
        assert_eq!(gain2, 0);
        assert_eq!(tour.length(&inst), len);
    }

    #[test]
    fn three_opt_config_also_improves() {
        let inst = generate::uniform(150, 10_000.0, 45);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tour = Tour::random(150, &mut rng);
        let before = tour.length(&inst);
        let nl = NeighborLists::build(&inst, 8);
        let mut opt = Optimizer::new(&inst, &nl);
        let mut lk = LinKernighan::new(LkConfig::three_opt());
        let gain = lin_kernighan(&mut lk, &mut opt, &mut tour);
        assert!(gain > 0);
        assert_eq!(tour.length(&inst), before - gain);
    }

    #[test]
    fn deterministic_given_same_start() {
        let inst = generate::uniform(80, 10_000.0, 46);
        let mut rng = SmallRng::seed_from_u64(5);
        let start = Tour::random(80, &mut rng);
        let mut a = start.clone();
        let mut b = start.clone();
        optimize(&inst, &mut a, 8);
        optimize(&inst, &mut b, 8);
        assert_eq!(a.length(&inst), b.length(&inst));
        assert_eq!(a.order(), b.order());
    }
}
