//! Search budgets and convergence traces.
//!
//! The paper bounds runs by CPU time (10³–10⁵ s) with the known optimum
//! as an additional termination criterion. For deterministic tests we
//! additionally support *effort* budgets counted in kicks/CLK calls, so
//! CI never depends on wall-clock speed.

use std::time::{Duration, Instant};

/// Composite termination criterion: a run stops when *any* enabled
/// bound is hit.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Maximum number of kicks / outer iterations.
    pub max_kicks: Option<u64>,
    /// Stop as soon as a tour of this length (or shorter) is found —
    /// the paper's "known optimum" criterion.
    pub target_length: Option<i64>,
}

impl Budget {
    /// Unlimited budget (callers must bound some other way).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Time-bounded budget.
    pub fn time(d: Duration) -> Self {
        Budget {
            time_limit: Some(d),
            ..Default::default()
        }
    }

    /// Effort-bounded budget (deterministic).
    pub fn kicks(k: u64) -> Self {
        Budget {
            max_kicks: Some(k),
            ..Default::default()
        }
    }

    /// Add a target length (builder style).
    pub fn with_target(mut self, target: i64) -> Self {
        self.target_length = Some(target);
        self
    }

    /// Add a kick bound (builder style).
    pub fn with_max_kicks(mut self, k: u64) -> Self {
        self.max_kicks = Some(k);
        self
    }

    /// Add a time bound (builder style).
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Whether the run should stop given elapsed time, kicks performed
    /// and the best length so far.
    pub fn exhausted(&self, elapsed: Duration, kicks: u64, best: i64) -> bool {
        if let Some(t) = self.time_limit {
            if elapsed >= t {
                return true;
            }
        }
        if let Some(k) = self.max_kicks {
            if kicks >= k {
                return true;
            }
        }
        if let Some(target) = self.target_length {
            if best <= target {
                return true;
            }
        }
        false
    }

    /// Whether `best` already meets the target length.
    pub fn target_met(&self, best: i64) -> bool {
        self.target_length.is_some_and(|t| best <= t)
    }
}

/// Monotonic stopwatch (thin wrapper so experiment code reads clearly).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as f64 (for traces and CSV output).
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// A best-so-far convergence trace: `(seconds, kicks, tour length)`
/// samples recorded at every improvement — the raw series behind the
/// paper's Figures 2 and 3.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<(f64, u64, i64)>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record an improvement. The trace is a *best-so-far* series, so
    /// a sample that does not improve on the last recorded length is
    /// dropped — repeated or regressing entries (e.g. a received tour
    /// tying the local best) can never corrupt the convergence curves;
    /// the full history lives in the obs event log instead.
    pub fn record(&mut self, secs: f64, kicks: u64, length: i64) {
        if self.points.last().is_some_and(|&(_, _, l)| length >= l) {
            return;
        }
        self.points.push((secs, kicks, length));
    }

    /// All samples, in recording order.
    pub fn points(&self) -> &[(f64, u64, i64)] {
        &self.points
    }

    /// Final (best) length, if any sample was recorded.
    pub fn final_length(&self) -> Option<i64> {
        self.points.last().map(|&(_, _, l)| l)
    }

    /// First time (seconds) at which the trace reached `length` or
    /// better — the "time to quality level" statistic of Table 1.
    pub fn time_to_reach(&self, length: i64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, _, l)| l <= length)
            .map(|&(s, _, _)| s)
    }

    /// First effort point (kicks / CLK calls) at which the trace
    /// reached `length` or better — the machine-independent variant of
    /// [`Trace::time_to_reach`], used on single-core hosts where
    /// wall-clock comparisons across thread counts would be unfair.
    pub fn kicks_to_reach(&self, length: i64) -> Option<u64> {
        self.points
            .iter()
            .find(|&&(_, _, l)| l <= length)
            .map(|&(_, k, _)| k)
    }

    /// Merge several per-node traces into the network-best trace
    /// (minimum length over nodes as a function of time).
    pub fn network_best(traces: &[Trace]) -> Trace {
        let mut all: Vec<(f64, u64, i64)> = traces
            .iter()
            .flat_map(|t| t.points.iter().copied())
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut out = Trace::new();
        let mut best = i64::MAX;
        for (s, k, l) in all {
            if l < best {
                best = l;
                out.record(s, k, l);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kick_budget() {
        let b = Budget::kicks(10);
        assert!(!b.exhausted(Duration::ZERO, 9, i64::MAX));
        assert!(b.exhausted(Duration::ZERO, 10, i64::MAX));
    }

    #[test]
    fn time_budget() {
        let b = Budget::time(Duration::from_millis(5));
        assert!(!b.exhausted(Duration::from_millis(4), 0, i64::MAX));
        assert!(b.exhausted(Duration::from_millis(5), 0, i64::MAX));
    }

    #[test]
    fn target_budget() {
        let b = Budget::unlimited().with_target(100);
        assert!(!b.exhausted(Duration::ZERO, 0, 101));
        assert!(b.exhausted(Duration::ZERO, 0, 100));
        assert!(b.target_met(99));
        assert!(!b.target_met(101));
    }

    #[test]
    fn combined_budget_any_bound_stops() {
        let b = Budget::kicks(5).with_target(10);
        assert!(b.exhausted(Duration::ZERO, 5, 50));
        assert!(b.exhausted(Duration::ZERO, 0, 10));
        assert!(!b.exhausted(Duration::ZERO, 4, 11));
    }

    #[test]
    fn trace_time_to_reach() {
        let mut t = Trace::new();
        t.record(0.1, 1, 1000);
        t.record(0.5, 3, 900);
        t.record(2.0, 9, 850);
        assert_eq!(t.time_to_reach(950), Some(0.5));
        assert_eq!(t.time_to_reach(850), Some(2.0));
        assert_eq!(t.time_to_reach(800), None);
        assert_eq!(t.final_length(), Some(850));
    }

    #[test]
    fn trace_drops_non_improving_samples() {
        let mut t = Trace::new();
        t.record(0.1, 1, 1000);
        t.record(0.2, 2, 1000); // duplicate length: dropped
        t.record(0.3, 3, 1100); // regression: dropped
        t.record(0.4, 4, 900);
        assert_eq!(t.points(), &[(0.1, 1, 1000), (0.4, 4, 900)]);
        for w in t.points().windows(2) {
            assert!(w[1].2 < w[0].2);
        }
    }

    #[test]
    fn network_best_merges() {
        let mut a = Trace::new();
        a.record(0.1, 0, 1000);
        a.record(1.0, 0, 800);
        let mut b = Trace::new();
        b.record(0.2, 0, 900);
        b.record(0.5, 0, 950); // worse than current best, dropped
        let merged = Trace::network_best(&[a, b]);
        assert_eq!(
            merged.points(),
            &[(0.1, 0, 1000), (0.2, 0, 900), (1.0, 0, 800)]
        );
    }
}
