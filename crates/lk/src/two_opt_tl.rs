//! 2-opt on the two-level tour list — compatibility wrappers.
//!
//! The 2-opt engine itself lives in [`crate::two_opt`] and is generic
//! over [`tsp_core::TourOps`]; this module used to carry a duplicated
//! don't-look/queue implementation for [`TwoLevelList`] and now just
//! delegates. Kept because the entry points predate the generic engine
//! and read naturally at call sites that only ever see a two-level
//! list.

use tsp_core::{Instance, NeighborLists, TwoLevelList};

use crate::search::{two_opt_by_edges, Optimizer};

/// Apply the unique non-identity 2-opt reconnection removing tour
/// edges `e1` and `e2` on a two-level list.
///
/// With `b = next(a)` and `d = next(c)` (after orientation), the
/// reconnection adds `(a,c)` and `(b,d)` by flipping the path `b…c`.
pub fn two_opt_by_edges_tl(tl: &mut TwoLevelList, e1: (usize, usize), e2: (usize, usize)) {
    two_opt_by_edges(tl, e1, e2);
}

/// Run first-improvement candidate-list 2-opt with don't-look bits to
/// local optimality on a two-level list. Returns the total gain.
pub fn two_opt_tl(inst: &Instance, neighbors: &NeighborLists, tl: &mut TwoLevelList) -> i64 {
    let mut opt = Optimizer::new(inst, neighbors);
    crate::two_opt::two_opt(&mut opt, tl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, Tour};

    #[test]
    fn matches_array_two_opt_quality() {
        let inst = generate::uniform(400, 100_000.0, 51);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let start = Tour::random(400, &mut rng);

        // Array engine.
        let mut array_tour = start.clone();
        let mut opt = crate::Optimizer::new(&inst, &nl);
        let array_gain = crate::two_opt::two_opt(&mut opt, &mut array_tour);

        // Two-level engine from the same start.
        let mut tl = TwoLevelList::from_tour(&start);
        let before = start.length(&inst);
        let tl_gain = two_opt_tl(&inst, &nl, &mut tl);
        let tl_tour = tl.to_tour();
        assert!(tl_tour.is_valid());
        assert_eq!(tl_tour.length(&inst), before - tl_gain);

        // Both run the same generic engine; from the same start the
        // trajectories are identical, so the gains must match exactly.
        use tsp_core::TourOps;
        assert_eq!(array_gain, tl_gain);
        assert_eq!(TourOps::to_order(&array_tour), TourOps::to_order(&tl));
    }

    #[test]
    fn exact_gain_accounting_on_families() {
        for inst in [
            generate::clustered_dimacs(200, 52),
            generate::drill_plate(200, 53),
        ] {
            let nl = NeighborLists::build(&inst, 8);
            let mut rng = SmallRng::seed_from_u64(2);
            let start = Tour::random(200, &mut rng);
            let before = start.length(&inst);
            let mut tl = TwoLevelList::from_tour(&start);
            let gain = two_opt_tl(&inst, &nl, &mut tl);
            assert_eq!(tl.to_tour().length(&inst), before - gain, "{}", inst.name());
            assert!(gain > 0);
        }
    }

    #[test]
    fn large_instance_smoke() {
        // 20k cities: array 2-opt from random would be minutes; the
        // two-level engine from a space-filling start finishes fast.
        let inst = generate::uniform(20_000, 1_000_000.0, 54);
        let nl = NeighborLists::build(&inst, 6);
        let start = crate::construct::space_filling(&inst);
        let before = start.length(&inst);
        let mut tl = TwoLevelList::from_tour(&start);
        let gain = two_opt_tl(&inst, &nl, &mut tl);
        assert!(gain > 0);
        assert_eq!(tl.to_tour().length(&inst), before - gain);
    }
}
