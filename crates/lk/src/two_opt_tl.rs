//! 2-opt on the two-level tour list.
//!
//! Identical move semantics to [`crate::two_opt`], but operating on
//! [`TwoLevelList`], whose O(√n) flips make candidate-list 2-opt viable
//! at the paper's largest instance sizes (pla33810/pla85900-class)
//! where the array tour's O(n) reversals dominate. The orientation
//! question (a flip may invert the traversal direction) is handled the
//! same way as in the array engine: every move is specified by its two
//! removed edges and the direction is derived fresh from the structure.

use tsp_core::{Instance, NeighborLists, TwoLevelList};

/// Apply the unique non-identity 2-opt reconnection removing tour
/// edges `e1` and `e2` on a two-level list.
///
/// With `b = next(a)` and `d = next(c)` (after orientation), the
/// reconnection adds `(a,c)` and `(b,d)` by flipping the path `b…c`.
pub fn two_opt_by_edges_tl(tl: &mut TwoLevelList, e1: (usize, usize), e2: (usize, usize)) {
    let (a, b) = orient(tl, e1);
    let (c, d) = orient(tl, e2);
    debug_assert!(a != c && a != d && b != c && b != d, "edges must be disjoint");
    let _ = (a, d);
    tl.flip(b, c);
}

#[inline]
fn orient(tl: &TwoLevelList, (x, y): (usize, usize)) -> (usize, usize) {
    if tl.next(x) == y {
        (x, y)
    } else {
        debug_assert_eq!(tl.next(y), x, "({x},{y}) is not a tour edge");
        (y, x)
    }
}

/// Run first-improvement candidate-list 2-opt with don't-look bits to
/// local optimality on a two-level list. Returns the total gain.
pub fn two_opt_tl(inst: &Instance, neighbors: &NeighborLists, tl: &mut TwoLevelList) -> i64 {
    let n = inst.len();
    let mut dont_look = vec![false; n];
    let mut queue: std::collections::VecDeque<u32> = (0..n as u32).collect();
    let mut in_queue = vec![true; n];
    let mut total = 0i64;

    while let Some(t1) = queue.pop_front() {
        let t1 = t1 as usize;
        in_queue[t1] = false;
        if dont_look[t1] {
            continue;
        }
        let mut improved = false;
        'dirs: for dir in 0..2 {
            let t2 = if dir == 0 { tl.next(t1) } else { tl.prev(t1) };
            let d_t1_t2 = inst.dist(t1, t2);
            for &t3 in neighbors.of(t1) {
                let t3 = t3 as usize;
                let d_t1_t3 = inst.dist(t1, t3);
                if d_t1_t3 >= d_t1_t2 {
                    break;
                }
                if t3 == t2 {
                    continue;
                }
                let t4 = if dir == 0 { tl.next(t3) } else { tl.prev(t3) };
                if t4 == t1 {
                    continue;
                }
                let gain = d_t1_t2 + inst.dist(t3, t4) - d_t1_t3 - inst.dist(t2, t4);
                if gain > 0 {
                    two_opt_by_edges_tl(tl, (t1, t2), (t3, t4));
                    total += gain;
                    improved = true;
                    for c in [t1, t2, t3, t4] {
                        dont_look[c] = false;
                        if !in_queue[c] {
                            in_queue[c] = true;
                            queue.push_back(c as u32);
                        }
                    }
                    break 'dirs;
                }
            }
        }
        if improved {
            if !in_queue[t1] {
                in_queue[t1] = true;
                queue.push_back(t1 as u32);
            }
        } else {
            dont_look[t1] = true;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, Tour};

    #[test]
    fn matches_array_two_opt_quality() {
        let inst = generate::uniform(400, 100_000.0, 51);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let start = Tour::random(400, &mut rng);

        // Array engine.
        let mut array_tour = start.clone();
        let mut opt = crate::Optimizer::new(&inst, &nl);
        let array_gain = crate::two_opt::two_opt(&mut opt, &mut array_tour);

        // Two-level engine from the same start.
        let mut tl = TwoLevelList::from_tour(&start);
        let before = start.length(&inst);
        let tl_gain = two_opt_tl(&inst, &nl, &mut tl);
        let tl_tour = tl.to_tour();
        assert!(tl_tour.is_valid());
        assert_eq!(tl_tour.length(&inst), before - tl_gain);

        // Same neighborhood, same first-improvement rule — both land in
        // comparable local optima (not necessarily identical: flip
        // orientation differences reorder the scan).
        let a = array_tour.length(&inst) as f64;
        let b = tl_tour.length(&inst) as f64;
        assert!(
            (b - a).abs() <= 0.05 * a,
            "two-level 2-opt {} vs array 2-opt {}",
            b,
            a
        );
        let _ = array_gain;
    }

    #[test]
    fn exact_gain_accounting_on_families() {
        for inst in [
            generate::clustered_dimacs(200, 52),
            generate::drill_plate(200, 53),
        ] {
            let nl = NeighborLists::build(&inst, 8);
            let mut rng = SmallRng::seed_from_u64(2);
            let start = Tour::random(200, &mut rng);
            let before = start.length(&inst);
            let mut tl = TwoLevelList::from_tour(&start);
            let gain = two_opt_tl(&inst, &nl, &mut tl);
            assert_eq!(tl.to_tour().length(&inst), before - gain, "{}", inst.name());
            assert!(gain > 0);
        }
    }

    #[test]
    fn large_instance_smoke() {
        // 20k cities: array 2-opt from random would be minutes; the
        // two-level engine from a space-filling start finishes fast.
        let inst = generate::uniform(20_000, 1_000_000.0, 54);
        let nl = NeighborLists::build(&inst, 6);
        let start = crate::construct::space_filling(&inst);
        let before = start.length(&inst);
        let mut tl = TwoLevelList::from_tour(&start);
        let gain = two_opt_tl(&inst, &nl, &mut tl);
        assert!(gain > 0);
        assert_eq!(tl.to_tour().length(&inst), before - gain);
    }
}
