//! Nearest-neighbor construction.

use tsp_core::kdtree::KdTree;
use tsp_core::{Instance, Tour};

/// Greedy nearest-neighbor chain starting at `start`: repeatedly hop to
/// the closest unvisited city. Uses the k-d tree for geometric
/// instances (O(n log n)-ish) and a linear scan otherwise.
pub fn nearest_neighbor(inst: &Instance, start: usize) -> Tour {
    let n = inst.len();
    assert!(start < n);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur as u32);

    if inst.metric().is_geometric() {
        let tree = KdTree::build(inst);
        for _ in 1..n {
            let next = tree
                .nearest_filtered(inst.point(cur), |c| visited[c])
                .expect("unvisited city must exist");
            visited[next] = true;
            order.push(next as u32);
            cur = next;
        }
    } else {
        for _ in 1..n {
            let mut best = usize::MAX;
            let mut best_d = i64::MAX;
            for (c, &seen) in visited.iter().enumerate() {
                if !seen {
                    let d = inst.dist(cur, c);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
            }
            visited[best] = true;
            order.push(best as u32);
            cur = best;
        }
    }
    Tour::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn visits_every_city_once() {
        let inst = generate::uniform(100, 1000.0, 7);
        let t = nearest_neighbor(&inst, 42);
        assert!(t.is_valid());
        assert_eq!(t.city_at(t.position(42)), 42);
    }

    #[test]
    fn starts_at_requested_city() {
        let inst = generate::uniform(50, 1000.0, 8);
        let t = nearest_neighbor(&inst, 7);
        assert_eq!(t.order()[0], 7);
    }

    #[test]
    fn follows_chain_on_a_line() {
        // On a line, NN from an endpoint visits cities in order.
        let pts: Vec<tsp_core::Point> = (0..10)
            .map(|i| tsp_core::Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let inst = tsp_core::Instance::new("line", pts, tsp_core::Metric::Euc2d);
        let t = nearest_neighbor(&inst, 0);
        let expected: Vec<u32> = (0..10).collect();
        assert_eq!(t.order(), expected.as_slice());
    }
}
