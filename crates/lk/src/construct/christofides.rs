//! Christofides-style construction.
//!
//! The paper (§2.1) cites Applegate, Cook & Rohe's comparison of CLK
//! started from HK-Christofides tours vs. Quick-Borůvka tours (QB wins
//! despite being much cheaper). To reproduce that comparison we provide
//! the classic Christofides skeleton:
//!
//! 1. minimum spanning tree,
//! 2. *greedy* minimum-weight matching on the odd-degree vertices
//!    (exact blossom matching is out of scope; greedy keeps the 3/2
//!    flavour in practice and is what many reimplementations use),
//! 3. Eulerian circuit of MST ∪ matching,
//! 4. shortcut repeated cities to a Hamiltonian tour.

use heldkarp::mst::prim;
use tsp_core::{Instance, Tour};

/// Build a tour with the Christofides skeleton (greedy matching).
pub fn christofides(inst: &Instance) -> Tour {
    let n = inst.len();
    let verts: Vec<u32> = (0..n as u32).collect();
    let pi = vec![0i64; n];
    let mst = prim(inst, &pi, &verts);

    // Adjacency of the multigraph MST ∪ matching.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        let p = mst.parent[v] as usize;
        if p != v {
            adj[v].push(p as u32);
            adj[p].push(v as u32);
        }
    }

    // Odd-degree vertices.
    let mut odd: Vec<u32> = (0..n as u32)
        .filter(|&v| adj[v as usize].len() % 2 == 1)
        .collect();
    debug_assert!(odd.len().is_multiple_of(2), "handshake lemma");

    // Greedy matching: repeatedly pair the globally closest odd pair.
    // O(m² log m) on the odd set via a sorted edge list.
    let mut pairs: Vec<(i64, u32, u32)> = Vec::with_capacity(odd.len() * odd.len() / 2);
    for i in 0..odd.len() {
        for j in (i + 1)..odd.len() {
            pairs.push((
                inst.dist(odd[i] as usize, odd[j] as usize),
                odd[i],
                odd[j],
            ));
        }
    }
    pairs.sort_unstable();
    let mut matched = vec![false; n];
    for &(_, a, b) in &pairs {
        if !matched[a as usize] && !matched[b as usize] {
            matched[a as usize] = true;
            matched[b as usize] = true;
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
    }
    // All odd vertices are matched (greedy over the complete pair list).
    odd.retain(|&v| !matched[v as usize]);
    debug_assert!(odd.is_empty());

    // Hierholzer's algorithm for the Eulerian circuit.
    let mut iter = vec![0usize; n]; // per-vertex edge cursor
    let mut used: Vec<Vec<bool>> = adj.iter().map(|a| vec![false; a.len()]).collect();
    let mut stack = vec![0u32];
    let mut circuit: Vec<u32> = Vec::with_capacity(2 * n);
    while let Some(&v) = stack.last() {
        let vu = v as usize;
        // Find the next unused incident edge.
        let mut advanced = false;
        while iter[vu] < adj[vu].len() {
            let e = iter[vu];
            iter[vu] += 1;
            if used[vu][e] {
                continue;
            }
            let w = adj[vu][e];
            // Mark the reverse edge used too (first unused matching slot).
            used[vu][e] = true;
            let wu = w as usize;
            if let Some(re) = (0..adj[wu].len())
                .find(|&re| adj[wu][re] == v && !used[wu][re])
            {
                used[wu][re] = true;
            }
            stack.push(w);
            advanced = true;
            break;
        }
        if !advanced {
            circuit.push(v);
            stack.pop();
        }
    }

    // Shortcut: keep the first occurrence of each city.
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for &c in &circuit {
        if !seen[c as usize] {
            seen[c as usize] = true;
            order.push(c);
        }
    }
    debug_assert_eq!(order.len(), n, "Eulerian circuit missed cities");
    Tour::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn produces_valid_tours() {
        for n in [10usize, 57, 200] {
            let inst = generate::uniform(n, 10_000.0, n as u64 + 9);
            let t = christofides(&inst);
            assert!(t.is_valid(), "n={n}");
        }
    }

    #[test]
    fn within_two_x_of_grid_optimum() {
        let inst = generate::grid_known_optimum(10, 10, 100.0);
        let t = christofides(&inst);
        assert!(t.is_valid());
        assert!(
            t.length(&inst) <= 2 * inst.known_optimum().unwrap(),
            "christofides {} vs optimum {}",
            t.length(&inst),
            inst.known_optimum().unwrap()
        );
    }

    #[test]
    fn competitive_with_nearest_neighbor() {
        let inst = generate::uniform(300, 10_000.0, 77);
        let ch = christofides(&inst).length(&inst);
        let nn = super::super::nearest_neighbor(&inst, 0).length(&inst);
        // Christofides should be at least in NN's ballpark.
        assert!(
            (ch as f64) < 1.2 * nn as f64,
            "christofides {ch} vs NN {nn}"
        );
    }

    #[test]
    fn works_on_clustered() {
        let inst = generate::clustered_dimacs(150, 8);
        assert!(christofides(&inst).is_valid());
    }
}
