//! Greedy edge-matching construction.
//!
//! Sorts candidate edges by length and inserts every edge that keeps
//! degrees ≤ 2 and closes no subtour — the classic "Greedy" tour of the
//! DIMACS challenge. To stay near O(n log n) we only consider each
//! city's `k` nearest neighbors as candidate edges (k = 10 suffices for
//! a valid matching on geometric data; leftovers are stitched like
//! Quick-Borůvka's fragments).

use tsp_core::{Instance, NeighborLists, Tour};

/// Build a tour by greedy shortest-edge matching.
pub fn greedy_matching(inst: &Instance) -> Tour {
    let n = inst.len();
    let k = 10.min(n - 1);
    let nl = NeighborLists::build(inst, k);

    // Candidate edges, deduplicated (a < b).
    let mut edges: Vec<(i64, u32, u32)> = Vec::with_capacity(n * k / 2);
    for a in 0..n {
        for &b in nl.of(a) {
            let b = b as usize;
            if a < b {
                edges.push((inst.dist(a, b), a as u32, b as u32));
            } else if !nl.of(b).contains(&(a as u32)) {
                // Keep asymmetric pairs too (b's list may not contain a).
                edges.push((inst.dist(a, b), b as u32, a as u32));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let mut degree = vec![0u8; n];
    let mut adj = vec![[u32::MAX; 2]; n];
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: usize) -> usize {
        while parent[x] as usize != x {
            let p = parent[x] as usize;
            parent[x] = parent[p];
            x = parent[x] as usize;
        }
        x
    }
    let mut added = 0usize;
    let push = |a: usize, b: usize, degree: &mut Vec<u8>, adj: &mut Vec<[u32; 2]>| {
        adj[a][degree[a] as usize] = b as u32;
        adj[b][degree[b] as usize] = a as u32;
        degree[a] += 1;
        degree[b] += 1;
    };

    for &(_, a, b) in &edges {
        if added == n - 1 {
            break;
        }
        let (a, b) = (a as usize, b as usize);
        if degree[a] >= 2 || degree[b] >= 2 {
            continue;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            continue;
        }
        parent[ra] = rb as u32;
        push(a, b, &mut degree, &mut adj);
        added += 1;
    }

    // Stitch remaining fragments greedily by nearest endpoints.
    while added < n - 1 {
        let v = (0..n).find(|&c| degree[c] < 2).expect("endpoint exists");
        let rv = find(&mut parent, v);
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for (c, &deg_c) in degree.iter().enumerate() {
            if c != v && deg_c < 2 && find(&mut parent, c) != rv {
                let d = inst.dist(v, c);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
        }
        let rb = find(&mut parent, best);
        parent[rv] = rb as u32;
        push(v, best, &mut degree, &mut adj);
        added += 1;
    }

    // Walk the path.
    let start = (0..n).find(|&c| degree[c] == 1).unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut prev = u32::MAX;
    let mut cur = start as u32;
    loop {
        order.push(cur);
        let a = adj[cur as usize];
        let next = if a[0] != prev && a[0] != u32::MAX { a[0] } else { a[1] };
        if next == u32::MAX || order.len() == n {
            break;
        }
        prev = cur;
        cur = next;
    }
    Tour::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn valid_on_various_sizes() {
        for n in [12, 80, 250] {
            let inst = generate::uniform(n, 10_000.0, n as u64 + 1);
            let t = greedy_matching(&inst);
            assert!(t.is_valid(), "n={n}");
        }
    }

    #[test]
    fn good_quality_on_uniform_data() {
        // Greedy is typically within ~15-25% of optimal; random is ~O(sqrt n)
        // times worse. Just require a healthy margin.
        let inst = generate::uniform(400, 10_000.0, 3);
        let g = greedy_matching(&inst).length(&inst);
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        let r = Tour::random(400, &mut rng).length(&inst);
        assert!((g as f64) < 0.4 * r as f64, "greedy {g} vs random {r}");
    }

    #[test]
    fn valid_on_clustered() {
        let inst = generate::clustered_dimacs(120, 7);
        assert!(greedy_matching(&inst).is_valid());
    }
}
