//! Initial tour construction heuristics.
//!
//! The paper's CLK engine constructs its starting tour with
//! **Quick-Borůvka** (Applegate, Cook & Rohe), which beats
//! HK-Christofides starts for subsequent CLK optimization (§2.1). The
//! other constructions serve as baselines and as cheap restart tours
//! for the distributed algorithm's `c_r` restart rule.

mod christofides;
mod greedy;
mod nearest;
mod quick_boruvka;
mod space_filling;

pub use christofides::christofides;
pub use greedy::greedy_matching;
pub use nearest::nearest_neighbor;
pub use quick_boruvka::quick_boruvka;
pub use space_filling::space_filling;

use rand::Rng;
use tsp_core::{Instance, Tour};

/// The available construction heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construction {
    /// Quick-Borůvka (the `linkern` default).
    QuickBoruvka,
    /// Nearest-neighbor chain from a random start.
    NearestNeighbor,
    /// Greedy shortest-edge matching.
    Greedy,
    /// Hilbert space-filling-curve order.
    SpaceFilling,
    /// Christofides skeleton (MST + greedy odd matching + shortcut).
    Christofides,
    /// Uniformly random permutation.
    Random,
}

/// Build an initial tour with the chosen heuristic.
///
/// Non-geometric (explicit-matrix) instances fall back to
/// nearest-neighbor for the geometric heuristics.
pub fn construct<R: Rng>(inst: &Instance, which: Construction, rng: &mut R) -> Tour {
    let geometric = inst.metric().is_geometric();
    match which {
        Construction::QuickBoruvka if geometric => quick_boruvka(inst),
        Construction::Greedy if geometric => greedy_matching(inst),
        Construction::SpaceFilling if geometric => space_filling(inst),
        Construction::Christofides if geometric => christofides(inst),
        Construction::Random => Tour::random(inst.len(), rng),
        // NearestNeighbor, and the fallback for geometric-only
        // constructions on non-geometric instances.
        _ => {
            let start = rng.gen_range(0..inst.len());
            nearest_neighbor(inst, start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::generate;

    #[test]
    fn all_constructions_yield_valid_tours() {
        let inst = generate::uniform(120, 10_000.0, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for which in [
            Construction::QuickBoruvka,
            Construction::NearestNeighbor,
            Construction::Greedy,
            Construction::SpaceFilling,
            Construction::Christofides,
            Construction::Random,
        ] {
            let t = construct(&inst, which, &mut rng);
            assert!(t.is_valid(), "{which:?}");
            assert_eq!(t.len(), 120);
        }
    }

    #[test]
    fn heuristic_tours_beat_random() {
        let inst = generate::uniform(200, 10_000.0, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        let random_len = construct(&inst, Construction::Random, &mut rng).length(&inst);
        for which in [
            Construction::QuickBoruvka,
            Construction::NearestNeighbor,
            Construction::Greedy,
            Construction::SpaceFilling,
            Construction::Christofides,
        ] {
            let len = construct(&inst, which, &mut rng).length(&inst);
            assert!(
                len < random_len,
                "{which:?}: {len} not better than random {random_len}"
            );
        }
    }

    #[test]
    fn explicit_matrix_falls_back() {
        let geo = generate::uniform(20, 1000.0, 6);
        let n = geo.len();
        let mut m = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                m[i * n + j] = geo.dist(i, j);
            }
        }
        let inst = tsp_core::Instance::explicit("m", m, n);
        let mut rng = SmallRng::seed_from_u64(3);
        let t = construct(&inst, Construction::QuickBoruvka, &mut rng);
        assert!(t.is_valid());
    }
}
