//! Hilbert space-filling-curve construction.
//!
//! Orders cities along a Hilbert curve over the bounding box — an
//! O(n log n) construction with a worst-case constant-factor guarantee
//! on uniform data, handy as a very fast restart tour.

use tsp_core::{Instance, Tour};

/// Map `(x, y)` in `[0, 2^order)²` to its Hilbert curve index.
fn hilbert_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << order;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate quadrant (classic Wikipedia formulation).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Build a tour by sorting cities along a Hilbert curve.
///
/// # Panics
///
/// Panics on non-geometric instances.
pub fn space_filling(inst: &Instance) -> Tour {
    assert!(inst.metric().is_geometric(), "needs coordinates");
    const ORDER: u32 = 16;
    let side = (1u32 << ORDER) - 1;
    let pts = inst.points();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in pts {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let sx = side as f64 / (max_x - min_x).max(1e-9);
    let sy = side as f64 / (max_y - min_y).max(1e-9);
    let mut keyed: Vec<(u64, u32)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let gx = ((p.x - min_x) * sx) as u32;
            let gy = ((p.y - min_y) * sy) as u32;
            (hilbert_d(ORDER, gx.min(side), gy.min(side)), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    Tour::from_order(keyed.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn hilbert_indices_distinct_for_distinct_cells() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                assert!(seen.insert(hilbert_d(4, x, y)), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn hilbert_is_continuous() {
        // Consecutive indices map to adjacent cells: verify by inverting
        // over a small grid.
        let mut cells = vec![(0u32, 0u32); 256];
        for x in 0..16u32 {
            for y in 0..16u32 {
                cells[hilbert_d(4, x, y) as usize] = (x, y);
            }
        }
        for w in cells.windows(2) {
            let dx = (w[0].0 as i64 - w[1].0 as i64).abs();
            let dy = (w[0].1 as i64 - w[1].1 as i64).abs();
            assert_eq!(dx + dy, 1, "curve jumps from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn produces_valid_tour() {
        let inst = generate::uniform(500, 10_000.0, 11);
        let t = space_filling(&inst);
        assert!(t.is_valid());
    }

    #[test]
    fn locality_beats_random() {
        let inst = generate::uniform(400, 10_000.0, 12);
        let sfc = space_filling(&inst).length(&inst);
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        let r = Tour::random(400, &mut rng).length(&inst);
        assert!((sfc as f64) < 0.4 * r as f64);
    }
}
