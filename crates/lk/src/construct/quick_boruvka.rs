//! Quick-Borůvka tour construction (Applegate, Cook & Rohe).
//!
//! As described in the paper (§2.1): vertices are processed in
//! coordinate order; each city that does not yet have two adjacent tour
//! edges selects the minimum-weight incident edge that neither closes a
//! subtour nor touches a city that already has two edges. The algorithm
//! iterates (at most twice in the original; we iterate until no city is
//! eligible) and finally stitches the remaining path fragments into a
//! Hamiltonian cycle.

use tsp_core::kdtree::KdTree;
use tsp_core::{Instance, Tour};

/// Union-find with path halving.
struct UnionFind(Vec<u32>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n as u32).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] as usize != x {
            let p = self.0[x] as usize;
            self.0[x] = self.0[p];
            x = self.0[x] as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra] = rb as u32;
    }
}

/// Build a tour with Quick-Borůvka.
///
/// # Panics
///
/// Panics if the instance is not geometric (sorting needs coordinates).
pub fn quick_boruvka(inst: &Instance) -> Tour {
    assert!(
        inst.metric().is_geometric(),
        "Quick-Borůvka sorts by coordinates"
    );
    let n = inst.len();
    let tree = KdTree::build(inst);
    let mut degree = vec![0u8; n];
    // adj[c] = up to two tour neighbors of c.
    let mut adj = vec![[u32::MAX; 2]; n];
    let mut uf = UnionFind::new(n);
    let mut edges = 0usize;

    // Process cities sorted by (x, y) as the paper describes.
    let mut by_coord: Vec<u32> = (0..n as u32).collect();
    by_coord.sort_by(|&a, &b| {
        let (pa, pb) = (inst.point(a as usize), inst.point(b as usize));
        pa.x.partial_cmp(&pb.x)
            .unwrap()
            .then(pa.y.partial_cmp(&pb.y).unwrap())
            .then(a.cmp(&b))
    });

    let add_edge = |a: usize,
                        b: usize,
                        degree: &mut Vec<u8>,
                        adj: &mut Vec<[u32; 2]>,
                        uf: &mut UnionFind| {
        adj[a][degree[a] as usize] = b as u32;
        adj[b][degree[b] as usize] = a as u32;
        degree[a] += 1;
        degree[b] += 1;
        uf.union(a, b);
    };

    // Main passes: stop early once n-1 edges (a Hamiltonian path) exist.
    let mut progress = true;
    while progress && edges < n - 1 {
        progress = false;
        for &v in &by_coord {
            let v = v as usize;
            if degree[v] >= 2 || edges >= n - 1 {
                continue;
            }
            let root_v = uf.find(v);
            let pick = tree.nearest_filtered(inst.point(v), |c| {
                c == v || degree[c] >= 2 || uf.find(c) == root_v
            });
            if let Some(w) = pick {
                add_edge(v, w, &mut degree, &mut adj, &mut uf);
                edges += 1;
                progress = true;
            }
        }
    }

    // Stitch remaining fragments: connect endpoints (degree < 2) of
    // distinct components nearest-first until one Hamiltonian path
    // remains, then close the cycle implicitly by the walk below.
    while edges < n - 1 {
        // Pick any endpoint and its nearest endpoint in another component.
        let v = (0..n).find(|&c| degree[c] < 2).expect("endpoint must exist");
        let root_v = uf.find(v);
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for (c, &deg_c) in degree.iter().enumerate() {
            if c != v && deg_c < 2 && uf.find(c) != root_v {
                let d = inst.dist(v, c);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
        }
        add_edge(v, best, &mut degree, &mut adj, &mut uf);
        edges += 1;
    }

    // Walk the Hamiltonian path into a tour order. Find one endpoint.
    let start = (0..n).find(|&c| degree[c] == 1).unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut prev = u32::MAX;
    let mut cur = start as u32;
    loop {
        order.push(cur);
        let a = adj[cur as usize];
        let next = if a[0] != prev && a[0] != u32::MAX {
            a[0]
        } else {
            a[1]
        };
        if next == u32::MAX || order.len() == n {
            break;
        }
        prev = cur;
        cur = next;
    }
    debug_assert_eq!(order.len(), n);
    Tour::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn produces_valid_tour() {
        for n in [10, 57, 200] {
            let inst = generate::uniform(n, 10_000.0, n as u64);
            let t = quick_boruvka(&inst);
            assert!(t.is_valid(), "n={n}");
        }
    }

    #[test]
    fn quality_beats_random_substantially() {
        let inst = generate::uniform(300, 10_000.0, 9);
        let qb = quick_boruvka(&inst).length(&inst);
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1);
        let rand_len = Tour::random(300, &mut rng).length(&inst);
        assert!(
            (qb as f64) < 0.5 * rand_len as f64,
            "QB {qb} vs random {rand_len}"
        );
    }

    #[test]
    fn works_on_clustered_data() {
        let inst = generate::clustered(150, 100_000.0, 5, 1000.0, 2);
        let t = quick_boruvka(&inst);
        assert!(t.is_valid());
    }

    #[test]
    fn works_on_grid() {
        let inst = generate::grid_known_optimum(8, 8, 100.0);
        let t = quick_boruvka(&inst);
        assert!(t.is_valid());
        // QB on a grid should be within 2x of optimal.
        assert!(t.length(&inst) <= 2 * inst.known_optimum().unwrap());
    }
}
