//! # lk
//!
//! The Lin-Kernighan family of TSP heuristics, re-implemented from
//! scratch following the architecture of Applegate, Cook & Rohe's
//! `linkern` (the engine the paper wraps):
//!
//! - [`construct`] — initial tours: **Quick-Borůvka** (the paper's
//!   default, §2.1), nearest-neighbor, greedy edge matching, and a
//!   space-filling-curve order.
//! - [`two_opt`] / [`or_opt`] / [`three_opt`] — classic neighborhood
//!   searches with candidate lists and don't-look bits.
//! - [`lin_kernighan`] — the variable-depth LK search.
//! - [`kick`] — the four double-bridge kicking strategies of §2.1:
//!   Random, Geometric, Close, Random-walk.
//! - [`candidates`] — candidate-list construction for the engine:
//!   k-NN, Helsgaun α-nearness, or a hybrid of the two.
//! - [`chained`] — the Chained Lin-Kernighan driver (kick → re-optimize
//!   → accept/revert), with time / kick / target-length budgets and
//!   convergence traces.
//! - [`lkh_lite`] — an LK steered by α-nearness candidate lists
//!   (stand-in for Helsgaun's LKH in the paper's Table 2).
//! - [`multilevel`] — Walshaw-style multilevel coarsening around CLK.
//! - [`tour_merge`] — union-graph tour merging in the spirit of Cook &
//!   Seymour.
//! - [`shard`] — divide-and-optimize sharding: spatial partition,
//!   per-shard CLK, boundary stitching, and windowed seam refinement
//!   for instances beyond one node's working set.
//!
//! All randomness is injected through explicit RNGs; all searches are
//! allocation-free on their hot paths (buffers live in [`Optimizer`]).

pub mod budget;
pub mod candidates;
pub mod chained;
pub mod construct;
pub mod kick;
pub mod lin_kernighan;
pub mod lkh_lite;
pub mod multilevel;
pub mod or_opt;
pub mod search;
pub mod shard;
pub mod three_opt;
pub mod tour_merge;
pub mod two_opt;

pub use budget::{Budget, Stopwatch, Trace};
pub use candidates::{build_candidate_lists, CandidateKind};
pub use chained::{ChainedLk, ChainedLkConfig, ClkEngine, ClkResult};
pub use kick::{Kick, KickStrategy};
pub use lin_kernighan::LkConfig;
pub use search::Optimizer;
pub use shard::{shard_solve, ShardConfig, ShardSolveResult, ShardStats};
