//! Sequential 3-opt, expressed as a depth-limited Lin-Kernighan search.
//!
//! A chain of two sequential edge exchanges touches exactly three tour
//! edges, so LK with `max_depth = 2` searches precisely the sequential
//! subset of the 3-opt neighborhood (plus plain 2-opt at depth 1) —
//! the same restriction `linkern` and LKH make, since non-sequential
//! 3-opt moves are rare and expensive to enumerate.

use tsp_core::TourOps;

use crate::lin_kernighan::{lk_pass, LinKernighan, LkConfig};
use crate::search::Optimizer;

/// Run sequential 3-opt to local optimality. Returns the total gain.
pub fn three_opt<T: TourOps>(opt: &mut Optimizer<'_>, tour: &mut T) -> i64 {
    let mut lk = LinKernighan::new(LkConfig::three_opt());
    opt.activate_all();
    lk_pass(&mut lk, opt, tour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use tsp_core::{generate, NeighborLists, Tour};

    #[test]
    fn improves_and_accounts_exactly() {
        let inst = generate::uniform(150, 10_000.0, 61);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut tour = Tour::random(150, &mut rng);
        let before = tour.length(&inst);
        let mut opt = Optimizer::new(&inst, &nl);
        let gain = three_opt(&mut opt, &mut tour);
        assert!(gain > 0);
        assert!(tour.is_valid());
        assert_eq!(tour.length(&inst), before - gain);
    }

    #[test]
    fn at_least_as_good_as_two_opt() {
        let inst = generate::uniform(120, 10_000.0, 62);
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let start = Tour::random(120, &mut rng);

        let mut a = start.clone();
        let mut opt_a = Optimizer::new(&inst, &nl);
        crate::two_opt::two_opt(&mut opt_a, &mut a);

        let mut b = start.clone();
        let mut opt_b = Optimizer::new(&inst, &nl);
        three_opt(&mut opt_b, &mut b);
        // 3-opt explores a superset of 2-opt moves from the same start;
        // first-improvement ordering can differ, so compare with a small
        // tolerance.
        assert!(
            (b.length(&inst) as f64) <= 1.03 * a.length(&inst) as f64,
            "3-opt {} much worse than 2-opt {}",
            b.length(&inst),
            a.length(&inst)
        );
    }
}
