//! lk-crate integration tests: construction → local search → chained
//! kicks as one pipeline, across all generator families.

use lk::construct::{construct, Construction};
use lk::lin_kernighan::{lin_kernighan, LinKernighan, LkConfig};
use lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy, Optimizer};
use rand::{rngs::SmallRng, SeedableRng};
use tsp_core::{generate, Instance, NeighborLists};

fn families() -> Vec<Instance> {
    vec![
        generate::uniform(200, 100_000.0, 1),
        generate::clustered_dimacs(200, 2),
        generate::drill_plate(200, 3),
        generate::pcb_like(200, 4),
        generate::road_like(200, 5),
        generate::grid_known_optimum(14, 14, 100.0),
    ]
}

/// LK improves every construction on every family, with exact
/// accounting.
#[test]
fn lk_improves_every_construction_on_every_family() {
    for inst in families() {
        let nl = NeighborLists::build(&inst, 8);
        let mut rng = SmallRng::seed_from_u64(7);
        for which in [
            Construction::QuickBoruvka,
            Construction::NearestNeighbor,
            Construction::Greedy,
            Construction::SpaceFilling,
            Construction::Random,
        ] {
            let mut tour = construct(&inst, which, &mut rng);
            let before = tour.length(&inst);
            let mut opt = Optimizer::new(&inst, &nl);
            let mut lk = LinKernighan::new(LkConfig::default());
            let gain = lin_kernighan(&mut lk, &mut opt, &mut tour);
            assert!(tour.is_valid(), "{} / {which:?}", inst.name());
            assert_eq!(
                tour.length(&inst),
                before - gain,
                "{} / {which:?}: gain accounting broken",
                inst.name()
            );
            assert!(gain >= 0);
        }
    }
}

/// Chained LK's best length is monotone in the kick budget (same
/// seed): more kicks never end worse, because worse trials are
/// rejected.
#[test]
fn clk_monotone_in_kick_budget() {
    let inst = generate::clustered_dimacs(300, 9);
    let nl = NeighborLists::build(&inst, 10);
    let mut prev = i64::MAX;
    for kicks in [0u64, 50, 200, 800] {
        let cfg = ChainedLkConfig {
            seed: 4,
            ..Default::default()
        };
        let mut engine = ChainedLk::new(&inst, &nl, cfg);
        let len = engine.run(&Budget::kicks(kicks)).length;
        assert!(
            len <= prev,
            "budget {kicks}: {len} worse than smaller budget's {prev}"
        );
        prev = len;
    }
}

/// CLK solves a family of grids to optimality within generous kick
/// budgets (the Table 3 mechanism at unit scale).
#[test]
fn clk_solves_grids() {
    for (w, h) in [(6usize, 6usize), (8, 8), (10, 10)] {
        let inst = generate::grid_known_optimum(w, h, 100.0);
        let nl = NeighborLists::build(&inst, 8);
        let opt = inst.known_optimum().unwrap();
        let mut solved = false;
        for seed in 0..3u64 {
            let cfg = ChainedLkConfig {
                seed,
                ..Default::default()
            };
            let mut engine = ChainedLk::new(&inst, &nl, cfg);
            let res = engine.run(&Budget::kicks(4000).with_target(opt));
            if res.length == opt {
                solved = true;
                break;
            }
        }
        assert!(solved, "no seed solved the {w}x{h} grid");
    }
}

/// The four kick strategies all keep the accept/revert contract: the
/// running best never worsens across chained iterations.
#[test]
fn chain_step_never_worsens() {
    let inst = generate::uniform(250, 100_000.0, 10);
    let nl = NeighborLists::build(&inst, 10);
    for strategy in KickStrategy::ALL {
        let cfg = ChainedLkConfig {
            kick: strategy,
            seed: 11,
            ..Default::default()
        };
        let mut engine = ChainedLk::new(&inst, &nl, cfg);
        let mut tour = engine.construct_tour();
        engine.optimize(&mut tour);
        let mut best = tour.length(&inst);
        for _ in 0..40 {
            let new_best = engine.chain_step(&mut tour, best);
            assert!(new_best <= best, "{strategy:?} worsened the best");
            assert_eq!(tour.length(&inst), new_best, "{strategy:?} misreported");
            best = new_best;
        }
    }
}

/// Multilevel and plain CLK agree within a small factor; multilevel
/// does not produce garbage on clustered data (the coarsening edge
/// case the paper's related-work section flags for Bachem/Wottawa).
#[test]
fn multilevel_quality_sane_on_clusters() {
    let inst = generate::clustered(400, 1_000_000.0, 6, 10_000.0, 12);
    let nl = NeighborLists::build(&inst, 10);
    let ml = lk::multilevel::multilevel_clk(&inst, &lk::multilevel::MultilevelConfig::default(), 5);
    let mut engine = ChainedLk::new(
        &inst,
        &nl,
        ChainedLkConfig {
            seed: 5,
            ..Default::default()
        },
    );
    let clk = engine.run(&Budget::kicks(100));
    assert!(
        (ml.length as f64) < 1.2 * clk.length as f64,
        "multilevel {} vs CLK {}",
        ml.length,
        clk.length
    );
}
