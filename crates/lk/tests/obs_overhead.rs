//! ISSUE acceptance criterion: the observability layer must cost less
//! than 2% on a fixed-seed CLK run.
//!
//! The comparison is runtime-attached (`Obs::for_node` vs
//! `Obs::disabled()`) in the same binary, which is *stricter* than the
//! feature gate: a disabled handle still pays the `Option` checks that
//! the `--no-default-features` build compiles out entirely. Timing
//! uses min-of-N with alternating order so scheduler noise and thermal
//! drift hit both variants equally.

use std::time::{Duration, Instant};

use lk::{Budget, ChainedLk, ChainedLkConfig};
use obs_api::Obs;
use tsp_core::{generate, NeighborLists};

const N_CITIES: usize = 400;
const KICKS: u64 = 600;
const ROUNDS: usize = 5;

fn run_once(inst: &tsp_core::Instance, nl: &NeighborLists, obs: Obs) -> (Duration, i64) {
    let cfg = ChainedLkConfig {
        seed: 42,
        ..Default::default()
    };
    let mut engine = ChainedLk::new(inst, nl, cfg);
    engine.attach_obs(obs);
    let start = Instant::now();
    let res = engine.run(&Budget::kicks(KICKS));
    (start.elapsed(), res.length)
}

/// Instrumentation must not perturb the search: same seed, same tour,
/// with and without a live obs handle.
#[test]
fn obs_does_not_change_the_search_trajectory() {
    let inst = generate::uniform(N_CITIES, 100_000.0, 4242);
    let nl = NeighborLists::build(&inst, 10);
    let (_, len_off) = run_once(&inst, &nl, Obs::disabled());
    let (_, len_on) = run_once(&inst, &nl, Obs::for_node(0));
    assert_eq!(
        len_off, len_on,
        "attaching obs changed the fixed-seed search result"
    );
}

/// The headline bound: obs-on within 2% of obs-off. Min-of-N is the
/// standard way to strip scheduler noise from a bound like this — the
/// minimum approaches the true cost of the code, while means inherit
/// every descheduling spike.
#[test]
fn obs_overhead_under_two_percent() {
    if !obs_api::ENABLED {
        // Feature off: both variants are the same no-op code, so the
        // comparison would only measure scheduler noise.
        return;
    }
    let inst = generate::uniform(N_CITIES, 100_000.0, 4242);
    let nl = NeighborLists::build(&inst, 10);

    // Warm-up: touch caches, trigger lazy init, page in the code.
    run_once(&inst, &nl, Obs::disabled());
    run_once(&inst, &nl, Obs::for_node(0));

    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..ROUNDS {
        let (t_off, _) = run_once(&inst, &nl, Obs::disabled());
        let (t_on, _) = run_once(&inst, &nl, Obs::for_node(0));
        best_off = best_off.min(t_off);
        best_on = best_on.min(t_on);
    }

    let off = best_off.as_secs_f64();
    let on = best_on.as_secs_f64();
    let overhead = (on - off) / off;
    // Keep the workload long enough that 2% clears timer resolution;
    // if this fires, raise KICKS rather than loosening the bound.
    assert!(
        off > 0.05,
        "workload too short ({off:.3}s) for a meaningful 2% bound; raise KICKS"
    );
    assert!(
        on <= off * 1.02,
        "obs overhead {:.2}% exceeds the 2% budget (off={off:.3}s on={on:.3}s)",
        overhead * 100.0
    );
}
