//! Property tests for the divide-and-optimize pipeline: partition →
//! per-shard CLK → stitch → seam refinement must always yield a valid
//! permutation whose reported length recomputes exactly under the
//! metric, the whole pipeline must be bit-stable under a fixed seed,
//! and the one-shard configuration must collapse to the unsharded
//! engine bit-for-bit.

use proptest::prelude::*;
use tsp_core::generate;

use lk::shard::{shard_solve, ShardConfig};
use lk::{Budget, ClkEngine};

/// A fast pipeline config: tiny kick budgets, small refinement windows.
fn cfg(shards: usize, seed: u64) -> ShardConfig {
    let mut c = ShardConfig {
        shards,
        kicks_per_shard: 5,
        window: 48,
        ..ShardConfig::default()
    };
    c.clk.seed = seed;
    c
}

/// Recompute a cyclic order's length directly from the metric.
fn cycle_length(inst: &tsp_core::Instance, order: &[u32]) -> i64 {
    let mut len = 0i64;
    for i in 0..order.len() {
        len += inst.dist(order[i] as usize, order[(i + 1) % order.len()] as usize);
    }
    len
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partition → solve → stitch yields a valid permutation and the
    /// reported length is exactly the recomputed cycle length.
    #[test]
    fn pipeline_yields_valid_permutation_with_exact_length(
        n in 16usize..400,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed);
        let res = shard_solve(&inst, &cfg(shards, seed));
        prop_assert!(res.tour.is_valid(), "not a permutation");
        prop_assert_eq!(res.length, cycle_length(&inst, res.tour.order()));
        prop_assert_eq!(res.length, res.stats.stitched_length - res.stats.refine_gain);
    }

    /// The pipeline is a pure function of (instance, config).
    #[test]
    fn fixed_seed_rerun_is_bit_identical(
        n in 16usize..300,
        shards in 2usize..7,
        seed in any::<u64>(),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed);
        let c = cfg(shards, seed);
        let a = shard_solve(&inst, &c);
        let b = shard_solve(&inst, &c);
        prop_assert_eq!(a.tour.order(), b.tour.order());
        prop_assert_eq!(a.length, b.length);
    }

    /// One shard means no partition, no stitch, no seams: exactly the
    /// plain engine under the same seed and budget.
    #[test]
    fn one_shard_is_bit_identical_to_unsharded_engine(
        n in 16usize..300,
        seed in any::<u64>(),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed);
        let c = cfg(1, seed);
        let sharded = shard_solve(&inst, &c);
        let nl = c.clk.build_neighbors(&inst);
        let mut engine = ClkEngine::auto(&inst, &nl, c.clk.clone());
        let plain = engine.run(&Budget::kicks(c.kicks_per_shard));
        prop_assert_eq!(sharded.tour.order(), plain.tour.order());
        prop_assert_eq!(sharded.length, plain.length);
    }
}
