//! Property tests for the representation-generic search substrate:
//! identical randomized traces of flips, Or-opt relocations, and
//! double-bridge kicks driven purely through [`TourOps`] must leave the
//! array tour and the two-level list on the *same directed cycle* (the
//! canonical linearizations and lengths are compared exactly, not just
//! as undirected edge sets), and the candidate-list distance cache must
//! agree with the metric everywhere.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use tsp_core::{generate, NeighborLists, Tour, TourOps, TwoLevelList};

use lk::kick::kick;
use lk::search::{or_opt_move_by_edges, two_opt_by_edges};
use lk::{Budget, ChainedLk, ChainedLkConfig, KickStrategy};

/// Both representations of the same random starting permutation.
fn both_reps(n: usize, seed: u64) -> (Tour, TwoLevelList) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tour = Tour::random(n, &mut rng);
    let tl = TwoLevelList::from_tour(&tour);
    (tour, tl)
}

/// Exact directed-cycle equality via the canonical linearization.
fn assert_lockstep(inst: &tsp_core::Instance, tour: &Tour, tl: &TwoLevelList) {
    assert_eq!(
        TourOps::to_order(tour),
        TourOps::to_order(tl),
        "directed cycles diverged"
    );
    assert_eq!(tour.tour_length(inst), tl.tour_length(inst));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary flip traces keep both representations on the same
    /// directed cycle.
    #[test]
    fn flip_traces_stay_in_lockstep(
        n in 8usize..200,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xA5);
        let (mut tour, mut tl) = both_reps(n, seed);
        for (ra, rb) in ops {
            let a = ra as usize % n;
            let b = rb as usize % n;
            if a == b {
                continue;
            }
            tl.flip(a, b);
            TourOps::flip(&mut tour, a, b);
        }
        prop_assert!(tl.check_invariants());
        assert_lockstep(&inst, &tour, &tl);
    }

    /// 2-opt moves expressed as edge pairs (the LK step primitive)
    /// agree across representations.
    #[test]
    fn two_opt_by_edges_traces_agree(
        n in 8usize..150,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..25),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xB6);
        let (mut tour, mut tl) = both_reps(n, seed);
        for (ra, rb) in ops {
            let a = ra as usize % n;
            let b = rb as usize % n;
            // Remove (a, next a) and (b, next b): needs four distinct
            // endpoint cities.
            let na = tour.next(a);
            let nb = tour.next(b);
            if a == b || na == b || nb == a {
                continue;
            }
            two_opt_by_edges(&mut tour, (a, na), (b, nb));
            two_opt_by_edges(&mut tl, (a, na), (b, nb));
        }
        prop_assert!(tl.check_invariants());
        assert_lockstep(&inst, &tour, &tl);
    }

    /// Or-opt relocations (segment length 1-3, forward or reversed)
    /// agree across representations.
    #[test]
    fn or_opt_traces_agree(
        n in 12usize..150,
        seed in any::<u64>(),
        ops in prop::collection::vec(
            (any::<u32>(), 1usize..4, any::<u32>(), any::<bool>()),
            1..20,
        ),
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xC7);
        let (mut tour, mut tl) = both_reps(n, seed);
        for (rs, seg_len, rc, reversed) in ops {
            let s = rs as usize % n;
            // Walk the segment and its flanks on the current cycle.
            let mut e = s;
            for _ in 1..seg_len {
                e = tour.next(e);
            }
            let p = tour.prev(s);
            let q = tour.next(e);
            let c = rc as usize % n;
            let d = tour.next(c);
            // Validity: c outside the segment and not p; the no-op and
            // whole-tour cases are skipped.
            let mut in_seg = false;
            let mut walk = s;
            for _ in 0..seg_len {
                in_seg |= walk == c;
                walk = tour.next(walk);
            }
            if in_seg || c == p || p == q || p == e || (c == q && d == p) {
                continue;
            }
            or_opt_move_by_edges(&mut tour, s, e, p, q, c, d, reversed);
            or_opt_move_by_edges(&mut tl, s, e, p, q, c, d, reversed);
        }
        prop_assert!(tl.check_invariants());
        assert_lockstep(&inst, &tour, &tl);
    }

    /// Full kicks (selection + double bridge) driven by identical RNGs
    /// produce identical cities, deltas, and cycles on both
    /// representations.
    #[test]
    fn kick_traces_agree(
        n in 16usize..200,
        seed in any::<u64>(),
        strategy_ix in 0usize..4,
        kicks in 1usize..8,
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xD8);
        let nl = NeighborLists::build(&inst, 8);
        let strategy = KickStrategy::ALL[strategy_ix];
        let (mut tour, mut tl) = both_reps(n, seed);
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 0x1234);
        let mut rng_b = SmallRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..kicks {
            let ka = kick(strategy, &inst, &mut tour, &nl, &mut rng_a);
            let kb = kick(strategy, &inst, &mut tl, &nl, &mut rng_b);
            match (ka, kb) {
                (Some(ka), Some(kb)) => {
                    prop_assert_eq!(ka.cities, kb.cities);
                    prop_assert_eq!(ka.delta, kb.delta);
                }
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }
        prop_assert!(tl.check_invariants());
        assert_lockstep(&inst, &tour, &tl);
    }
}

proptest! {
    // Full CLK runs are comparatively expensive; a few cases suffice on
    // top of the per-primitive traces above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Whole Chained-LK runs (construction, LK passes, kicks,
    /// accept/reject) are bit-identical across representations.
    #[test]
    fn chained_lk_runs_agree(
        n in 40usize..160,
        seed in any::<u64>(),
        kicks in 5u64..25,
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xE9);
        let nl = NeighborLists::build(&inst, 8);
        let cfg = ChainedLkConfig {
            seed,
            ..Default::default()
        };
        let budget = Budget::kicks(kicks);
        let ra = ChainedLk::new(&inst, &nl, cfg.clone()).run_rep::<Tour>(&budget);
        let rb = ChainedLk::new(&inst, &nl, cfg).run_rep::<TwoLevelList>(&budget);
        prop_assert_eq!(ra.length, rb.length);
        prop_assert_eq!(ra.kicks, rb.kicks);
        prop_assert_eq!(TourOps::to_order(&ra.tour), TourOps::to_order(&rb.tour));
    }

    /// Speculative parallel kicks keep the cross-representation and
    /// fixed-(seed, W) determinism contracts: both representations
    /// produce the same run, and repeating a run reproduces it exactly.
    #[test]
    fn parallel_chained_lk_runs_agree(
        n in 40usize..160,
        seed in any::<u64>(),
        workers in 2usize..5,
    ) {
        let inst = generate::uniform(n, 10_000.0, seed ^ 0xD7);
        let nl = NeighborLists::build(&inst, 8);
        let cfg = ChainedLkConfig {
            seed,
            kick_workers: workers,
            ..Default::default()
        };
        let budget = Budget::kicks(24);
        let ra = ChainedLk::new(&inst, &nl, cfg.clone()).run_rep::<Tour>(&budget);
        let rb = ChainedLk::new(&inst, &nl, cfg.clone()).run_rep::<TwoLevelList>(&budget);
        let rc = ChainedLk::new(&inst, &nl, cfg).run_rep::<Tour>(&budget);
        prop_assert_eq!(ra.length, rb.length);
        prop_assert_eq!(ra.kicks, rb.kicks);
        prop_assert_eq!(TourOps::to_order(&ra.tour), TourOps::to_order(&rb.tour));
        prop_assert_eq!(ra.length, rc.length);
        prop_assert_eq!(TourOps::to_order(&ra.tour), TourOps::to_order(&rc.tour));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The CSR distance cache in the candidate lists is exactly the
    /// metric: `dists_of(c)[i] == dist(c, of(c)[i])` for every slot.
    #[test]
    fn cached_candidate_distances_match_metric(
        n in 8usize..400,
        k in 2usize..12,
        seed in any::<u64>(),
    ) {
        let inst = generate::uniform(n, 100_000.0, seed ^ 0xF1);
        let nl = NeighborLists::build(&inst, k);
        for c in 0..n {
            let (cands, dists) = nl.of_with_dists(c);
            prop_assert_eq!(cands.len(), dists.len());
            prop_assert_eq!(dists, nl.dists_of(c));
            for (i, &nb) in cands.iter().enumerate() {
                prop_assert_eq!(dists[i], inst.dist(c, nb as usize));
            }
        }
    }
}
