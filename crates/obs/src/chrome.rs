//! Chrome trace-event JSON export: turn a merged event timeline into
//! a file that <https://ui.perfetto.dev> (or `chrome://tracing`) opens
//! directly.
//!
//! Mapping:
//!
//! - Span events (those carrying a `dur_ns` field, i.e. recorded by
//!   [`crate::Span`]) become complete events (`"ph":"X"`) with `ts`
//!   placed at the span's *start* (`t_ns - dur_ns`).
//! - Everything else becomes an instant event (`"ph":"i"`, thread
//!   scope).
//!
//! Each node maps to one `pid` (Perfetto renders one track group per
//! process), and all remaining fields ride along in `args`, so a span
//! correlated with a broadcast id (`bcast`) can be found on every node
//! it visited with Perfetto's query `select * from args where
//! key = 'args.bcast'` — or just the flow of identical `bcast` values
//! across tracks.
//!
//! Timestamps are microseconds (the trace-event unit); callers that
//! merged timelines from several machines should first apply
//! [`crate::align_timeline`] with the estimated per-node clock
//! offsets, otherwise each node's track starts at its own epoch.

use std::fmt::Write as _;

use crate::event::{json_string, Event, Value};

/// Render `events` as a Chrome trace-event JSON document (the
/// "JSON array" flavor: a single top-level array, streamable and
/// accepted by Perfetto and `chrome://tracing`).
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        write_trace_event(&mut out, e);
    }
    out.push_str("\n]\n");
    out
}

fn write_trace_event(out: &mut String, e: &Event) {
    let dur_ns = e.field_u64("dur_ns");
    out.push_str("{\"name\":");
    json_string(out, &e.kind);
    let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.node, e.node);
    match dur_ns {
        Some(dur) => {
            let ts_us = e.t_ns.saturating_sub(dur) as f64 / 1e3;
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{:.3}",
                dur as f64 / 1e3
            );
        }
        None => {
            let _ = write!(
                out,
                ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3}",
                e.t_ns as f64 / 1e3
            );
        }
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in &e.fields {
        if k == "dur_ns" {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json_string(out, k);
        out.push(':');
        match v {
            Value::U(x) => {
                let _ = write!(out, "{x}");
            }
            Value::I(x) => {
                let _ = write!(out, "{x}");
            }
            Value::F(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::B(x) => out.push_str(if *x { "true" } else { "false" }),
            Value::S(x) => json_string(out, x),
        }
    }
    // seq rides along so a trace stays diffable against the JSONL log.
    if !first {
        out.push(',');
    }
    let _ = write!(out, "\"seq\":{}", e.seq);
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(node: u32, t_ns: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) -> Event {
        Event {
            t_ns,
            node,
            seq: 0,
            kind: Cow::Borrowed(kind),
            fields: fields
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v))
                .collect(),
        }
    }

    #[test]
    fn spans_become_complete_events_and_instants_stay_instant() {
        let events = vec![
            ev(
                0,
                5_000,
                "clk.call",
                vec![
                    ("span", Value::U(7)),
                    ("parent", Value::U(0)),
                    ("dur_ns", Value::U(4_000)),
                    ("bcast", Value::U(0xAB)),
                ],
            ),
            ev(1, 6_000, "node.adopt", vec![("tour_id", Value::U(0xAB))]),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        // Span: ph X, ts at start (5000-4000 ns = 1 µs), dur 4 µs.
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1.000"), "{json}");
        assert!(json.contains("\"dur\":4.000"), "{json}");
        assert!(json.contains("\"bcast\":171"), "{json}");
        // Instant event from node 1.
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
        // dur_ns is folded into ph/dur, not duplicated in args.
        assert!(!json.contains("dur_ns"), "{json}");
    }

    #[test]
    fn output_is_parseable_flat_json() {
        // Reuse the JSONL parser to sanity-check each emitted object
        // (they are flat, so the same grammar applies).
        let events = vec![ev(2, 10, "x", vec![("s", Value::S("a\"b".into()))])];
        let json = chrome_trace_json(&events);
        let inner = json.trim().trim_start_matches('[').trim_end_matches(']');
        for obj in inner.split('\n').filter(|l| !l.trim().is_empty()) {
            let obj = obj.trim().trim_end_matches(',');
            // args is nested: flatten check just ensures braces balance.
            assert_eq!(
                obj.matches('{').count(),
                obj.matches('}').count(),
                "unbalanced braces in {obj}"
            );
        }
    }
}
