//! # obs
//!
//! The observability spine of the workspace: a vendor-free stand-in
//! for `tracing` + `prometheus` (this build environment is offline, so
//! like the PR-1 transport stand-ins everything here is written from
//! scratch against `std`).
//!
//! Three layers, one handle:
//!
//! - [`metrics`] — a lock-free registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s, with
//!   [`MetricsSnapshot`] merge for cross-node aggregation and a
//!   Prometheus text exposition writer.
//! - [`event`] — per-node ring-buffered structured [`Event`]s
//!   (`t_ns`, `node`, `kind`, fields) with a JSONL sink and parser.
//! - [`Obs`] — the per-node handle the search and P2P layers carry:
//!   cheap to clone, resolves metric handles once, stamps events with
//!   nanoseconds since creation.
//!
//! ## Feature gating
//!
//! The `enabled` feature (default-on, forwarded from each consumer
//! crate's `obs` feature) gates everything with measurable cost: the
//! event ring, histograms, and timers all compile to no-ops when it is
//! off. Counters and gauges stay live in both modes because algorithm
//! results (`NodeResult::broadcasts`, the message statistics of §4)
//! are derived from them — they are part of the algorithm's contract,
//! and each is a single relaxed atomic add.
//!
//! ```
//! use obs::{Obs, Value};
//!
//! let obs = Obs::for_node(3);
//! let calls = obs.counter("clk.calls");
//! let ns = obs.histogram("clk.call.ns");
//! let t = obs.timer();
//! calls.incr();
//! ns.observe(t.elapsed_ns());
//! obs.event("broadcast", &[("tour_id", Value::U(7)), ("len", Value::U(1234))]);
//! assert_eq!(obs.snapshot().counter("clk.calls"), 1);
//! ```

pub mod chrome;
pub mod event;
pub mod metrics;

/// Well-known event kinds and counter names of the lifecycle /
/// hub-election layer, shared between the emitting node driver and the
/// conformance tests (a typo'd string would silently assert on an
/// event that never fires).
pub mod kinds {
    /// A survivor won the deterministic election and claimed the hub
    /// role. Fields: `epoch`.
    pub const NODE_PROMOTE: &str = "node.promote";
    /// An accepted `HUB_CLAIM` changed this node's believed hub.
    /// Fields: `hub`, `epoch`.
    pub const NODE_HUB_CLAIM: &str = "node.hub_claim";
    /// A stale hub saw a newer claim and stepped down. Fields: `to`,
    /// `epoch`. Counter: `node.step_downs`.
    pub const NODE_STEP_DOWN: &str = "node.step_down";
    /// A claim was rejected by the epoch fence. Fields: `claimer`,
    /// `epoch`. Counter: `node.stale_claims`.
    pub const NODE_STALE_CLAIM: &str = "node.stale_claim";
    /// Fresh membership-log entries were gossiped to peers. Fields:
    /// `entries`, `peers`.
    pub const NODE_GOSSIP: &str = "node.gossip";
    /// The current hub's replica performed a REJOIN transition — it
    /// served the rejoin. Fields: `peer`. Counter:
    /// `node.hub_rejoins_served`.
    pub const NODE_HUB_REJOIN_SERVED: &str = "node.hub_rejoin_served";
    /// Counter: elections won by this node.
    pub const C_PROMOTIONS: &str = "node.promotions";
    /// Counter: newer claims that fenced this node out of the hub role.
    pub const C_STEP_DOWNS: &str = "node.step_downs";
    /// Counter: claims rejected as stale.
    pub const C_STALE_CLAIMS: &str = "node.stale_claims";
    /// Counter: rejoins served while holding the hub role.
    pub const C_HUB_REJOINS_SERVED: &str = "node.hub_rejoins_served";
    /// The stall detector fired: no improvement for the configured
    /// window of loop rounds. Fields: `rounds`, `best_len`. Counter:
    /// [`C_STALLS`].
    pub const CLK_STALL: &str = "clk.stall";
    /// Counter: stall-detector firings.
    pub const C_STALLS: &str = "clk.stalls";
    /// Counter: subregions solved by the sharded pipeline. Histograms:
    /// `shard.solve.ns`, `shard.stitch.ns`, `shard.refine.ns`.
    pub const C_SHARDS_SOLVED: &str = "shard.solved";
    /// Counter: distinct seam cities enqueued for windowed refinement.
    pub const C_SHARD_SEAM_CITIES: &str = "shard.seam_cities";
    /// Counter: total tour length recovered by seam refinement.
    pub const C_SHARD_REFINE_GAIN: &str = "shard.refine_gain";
    /// Counter: shard results rejected by the collector's validation
    /// (bad membership, wrong length, out-of-range shard id).
    pub const C_SHARD_REJECTS: &str = "shard.rejects";
    /// A job was admitted by the service scheduler. Fields: `job`,
    /// `client`, `worker`. Counter: [`C_SVC_ACCEPTED`].
    pub const SVC_ACCEPT: &str = "svc.accept";
    /// A job submission was rejected at admission (fairness ledger
    /// exhausted or malformed payload). Fields: `client`, `why`.
    /// Counter: [`C_SVC_REJECTED`].
    pub const SVC_REJECT: &str = "svc.reject";
    /// An accepted job reached a terminal state. Fields: `job`,
    /// `reason`, `len`. Counter: [`C_SVC_COMPLETED`].
    pub const SVC_DONE: &str = "svc.done";
    /// An in-flight job was reassigned to a surviving worker after its
    /// worker died, restored from the last streamed checkpoint.
    /// Fields: `job`, `from_worker`, `to_worker`. Counter:
    /// [`C_SVC_REASSIGNED`].
    pub const SVC_REASSIGN: &str = "svc.reassign";
    /// Counter: jobs submitted to the service (accepted or not).
    pub const C_SVC_SUBMITTED: &str = "svc.jobs_submitted";
    /// Counter: jobs admitted by the scheduler.
    pub const C_SVC_ACCEPTED: &str = "svc.jobs_accepted";
    /// Counter: submissions rejected at admission.
    pub const C_SVC_REJECTED: &str = "svc.jobs_rejected";
    /// Counter: jobs that reached a terminal `JobDone`.
    pub const C_SVC_COMPLETED: &str = "svc.jobs_completed";
    /// Counter: jobs whose terminal reason was a deadline expiry.
    pub const C_SVC_EXPIRED: &str = "svc.jobs_expired";
    /// Counter: jobs cancelled by their client.
    pub const C_SVC_CANCELLED: &str = "svc.jobs_cancelled";
    /// Counter: jobs reassigned after a worker death.
    pub const C_SVC_REASSIGNED: &str = "svc.jobs_reassigned";
    /// Counter: strictly-improving tour updates streamed to clients.
    pub const C_SVC_IMPROVEMENTS: &str = "svc.improvements";
}

use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

pub use chrome::chrome_trace_json;
pub use event::{parse_jsonl, write_jsonl, Event, EventRing, Value};
pub use metrics::{
    bucket_of, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, HIST_BUCKETS,
};

/// Whether the `enabled` feature is compiled in (events, histograms,
/// timers). Counters/gauges work regardless.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Default event-ring capacity per node.
pub const DEFAULT_EVENT_CAPACITY: usize = 16 * 1024;

#[derive(Debug)]
struct ObsInner {
    node: u32,
    registry: Registry,
    events: EventRing,
    start: Instant,
    /// Next span sequence number; span ids are `(node << 32) | seq`,
    /// unique across the cluster like broadcast ids.
    span_seq: std::sync::atomic::AtomicU64,
}

/// Per-node observability handle: a registry plus an event ring plus a
/// start instant. Cloning shares the underlying storage. A *disabled*
/// handle ([`Obs::disabled`]) carries no storage at all — every
/// operation on it (and on handles resolved from it) is a no-op, which
/// is what the overhead test compares against.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle that records nothing (all resolved metric handles are
    /// no-ops too).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A live handle for `node` with the default event capacity.
    pub fn for_node(node: u32) -> Self {
        Self::with_capacity(node, DEFAULT_EVENT_CAPACITY)
    }

    /// A live handle for `node` with an explicit event-ring capacity.
    pub fn with_capacity(node: u32, event_capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                node,
                registry: Registry::new(),
                events: EventRing::with_capacity(event_capacity),
                start: Instant::now(),
                span_seq: std::sync::atomic::AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// The node id (0 for a disabled handle).
    pub fn node(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.node)
    }

    /// Resolve (get-or-create) a counter handle. Do this once at
    /// attach time, not in a loop.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::noop, |i| i.registry.counter(name))
    }

    /// Resolve a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::noop, |i| i.registry.gauge(name))
    }

    /// Resolve a histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::noop, |i| i.registry.histogram(name))
    }

    /// Nanoseconds since this handle was created (0 when disabled or
    /// when the `enabled` feature is off).
    pub fn t_ns(&self) -> u64 {
        if !ENABLED {
            return 0;
        }
        self.inner
            .as_ref()
            .map_or(0, |i| i.start.elapsed().as_nanos() as u64)
    }

    /// Start a duration measurement. Reads the clock only when live
    /// and compiled in.
    pub fn timer(&self) -> Timer {
        if ENABLED && self.inner.is_some() {
            Timer(Some(Instant::now()))
        } else {
            Timer(None)
        }
    }

    /// Record a structured event, stamped with [`Obs::t_ns`].
    pub fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        if !ENABLED {
            return;
        }
        if let Some(i) = &self.inner {
            i.events.record(Event {
                t_ns: i.start.elapsed().as_nanos() as u64,
                node: i.node,
                // The ring stamps the real per-node sequence number.
                seq: 0,
                kind: Cow::Borrowed(kind),
                fields: fields
                    .iter()
                    .map(|(k, v)| (Cow::Borrowed(*k), v.clone()))
                    .collect(),
            });
        }
    }

    /// Snapshot the metrics registry (empty when disabled). When the
    /// event ring is compiled in, the ring's eviction count is exported
    /// as the `obs.events_dropped` counter, so overflow is visible in
    /// scrapes and merged cluster views, not only via the Rust API.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(i) = self.inner.as_ref() else {
            return MetricsSnapshot::default();
        };
        let mut snap = i.registry.snapshot();
        if ENABLED {
            snap.counters
                .insert("obs.events_dropped".to_string(), i.events.dropped());
        }
        snap
    }

    /// Copy out the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.events.events())
    }

    /// How many events were evicted because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.dropped())
    }

    /// Render the registry in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// Write the buffered events as JSONL.
    pub fn write_events_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_jsonl(w, &self.events())
    }

    /// Open a root span named `kind`. The span records one event on
    /// [`Span::end`] (or drop) carrying its id, parent id, duration,
    /// and optional broadcast-id correlation — see the [`chrome`]
    /// module for the Perfetto-loadable export. No-op (id 0) when this
    /// handle is disabled or the `enabled` feature is off.
    pub fn span(&self, kind: &'static str) -> Span {
        self.span_with_parent(kind, 0)
    }

    fn span_with_parent(&self, kind: &'static str, parent: u64) -> Span {
        if !ENABLED || self.inner.is_none() {
            return Span {
                obs: Obs::disabled(),
                kind,
                id: 0,
                parent: 0,
                bcast: None,
                t0_ns: 0,
                done: true,
            };
        }
        let i = self.inner.as_ref().expect("checked live above");
        let seq = i
            .span_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Span {
            obs: self.clone(),
            kind,
            id: ((i.node as u64) << 32) | (seq & 0xFFFF_FFFF),
            parent,
            bcast: None,
            t0_ns: self.t_ns(),
            done: false,
        }
    }
}

/// An open span from [`Obs::span`]: a named duration with an id, a
/// parent id (0 = root), and an optional broadcast-id correlation so
/// the same logical tour migration can be followed across nodes. The
/// span is recorded as a regular [`Event`] (kind = span name, fields
/// `span`, `parent`, `dur_ns`, and `bcast` when correlated) when
/// [`Span::end`] is called or the guard drops.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    kind: &'static str,
    id: u64,
    parent: u64,
    bcast: Option<u64>,
    t0_ns: u64,
    done: bool,
}

impl Span {
    /// This span's cluster-unique id (0 when observability is off).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Open a child span: same node, `parent` set to this span's id.
    pub fn child(&self, kind: &'static str) -> Span {
        self.obs.span_with_parent(kind, self.id)
    }

    /// Correlate this span with a broadcast id (`p2p::broadcast_id`):
    /// the exported trace groups spans sharing a `bcast` field across
    /// nodes, which is how a tour's hub-to-leaf migration is followed.
    pub fn correlate_broadcast(&mut self, bcast: u64) {
        self.bcast = Some(bcast);
    }

    /// Close the span, recording its event. Equivalent to dropping it,
    /// but explicit at call sites where the scope is not the lifetime.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur_ns = self.obs.t_ns().saturating_sub(self.t0_ns);
        let mut fields = vec![
            ("span", Value::U(self.id)),
            ("parent", Value::U(self.parent)),
            ("dur_ns", Value::U(dur_ns)),
        ];
        if let Some(b) = self.bcast {
            fields.push(("bcast", Value::U(b)));
        }
        self.obs.event(self.kind, &fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A pending duration measurement from [`Obs::timer`].
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Nanoseconds since the timer started (0 for a disabled timer).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    /// Observe the elapsed nanoseconds into `hist` (no-op when the
    /// timer is disabled, so the clock is never read twice for
    /// nothing).
    #[inline]
    pub fn observe_into(&self, hist: &Histogram) {
        if self.0.is_some() {
            hist.observe(self.elapsed_ns());
        }
    }
}

/// Merge many per-node event logs into one timeline sorted by
/// `(t_ns, node, seq)`. The full triple is a total order: two events
/// with the same timestamp — a coarse clock, or two nodes observing
/// the same instant — still land in one deterministic sequence (node
/// id first, then the per-ring emission order). Timestamps from
/// different nodes are each node's own monotonic clock; align them
/// first with [`align_timeline`] when cross-node offsets are known.
pub fn merge_timelines(per_node: &[Vec<Event>]) -> Vec<Event> {
    let mut all: Vec<Event> = per_node.iter().flatten().cloned().collect();
    all.sort_by_key(|e| (e.t_ns, e.node, e.seq));
    all
}

/// Shift event timestamps by per-node clock offsets: `offsets[node]`
/// is the signed nanosecond correction to *add* to that node's local
/// `t_ns` to land on the reference (hub) timeline. Nodes without an
/// entry are left untouched; corrected values clamp at 0.
pub fn align_timeline(events: &mut [Event], offsets: &std::collections::BTreeMap<u32, i64>) {
    for e in events.iter_mut() {
        if let Some(&off) = offsets.get(&e.node) {
            e.t_ns = (e.t_ns as i128 + off as i128).clamp(0, u64::MAX as i128) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let c = obs.counter("x");
        c.incr();
        assert_eq!(c.get(), 0);
        obs.event("e", &[]);
        assert!(obs.events().is_empty());
        assert_eq!(obs.t_ns(), 0);
        assert_eq!(obs.timer().elapsed_ns(), 0);
        assert!(obs.snapshot().counters.is_empty());
        assert!(!obs.is_live());
    }

    #[test]
    fn live_handle_counts_in_both_modes() {
        let obs = Obs::for_node(5);
        assert_eq!(obs.node(), 5);
        obs.counter("a").add(3);
        assert_eq!(obs.snapshot().counter("a"), 3);
        let text = obs.prometheus_text();
        assert!(text.contains("a 3"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn events_record_and_merge() {
        let a = Obs::with_capacity(0, 8);
        let b = Obs::with_capacity(1, 8);
        a.event("x", &[("v", Value::U(1))]);
        b.event("y", &[]);
        a.event("z", &[]);
        let merged = merge_timelines(&[a.events(), b.events()]);
        assert_eq!(merged.len(), 3);
        for w in merged.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns || w[0].node <= w[1].node);
        }
        assert_eq!(a.events_dropped(), 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn events_are_noops_when_disabled() {
        let a = Obs::for_node(0);
        a.event("x", &[]);
        assert!(a.events().is_empty());
        assert_eq!(a.t_ns(), 0);
        // Counters still work.
        a.counter("c").incr();
        assert_eq!(a.snapshot().counter("c"), 1);
    }

    /// Regression for the tie-breaking satellite: equal-`t_ns` events
    /// from different nodes (and several from the *same* node) must
    /// order deterministically by `(t_ns, node, seq)` regardless of
    /// input order.
    #[test]
    fn merge_timelines_breaks_ties_by_node_then_seq() {
        use std::borrow::Cow;
        let mk = |t_ns, node, seq, kind: &'static str| Event {
            t_ns,
            node,
            seq,
            kind: Cow::Borrowed(kind),
            fields: vec![],
        };
        // Same timestamp everywhere; shuffled input order.
        let a = vec![mk(100, 1, 1, "a1"), mk(100, 1, 0, "a0")];
        let b = vec![mk(100, 0, 5, "b5"), mk(100, 2, 0, "c0")];
        let merged = merge_timelines(&[a.clone(), b.clone()]);
        let kinds: Vec<&str> = merged.iter().map(|e| e.kind.as_ref()).collect();
        assert_eq!(kinds, ["b5", "a0", "a1", "c0"]);
        // Deterministic under any per-node input permutation.
        let merged2 = merge_timelines(&[b, a]);
        assert_eq!(merged, merged2);
    }

    #[test]
    fn align_timeline_applies_signed_offsets() {
        use std::borrow::Cow;
        use std::collections::BTreeMap;
        let mut events = vec![
            Event {
                t_ns: 1_000,
                node: 0,
                seq: 0,
                kind: Cow::Borrowed("x"),
                fields: vec![],
            },
            Event {
                t_ns: 1_000,
                node: 1,
                seq: 0,
                kind: Cow::Borrowed("y"),
                fields: vec![],
            },
        ];
        let mut offsets = BTreeMap::new();
        offsets.insert(1u32, -400i64);
        align_timeline(&mut events, &offsets);
        assert_eq!(events[0].t_ns, 1_000, "no offset entry: untouched");
        assert_eq!(events[1].t_ns, 600);
        // Underflow clamps at zero instead of wrapping.
        offsets.insert(1, -10_000);
        align_timeline(&mut events, &offsets);
        assert_eq!(events[1].t_ns, 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_record_ids_parents_and_broadcast_correlation() {
        let obs = Obs::for_node(3);
        let mut root = obs.span("clk.call");
        root.correlate_broadcast(0xBEEF);
        let root_id = root.id();
        assert_eq!(root_id >> 32, 3, "span id embeds the node");
        let child = root.child("clk.kick");
        let child_id = child.id();
        assert_ne!(child_id, root_id);
        child.end();
        root.end();
        let events = obs.events();
        assert_eq!(events.len(), 2, "one event per closed span");
        // Child closed first.
        assert_eq!(events[0].kind, "clk.kick");
        assert_eq!(events[0].field_u64("span"), Some(child_id));
        assert_eq!(events[0].field_u64("parent"), Some(root_id));
        assert_eq!(events[1].kind, "clk.call");
        assert_eq!(events[1].field_u64("parent"), Some(0));
        assert_eq!(events[1].field_u64("bcast"), Some(0xBEEF));
        assert!(events[1].field_u64("dur_ns").is_some());
    }

    #[test]
    fn disabled_spans_are_inert() {
        let obs = Obs::disabled();
        let s = obs.span("x");
        assert_eq!(s.id(), 0);
        s.end();
        assert!(obs.events().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn events_dropped_exported_as_counter() {
        let obs = Obs::with_capacity(0, 2);
        for _ in 0..5 {
            obs.event("tick", &[]);
        }
        assert_eq!(obs.events_dropped(), 3);
        assert_eq!(obs.snapshot().counter("obs.events_dropped"), 3);
        assert!(obs.prometheus_text().contains("obs_events_dropped 3"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timer_feeds_histogram() {
        let obs = Obs::for_node(0);
        let h = obs.histogram("ns");
        let t = obs.timer();
        std::hint::black_box(42);
        t.observe_into(&h);
        assert_eq!(h.snapshot().count, 1);
    }
}
