//! Structured events: per-node ring-buffered records with a JSONL
//! serializer and a matching parser (round-trip tested).
//!
//! Events are the "what happened when" side of observability — the
//! metrics registry answers *how much/how long*, the event log answers
//! *in which order*: a broadcast on node 3 at `t_ns = 120_000` followed
//! by a `recv` of the same `tour_id` on node 7 is exactly the
//! hub-to-leaf migration trace the paper's Figures 2–3 argue from.
//!
//! The ring is bounded: a runaway producer overwrites the oldest
//! records (and counts the overwrites) instead of growing without
//! limit. With the `enabled` feature off, [`EventRing::record`]
//! compiles to a no-op.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A field value. Non-negative integers normalize to `U` so that a
/// serialize → parse round trip is identity (JSON has one number
/// type).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U(u64),
    /// Negative integer (non-negative `I` normalizes to `U`).
    I(i64),
    /// Float.
    F(f64),
    /// Boolean.
    B(bool),
    /// String.
    S(String),
}

impl Value {
    fn normalized(self) -> Value {
        match self {
            Value::I(v) if v >= 0 => Value::U(v as u64),
            other => other,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v).normalized()
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::B(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::S(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::S(v)
    }
}

/// One structured record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the owning [`crate::Obs`] was created.
    pub t_ns: u64,
    /// Node id the event belongs to.
    pub node: u32,
    /// Per-ring emission sequence number, stamped by
    /// [`EventRing::record`]. Monotonic within one node's ring, so
    /// `(t_ns, node, seq)` is a total order even when a coarse clock
    /// assigns two events the same timestamp.
    pub seq: u64,
    /// Event kind, e.g. `broadcast`, `recv`, `restart`.
    pub kind: Cow<'static, str>,
    /// Named payload fields, in emission order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
}

impl Event {
    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Unsigned field lookup (also accepts a non-negative `I`).
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            Value::U(v) => Some(*v),
            Value::I(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Serialize as one JSON object (no trailing newline). Reserved
    /// keys `t_ns`, `node`, `seq`, `kind` come first, then the fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"node\":{},\"seq\":{},\"kind\":",
            self.t_ns, self.node, self.seq
        );
        json_string(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            json_string(&mut out, k);
            out.push(':');
            match v {
                Value::U(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::I(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::F(x) => {
                    // `{}` prints the shortest representation that
                    // round-trips exactly; NaN/inf are not valid JSON,
                    // so they are emitted as null and parse back as 0.
                    if x.is_finite() {
                        let _ = write!(out, "{x:?}");
                    } else {
                        out.push_str("null");
                    }
                }
                Value::B(x) => out.push_str(if *x { "true" } else { "false" }),
                Value::S(x) => json_string(&mut out, x),
            }
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line produced by [`Event::to_jsonl`] (a flat
    /// JSON object with number/string/bool/null values).
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let mut p = JsonParser::new(line);
        let pairs = p.object()?;
        let mut t_ns = None;
        let mut node = None;
        // Older logs predate the seq key; default to 0 on parse.
        let mut seq = 0;
        let mut kind = None;
        let mut fields = Vec::new();
        for (k, v) in pairs {
            match k.as_str() {
                "t_ns" => t_ns = Some(value_u64(&v).ok_or("t_ns not unsigned")?),
                "node" => node = Some(value_u64(&v).ok_or("node not unsigned")? as u32),
                "seq" => seq = value_u64(&v).ok_or("seq not unsigned")?,
                "kind" => match v {
                    Value::S(s) => kind = Some(s),
                    _ => return Err("kind not a string".into()),
                },
                _ => fields.push((Cow::Owned(k), v)),
            }
        }
        Ok(Event {
            t_ns: t_ns.ok_or("missing t_ns")?,
            node: node.ok_or("missing node")?,
            seq,
            kind: Cow::Owned(kind.ok_or("missing kind")?),
            fields,
        })
    }
}

fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U(x) => Some(*x),
        Value::I(x) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

/// Write a JSON string literal (quotes + escapes) into `out`.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal parser for the flat JSON objects this module emits.
struct JsonParser<'a> {
    s: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser { s: s.as_bytes(), at: 0 }
    }

    fn skip_ws(&mut self) {
        while self.at < self.s.len() && (self.s[self.at] as char).is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.at < self.s.len() && self.s[self.at] == c {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.at))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.at).copied()
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            out.push((key, val));
            match self.peek() {
                Some(b',') => {
                    self.at += 1;
                }
                Some(b'}') => {
                    self.at += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.at) else {
                return Err("unterminated string".into());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.at) else {
                        return Err("dangling escape".into());
                    };
                    self.at += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            self.at += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                b => {
                    // Find the full char starting at at-1.
                    let start = self.at - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self.s.get(start..end).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.at = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(Value::S(self.string()?)),
            b't' => self.literal("true", Value::B(true)),
            b'f' => self.literal("false", Value::B(false)),
            b'n' => self.literal("null", Value::U(0)),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.s[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.at;
        while self
            .s
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.at]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a number at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// A bounded ring of events. Single writer per node in practice, but
/// safe for concurrent use (one short mutex per record).
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<Event>,
    // Only read by `record`, which compiles out with the feature off.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    cap: usize,
    dropped: u64,
    // Next sequence number to stamp; counts all records ever made,
    // including later-evicted ones.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    next_seq: u64,
}

impl EventRing {
    /// Ring holding at most `cap` events (oldest evicted first).
    pub fn with_capacity(cap: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingInner {
                // Don't pre-reserve when the feature is off.
                buf: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                next_seq: 0,
            }),
        }
    }

    /// Append an event, stamping its `seq` with this ring's monotonic
    /// emission counter; evicts the oldest record when full. Compiled
    /// out when the `enabled` feature is off.
    pub fn record(&self, event: Event) {
        #[cfg(feature = "enabled")]
        {
            let mut event = event;
            let mut r = self.inner.lock().expect("event ring poisoned");
            event.seq = r.next_seq;
            r.next_seq += 1;
            if r.buf.len() == r.cap {
                r.buf.pop_front();
                r.dropped += 1;
            }
            r.buf.push_back(event);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = event;
    }

    /// Copy the buffered events out, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event ring poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Drain the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event ring poisoned")
            .buf
            .drain(..)
            .collect()
    }

    /// How many records were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event ring poisoned").buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serialize events as JSONL into any writer (one object per line).
pub fn write_jsonl<W: std::io::Write>(w: &mut W, events: &[Event]) -> std::io::Result<()> {
    for e in events {
        writeln!(w, "{}", e.to_jsonl())?;
    }
    Ok(())
}

/// Parse a JSONL document (ignoring blank lines) back into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Event::from_jsonl)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &'static str, fields: Vec<(&'static str, Value)>) -> Event {
        Event {
            t_ns: 123_456_789,
            node: 3,
            seq: 0,
            kind: Cow::Borrowed(kind),
            fields: fields
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v.normalized()))
                .collect(),
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_fields() {
        let e = ev(
            "broadcast",
            vec![
                ("tour_id", Value::U(0xDEAD_BEEF_0042)),
                ("len", Value::U(987_654)),
                ("delta", Value::I(-42)),
                ("frac", Value::F(0.125)),
                ("local", Value::B(true)),
                ("peer", Value::S("node \"7\"\n\\end".to_string())),
            ],
        );
        let line = e.to_jsonl();
        let back = Event::from_jsonl(&line).expect("parse back");
        assert_eq!(back, e);
    }

    #[test]
    fn jsonl_round_trip_extremes() {
        let e = ev(
            "edge",
            vec![
                ("zero", Value::U(0)),
                ("max", Value::U(u64::MAX)),
                ("min_i", Value::I(i64::MIN)),
                ("tiny", Value::F(1e-300)),
                ("unicode", Value::S("héllo ☃".to_string())),
            ],
        );
        let back = Event::from_jsonl(&e.to_jsonl()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Event::from_jsonl("").is_err());
        assert!(Event::from_jsonl("{\"t_ns\":1}").is_err()); // missing node/kind
        assert!(Event::from_jsonl("not json").is_err());
        assert!(Event::from_jsonl("{\"t_ns\":1,\"node\":0,\"kind\":7}").is_err());
    }

    #[test]
    fn jsonl_document_round_trip() {
        let events = vec![ev("a", vec![("x", Value::U(1))]), ev("b", vec![])];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = EventRing::with_capacity(3);
        for i in 0..5u64 {
            ring.record(ev("tick", vec![("i", Value::U(i))]));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let evs = ring.events();
        assert_eq!(evs[0].field_u64("i"), Some(2));
        assert_eq!(evs[2].field_u64("i"), Some(4));
        // Seq keeps counting across evictions: survivors are 2..=4.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn seq_survives_jsonl_round_trip() {
        let ring = EventRing::with_capacity(8);
        for _ in 0..3 {
            ring.record(ev("tick", vec![]));
        }
        let evs = ring.events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), [0, 1, 2]);
        let line = evs[2].to_jsonl();
        assert!(line.contains("\"seq\":2"), "{line}");
        assert_eq!(Event::from_jsonl(&line).unwrap(), evs[2]);
        // A pre-seq log line parses with seq defaulting to 0.
        let legacy = Event::from_jsonl("{\"t_ns\":5,\"node\":1,\"kind\":\"x\"}").unwrap();
        assert_eq!(legacy.seq, 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn ring_is_noop_when_disabled() {
        let ring = EventRing::with_capacity(3);
        ring.record(ev("tick", vec![]));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
