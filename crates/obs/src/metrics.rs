//! Lock-free metrics: counters, gauges, and fixed-bucket log2
//! histograms, collected in a [`Registry`].
//!
//! Design constraints (see DESIGN.md §8):
//!
//! - **Hot-path cost is one atomic RMW.** Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are resolved by name *once* at
//!   instrumentation-attach time; the LK inner loop never touches the
//!   registry map or a lock.
//! - **No vendored deps.** Everything is `std::sync::atomic` plus a
//!   `Mutex<BTreeMap>` that is only taken at registration and snapshot
//!   time.
//! - **Mergeable.** [`MetricsSnapshot`]s from different nodes merge by
//!   name (counters and histogram buckets add, gauges sum), which is
//!   how the distributed driver aggregates a whole network run.
//!
//! With the `enabled` feature off, [`Histogram::observe`] compiles to a
//! no-op; counters and gauges stay live because the algorithm's own
//! result records (e.g. `NodeResult::broadcasts`) read from them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `bit_width(v) == i`, i.e. bucket 0 holds only `v = 0`, bucket `i`
/// holds `2^(i-1) <= v < 2^i`. `u64::MAX` lands in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value: `0` for `0`, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter handle. Cloning is cheap (an
/// `Option<Arc>`); a handle detached from any registry (from
/// [`crate::Obs::disabled`]) is a no-op that reads zero.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (reads 0, ignores increments).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can go up and down (queue depths, live
/// peer counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram handle. `observe` is three relaxed
/// atomic adds — cheap enough for the LK inner loop — and compiles to
/// nothing when the `enabled` feature is off.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if let Some(h) = &self.0 {
            h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Snapshot the current bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => HistogramSnapshot {
                buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wraps only after ~580 years of ns).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]` —
    /// a log2-resolution estimate (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }
}

/// A named collection of metrics. Registration takes a short lock;
/// recording through the returned handles is lock-free.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramInner::new()));
        Histogram(Some(Arc::clone(cell)))
    }

    /// Copy every metric out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Histogram(Some(Arc::clone(v))).snapshot(),
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], mergeable across
/// nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge `other` into this snapshot: counters and histogram buckets
    /// add; gauges sum (a merged gauge is a network-wide total, e.g.
    /// total queued messages).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_default()
                .merge(v);
        }
    }

    /// The change since `base`: counters and histogram buckets
    /// subtract (saturating — a restarted node whose counters went
    /// backwards reports zero, not a huge wrap), gauges keep their
    /// current absolute value (a gauge *is* a point-in-time reading,
    /// so an ingester replaces rather than adds them). Shipping deltas
    /// instead of absolutes is what lets a hub add frames from many
    /// nodes into one live cluster registry without double-counting
    /// earlier shipments: for counters and histograms,
    /// `base.merge(&delta)` reconstructs `self`.
    pub fn delta(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(base.counter(k))))
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut d = h.clone();
                if let Some(b) = base.histograms.get(k) {
                    for (x, y) in d.buckets.iter_mut().zip(b.buckets.iter()) {
                        *x = x.saturating_sub(*y);
                    }
                    d.count = d.count.saturating_sub(b.count);
                    d.sum = d.sum.saturating_sub(b.sum);
                }
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render in the Prometheus text exposition format. Metric names
    /// are sanitized (`.` and `-` become `_`); histograms come out as
    /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 && i != 0 {
                    continue; // keep the exposition compact
                }
                cum += b;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 20) - 1), 20);
        assert_eq!(bucket_of(1 << 20), 21);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn counter_and_gauge_work_without_feature() {
        // Counters/gauges are live in BOTH feature modes (results
        // depend on them); this test must pass under
        // --no-default-features too.
        let reg = Registry::new();
        let c = reg.counter("x");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name -> same underlying cell.
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("q");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.incr();
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.observe(5);
        assert_eq!(h.snapshot().count, 0);
        let g = Gauge::noop();
        g.set(9);
        assert_eq!(g.get(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_observes_edge_values() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.sum, u64::MAX.wrapping_add(1).wrapping_add(0)); // 0+1+MAX wraps
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(u64::MAX));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn histogram_is_noop_when_disabled() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.observe(12345);
        assert_eq!(h.snapshot().count, 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_of_disjoint_snapshots() {
        let a = Registry::new();
        a.counter("only_a").add(2);
        a.histogram("ha").observe(3);
        let b = Registry::new();
        b.counter("only_b").add(5);
        b.gauge("gb").set(-1);
        b.histogram("hb").observe(1 << 40);

        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("only_a"), 2);
        assert_eq!(m.counter("only_b"), 5);
        assert_eq!(m.gauges["gb"], -1);
        assert_eq!(m.histogram("ha").unwrap().count, 1);
        assert_eq!(m.histogram("hb").unwrap().buckets[41], 1);
        // Merging the same names adds.
        let mut again = m.clone();
        again.merge(&m);
        assert_eq!(again.counter("only_a"), 4);
        assert_eq!(again.histogram("hb").unwrap().count, 2);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn quantile_estimates_from_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [1u64, 2, 2, 3, 100, 100, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        // Median falls in the bucket of 2..=3 (upper bound 3).
        assert_eq!(s.quantile(0.5), Some(3));
        assert!(s.quantile(0.99).unwrap() >= 1000);
        assert!((s.mean() - 1308.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_renders() {
        let reg = Registry::new();
        reg.counter("tcp.bytes_out").add(10);
        reg.gauge("tcp.queue-depth").set(3);
        reg.histogram("clk.call.ns").observe(5);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("# TYPE tcp_bytes_out counter"));
        assert!(text.contains("tcp_bytes_out 10"));
        assert!(text.contains("# TYPE tcp_queue_depth gauge"));
        assert!(text.contains("# TYPE clk_call_ns histogram"));
        assert!(text.contains("clk_call_ns_count"));
        assert!(text.contains("le=\"+Inf\""));
    }

    /// Every non-alphanumeric character maps to `_`, and the result is
    /// a valid Prometheus metric name even for hostile inputs.
    #[test]
    fn prometheus_sanitizes_metric_names() {
        let reg = Registry::new();
        reg.counter("node.clk-calls/total µ").add(1);
        reg.counter("0weird").add(2);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("# TYPE node_clk_calls_total__ counter"));
        assert!(text.contains("node_clk_calls_total__ 1"));
        // Sanitized output contains no characters outside [A-Za-z0-9_]
        // on metric lines (label values like +Inf are quoted).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsanitized name in {line:?}"
            );
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_monotone() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [0u64, 1, 2, 3, 5, 9, 1000, 1 << 40] {
            h.observe(v);
        }
        let text = reg.snapshot().prometheus_text();
        // Collect the bucket series in emission order.
        let mut uppers: Vec<f64> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("h_bucket{le=\"") {
                let (le, cnt) = rest.split_once("\"} ").unwrap();
                uppers.push(if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                });
                counts.push(cnt.parse().unwrap());
            }
        }
        assert!(uppers.len() >= 4, "expected several buckets:\n{text}");
        // `le` bounds strictly increase and end at +Inf.
        for w in uppers.windows(2) {
            assert!(w[0] < w[1], "le bounds not increasing: {uppers:?}");
        }
        assert_eq!(*uppers.last().unwrap(), f64::INFINITY);
        // Cumulative counts are monotone non-decreasing, and +Inf
        // equals the total observation count.
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "buckets not cumulative: {counts:?}");
        }
        assert_eq!(*counts.last().unwrap(), 8);
        assert!(text.contains("h_count 8"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn delta_subtracts_and_merge_reconstructs() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(10);
        g.set(5);
        h.observe(3);
        let base = reg.snapshot();
        c.add(7);
        g.set(-2);
        h.observe(3);
        h.observe(100);
        let now = reg.snapshot();
        let d = now.delta(&base);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.gauges["g"], -2, "gauges ship absolute values");
        assert_eq!(d.histogram("h").unwrap().count, 2);
        assert_eq!(d.histogram("h").unwrap().sum, 103);
        // Counter/histogram reconstruction: base + delta == now.
        let mut rebuilt = base.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt.counters, now.counters);
        assert_eq!(rebuilt.histograms, now.histograms);
        // A fresh registry (restart) deltas to zero, not to a wrap.
        let empty = MetricsSnapshot::default();
        let d2 = empty.delta(&now);
        assert!(d2.counters.is_empty());
    }

    #[test]
    fn snapshot_merge_is_commutative_on_totals() {
        let a = Registry::new();
        a.counter("c").add(1);
        let b = Registry::new();
        b.counter("c").add(9);
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
    }
}
