//! Latency injection: wrap any [`Transport`] and hold received
//! messages for a fixed delay before the node sees them.
//!
//! The paper claims communication costs are negligible because tours
//! are exchanged rarely (§4 prelude). This wrapper lets experiments
//! *test* that claim: run the same distributed configuration with
//! 0 ms / 10 ms / 100 ms one-way delays and compare convergence.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::message::{Message, NodeId};
use crate::transport::Transport;
use crate::NetError;

/// A [`Transport`] decorator that delays *inbound* delivery.
///
/// Sends pass through unchanged (delaying one side of every link is
/// equivalent to a symmetric one-way delay for the algorithm's
/// semantics, since nodes only react to what they receive).
pub struct DelayedTransport<T: Transport> {
    inner: T,
    delay: Duration,
    holding: VecDeque<(Instant, Message)>,
}

impl<T: Transport> DelayedTransport<T> {
    /// Wrap `inner`, delaying every received message by `delay`.
    pub fn new(inner: T, delay: Duration) -> Self {
        DelayedTransport {
            inner,
            delay,
            holding: VecDeque::new(),
        }
    }

    /// The configured one-way delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Pull everything pending from the inner transport into the
    /// holding queue, stamping arrival times.
    fn ingest(&mut self) {
        let now = Instant::now();
        while let Some(m) = self.inner.try_recv() {
            self.holding.push_back((now + self.delay, m));
        }
    }
}

impl<T: Transport> Transport for DelayedTransport<T> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.inner.neighbors()
    }

    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        self.inner.send(to, msg)
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.ingest();
        match self.holding.front() {
            Some(&(due, _)) if Instant::now() >= due => {
                self.holding.pop_front().map(|(_, m)| m)
            }
            _ => None,
        }
    }

    fn leave(&mut self) {
        self.inner.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryNetwork;
    use crate::topology::Topology;

    #[test]
    fn zero_delay_passes_through() {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut b = DelayedTransport::new(b, Duration::ZERO);
        a.send(1, Message::Leave { from: 0 }).unwrap();
        // Zero delay: visible immediately.
        assert_eq!(b.try_recv(), Some(Message::Leave { from: 0 }));
    }

    #[test]
    fn messages_held_for_the_delay() {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut b = DelayedTransport::new(b, Duration::from_millis(30));
        a.send(1, Message::OptimumFound { from: 0, length: 1 })
            .unwrap();
        assert_eq!(b.try_recv(), None, "message leaked before the delay");
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn ordering_preserved_under_delay() {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut b = DelayedTransport::new(b, Duration::from_millis(5));
        for i in 0..5i64 {
            a.send(1, Message::OptimumFound { from: 0, length: i })
                .unwrap();
        }
        // The delay clock starts at the first poll (lazy ingestion), so
        // poll until everything drained.
        let mut got = Vec::new();
        crate::util::wait_until(
            || {
                match b.try_recv() {
                    Some(Message::OptimumFound { length, .. }) => got.push(length),
                    Some(_) => panic!("unexpected message"),
                    None => {}
                }
                got.len() >= 5
            },
            Duration::from_millis(500),
        );
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn id_and_neighbors_delegate() {
        let (mut eps, _) = InMemoryNetwork::build(4, Topology::Hypercube);
        let d = DelayedTransport::new(eps.remove(2), Duration::from_millis(1));
        assert_eq!(d.node_id(), 2);
        assert_eq!(d.neighbors().len(), 2);
        assert_eq!(d.delay(), Duration::from_millis(1));
    }
}
