//! Live cluster telemetry: the hub-side merged registry and the
//! node-side shipper.
//!
//! Nodes periodically build a [`Message::Telemetry`] frame — metric
//! *deltas* since the previous shipment, recent events, and anytime
//! convergence state — and send it to the current hub. The hub folds
//! every frame into a [`TelemetryStore`]: counters accumulate, gauges
//! are replaced per node, events are re-stamped onto the hub's
//! timeline using a clock offset estimated from the frame's send
//! timestamp and the sender's last measured RTT
//! (`offset = t_send + rtt/2 - t_hub_recv`, node clock minus hub
//! clock — the same half-RTT model the TCP prober uses for
//! Ping/Pong). The store renders two live
//! views: Prometheus text (`METRICS`) and per-node convergence lines
//! (`STATUS`). See DESIGN.md §8 "Live telemetry plane".

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use obs_api::{Event, MetricsSnapshot, Obs};
use parking_lot::Mutex;

use crate::message::{Message, NodeId};

/// Aligned-event backlog cap: beyond this the oldest events are
/// discarded (counted in `telemetry.events_dropped`), so a chatty
/// cluster cannot grow the hub without bound.
const MAX_EVENTS: usize = 65_536;

/// Live per-node convergence state, updated by each Telemetry frame.
#[derive(Debug, Clone)]
pub struct NodeTelemetry {
    /// Anytime best tour length reported by the node.
    pub best_len: i64,
    /// Cumulative CLK calls reported by the node.
    pub clk_calls: u64,
    /// Whether the node's stall detector is currently tripped.
    pub stalled: bool,
    /// RTT the node last measured to the hub (ns; 0 when unknown).
    pub rtt_ns: u64,
    /// Estimated clock offset: the node's obs clock minus the hub
    /// store clock, in ns. Adding `-offset_ns` to a node timestamp
    /// lands it on the hub timeline.
    pub offset_ns: i64,
    /// CLK calls per second, from the two most recent frames (0 until
    /// the second frame arrives).
    pub iter_rate: f64,
    /// Hub store clock at the last ingest (ns).
    pub last_ingest_ns: u64,
    /// Frames ingested from this node.
    pub frames: u64,
}

#[derive(Default)]
struct StoreState {
    nodes: BTreeMap<NodeId, NodeTelemetry>,
    /// Cluster-cumulative counters (sum of all ingested deltas).
    counters: BTreeMap<String, u64>,
    /// Latest absolute gauge readings, per node.
    gauges: BTreeMap<NodeId, BTreeMap<String, i64>>,
    /// Shipped events, re-stamped onto the hub timeline, in arrival
    /// order (sort with `obs_api::merge_timelines` keys for replay).
    events: Vec<Event>,
    events_dropped: u64,
    /// Known optimum for gap reporting (`None` → no GAP column).
    reference: Option<i64>,
}

/// The hub's cluster-merged live telemetry registry. Shared (via
/// `Arc`) between the lifecycle hub's scrape commands and whatever
/// ingests frames — the hub's own TCP handler, or a node driver that
/// currently holds the hub role in an in-process run.
pub struct TelemetryStore {
    start: Instant,
    state: Mutex<StoreState>,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryStore {
    /// An empty store; its clock starts now.
    pub fn new() -> Self {
        TelemetryStore {
            start: Instant::now(),
            state: Mutex::new(StoreState::default()),
        }
    }

    /// A shared handle, ready to hand to a hub and several ingesters.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The hub store clock: ns since the store was created. All
    /// shipped timestamps are aligned onto this timeline.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Set the known optimum used for the `STATUS` gap column.
    pub fn set_reference(&self, optimum: Option<i64>) {
        self.state.lock().reference = optimum;
    }

    /// Fold one [`Message::Telemetry`] frame into the store; returns
    /// the hub store clock at ingest. Non-telemetry messages are
    /// ignored (`None`).
    pub fn ingest(&self, msg: &Message) -> Option<u64> {
        let Message::Telemetry {
            from,
            t_ns,
            rtt_ns,
            best_len,
            clk_calls,
            stalled,
            counters,
            gauges,
            events_jsonl,
        } = msg
        else {
            return None;
        };
        let hub_t = self.now_ns();
        // Half-RTT clock model: the frame left the sender rtt/2 ago.
        let offset_ns = (*t_ns as i128 + *rtt_ns as i128 / 2 - hub_t as i128)
            .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        let mut st = self.state.lock();
        let prev = st.nodes.get(from);
        let iter_rate = match prev {
            Some(p) if hub_t > p.last_ingest_ns && *clk_calls >= p.clk_calls => {
                (*clk_calls - p.clk_calls) as f64 * 1e9 / (hub_t - p.last_ingest_ns) as f64
            }
            _ => 0.0,
        };
        let frames = prev.map_or(0, |p| p.frames) + 1;
        st.nodes.insert(
            *from,
            NodeTelemetry {
                best_len: *best_len,
                clk_calls: *clk_calls,
                stalled: *stalled,
                rtt_ns: *rtt_ns,
                offset_ns,
                iter_rate,
                last_ingest_ns: hub_t,
                frames,
            },
        );
        for (name, v) in counters {
            *st.counters.entry(name.clone()).or_insert(0) += v;
        }
        st.gauges
            .insert(*from, gauges.iter().cloned().collect());
        if let Ok(text) = std::str::from_utf8(events_jsonl) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                match Event::from_jsonl(line) {
                    Ok(mut e) => {
                        // Re-stamp onto the hub timeline.
                        e.t_ns = (e.t_ns as i128 - offset_ns as i128)
                            .clamp(0, u64::MAX as i128) as u64;
                        st.events.push(e);
                    }
                    Err(_) => st.events_dropped += 1,
                }
            }
        }
        if st.events.len() > MAX_EVENTS {
            let excess = st.events.len() - MAX_EVENTS;
            st.events.drain(..excess);
            st.events_dropped += excess as u64;
        }
        Some(hub_t)
    }

    /// Ids of all nodes that have shipped at least one frame.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.state.lock().nodes.keys().copied().collect()
    }

    /// Live state of one node, if it has reported.
    pub fn node(&self, id: NodeId) -> Option<NodeTelemetry> {
        self.state.lock().nodes.get(&id).cloned()
    }

    /// Estimated per-node clock offsets keyed for
    /// [`obs_api::align_timeline`]: adding the returned offset to a
    /// node-local timestamp lands it on the hub timeline.
    pub fn offsets(&self) -> BTreeMap<u32, i64> {
        self.state
            .lock()
            .nodes
            .iter()
            .map(|(&id, n)| (id as u32, -n.offset_ns))
            .collect()
    }

    /// All shipped events, already re-stamped onto the hub timeline,
    /// sorted causally (`(t_ns, node, seq)` — same order as
    /// `obs_api::merge_timelines`).
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.state.lock().events.clone();
        events.sort_by_key(|e| (e.t_ns, e.node, e.seq));
        events
    }

    /// The cluster-merged metrics view: counters accumulate across all
    /// frames, gauges sum the latest per-node readings, and the
    /// store's own ingest health rides along (`telemetry.frames`,
    /// `telemetry.nodes_reporting`, `telemetry.events_dropped`).
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock();
        let mut snap = MetricsSnapshot {
            counters: st.counters.clone(),
            ..Default::default()
        };
        for per_node in st.gauges.values() {
            for (name, v) in per_node {
                *snap.gauges.entry(name.clone()).or_insert(0) += v;
            }
        }
        snap.counters.insert(
            "telemetry.frames".into(),
            st.nodes.values().map(|n| n.frames).sum(),
        );
        snap.counters
            .insert("telemetry.events_dropped".into(), st.events_dropped);
        snap.gauges.insert(
            "telemetry.nodes_reporting".into(),
            st.nodes.len() as i64,
        );
        snap.gauges.insert(
            "telemetry.nodes_stalled".into(),
            st.nodes.values().filter(|n| n.stalled).count() as i64,
        );
        snap
    }

    /// The `METRICS` scrape body: the merged view in Prometheus text
    /// exposition format.
    pub fn prometheus_text(&self) -> String {
        self.merged_snapshot().prometheus_text()
    }

    /// The `STATUS` scrape body: one line per reporting node,
    /// `NODE <id> BEST <len> GAP <pct|-> RATE <calls/s> STALLED <0|1>
    /// RTT <ns> OFFSET <ns> CALLS <n>`.
    pub fn status_text(&self) -> String {
        use std::fmt::Write as _;
        let st = self.state.lock();
        let mut out = String::new();
        for (id, n) in &st.nodes {
            let gap = match st.reference {
                Some(opt) if opt > 0 => {
                    format!("{:.4}", (n.best_len - opt) as f64 * 100.0 / opt as f64)
                }
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "NODE {id} BEST {} GAP {gap} RATE {:.2} STALLED {} RTT {} OFFSET {} CALLS {}",
                n.best_len,
                n.iter_rate,
                u8::from(n.stalled),
                n.rtt_ns,
                n.offset_ns,
                n.clk_calls,
            );
        }
        out
    }
}

/// Node-side shipment builder: tracks the previously shipped metrics
/// snapshot and event sequence number, so each frame carries only the
/// change since the last one.
pub struct TelemetryShipper {
    obs: Obs,
    base: MetricsSnapshot,
    /// Events with `seq >= next_seq` have not been shipped yet.
    next_seq: u64,
    /// RTT to feed into the next frame (measured by the caller from
    /// its previous shipment round trip, or taken from the transport's
    /// Ping/Pong probe).
    pub rtt_ns: u64,
}

impl TelemetryShipper {
    /// A shipper for this node's observability handle. The first frame
    /// carries everything recorded so far.
    pub fn new(obs: Obs) -> Self {
        TelemetryShipper {
            obs,
            base: MetricsSnapshot::default(),
            next_seq: 0,
            rtt_ns: 0,
        }
    }

    /// Build the next Telemetry frame: counter deltas (zero deltas are
    /// elided), absolute gauges, and the events recorded since the
    /// previous call.
    pub fn frame(
        &mut self,
        from: NodeId,
        best_len: i64,
        clk_calls: u64,
        stalled: bool,
    ) -> Message {
        let snap = self.obs.snapshot();
        let delta = snap.delta(&self.base);
        self.base = snap;
        let counters: Vec<(String, u64)> = delta
            .counters
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        let gauges: Vec<(String, i64)> = delta.gauges.into_iter().collect();
        let mut events_jsonl = Vec::new();
        for e in self.obs.events() {
            if e.seq >= self.next_seq {
                self.next_seq = e.seq + 1;
                events_jsonl.extend_from_slice(e.to_jsonl().as_bytes());
                events_jsonl.push(b'\n');
            }
        }
        Message::Telemetry {
            from,
            t_ns: self.obs.t_ns(),
            rtt_ns: self.rtt_ns,
            best_len,
            clk_calls,
            stalled,
            counters,
            gauges,
            events_jsonl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_api::Value;

    fn frame(from: NodeId, t_ns: u64, clk_calls: u64, best: i64) -> Message {
        frame_with_events(from, t_ns, clk_calls, best, vec![])
    }

    fn frame_with_events(
        from: NodeId,
        t_ns: u64,
        clk_calls: u64,
        best: i64,
        events_jsonl: Vec<u8>,
    ) -> Message {
        Message::Telemetry {
            from,
            t_ns,
            rtt_ns: 0,
            best_len: best,
            clk_calls,
            stalled: false,
            counters: vec![("clk.calls".into(), clk_calls)],
            gauges: vec![("node.best".into(), best)],
            events_jsonl,
        }
    }

    #[test]
    fn ingest_merges_counters_and_replaces_gauges() {
        let store = TelemetryStore::new();
        assert!(store.ingest(&frame(0, 0, 10, 100)).is_some());
        assert!(store.ingest(&frame(1, 0, 5, 90)).is_some());
        // Node 0 ships a second delta; its gauge is replaced, not added.
        assert!(store.ingest(&frame(0, 1, 7, 80)).is_some());
        let snap = store.merged_snapshot();
        assert_eq!(snap.counter("clk.calls"), 22);
        assert_eq!(snap.gauges["node.best"], 80 + 90);
        assert_eq!(snap.counter("telemetry.frames"), 3);
        assert_eq!(snap.gauges["telemetry.nodes_reporting"], 2);
        assert_eq!(store.nodes(), vec![0, 1]);
        assert_eq!(store.node(0).unwrap().clk_calls, 7);
        assert_eq!(store.node(0).unwrap().frames, 2);
        // Non-telemetry messages are ignored.
        assert!(store.ingest(&Message::Leave { from: 0 }).is_none());
    }

    #[test]
    fn shipped_events_are_restamped_onto_hub_timeline() {
        let store = TelemetryStore::new();
        let hub_before = store.now_ns();
        // A node whose clock runs 1 s ahead of the hub ships an event
        // stamped on its own timeline.
        let node_t = hub_before + 1_000_000_000;
        let ev = Event {
            t_ns: node_t,
            node: 3,
            seq: 0,
            kind: "clk.stall".into(),
            fields: vec![("window".into(), Value::U(128))],
        };
        let msg = Message::Telemetry {
            from: 3,
            t_ns: node_t,
            rtt_ns: 0,
            best_len: 0,
            clk_calls: 0,
            stalled: true,
            counters: vec![],
            gauges: vec![],
            events_jsonl: format!("{}\n", ev.to_jsonl()).into_bytes(),
        };
        let hub_at = store.ingest(&msg).unwrap();
        let events = store.events();
        assert_eq!(events.len(), 1);
        // The ~1 s skew is compensated: the re-stamped time is the hub
        // clock at ingest, not a second in the future.
        assert!(
            events[0].t_ns <= hub_at + 1_000_000,
            "event not aligned: {} vs hub {}",
            events[0].t_ns,
            hub_at
        );
        // offsets() inverts the estimate for align_timeline.
        let n = store.node(3).unwrap();
        assert_eq!(store.offsets()[&3], -n.offset_ns);
        // Garbage JSONL is counted, not propagated.
        let bad = frame_with_events(3, node_t, 1, 0, b"not json\n".to_vec());
        store.ingest(&bad);
        assert_eq!(
            store.merged_snapshot().counter("telemetry.events_dropped"),
            1
        );
    }

    #[test]
    fn iter_rate_derives_from_successive_frames() {
        let store = TelemetryStore::new();
        store.ingest(&frame(0, 0, 100, 50));
        // Wait long enough that the store clock visibly advances.
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.ingest(&frame(0, 1, 300, 40));
        let n = store.node(0).unwrap();
        assert!(n.iter_rate > 0.0, "rate {}", n.iter_rate);
        // 200 calls in >= 20 ms → at most 10k calls/s.
        assert!(n.iter_rate <= 10_000.0, "rate {}", n.iter_rate);
    }

    #[test]
    fn status_reports_gap_against_reference() {
        let store = TelemetryStore::new();
        store.ingest(&frame(0, 0, 1, 110));
        store.ingest(&frame(1, 0, 1, 100));
        let no_ref = store.status_text();
        assert!(no_ref.contains("NODE 0 BEST 110 GAP -"), "{no_ref}");
        store.set_reference(Some(100));
        let text = store.status_text();
        assert!(text.contains("NODE 0 BEST 110 GAP 10.0000"), "{text}");
        assert!(text.contains("NODE 1 BEST 100 GAP 0.0000"), "{text}");
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn event_backlog_is_bounded() {
        let store = TelemetryStore::new();
        let ev = Event {
            t_ns: 1,
            node: 0,
            seq: 0,
            kind: "x".into(),
            fields: vec![],
        };
        let line = format!("{}\n", ev.to_jsonl());
        let chunk = line.repeat(1000);
        for _ in 0..(MAX_EVENTS / 1000 + 2) {
            let msg = frame_with_events(0, 0, 0, 0, chunk.clone().into_bytes());
            store.ingest(&msg);
        }
        let st = store.state.lock();
        assert!(st.events.len() <= MAX_EVENTS);
        assert!(st.events_dropped > 0);
    }

    #[test]
    fn shipper_sends_deltas_and_only_new_events() {
        let obs = Obs::for_node(7);
        let c = obs.counter("clk.calls");
        c.add(5);
        obs.event("node.iter", &[("round", Value::U(0))]);
        let mut shipper = TelemetryShipper::new(obs.clone());
        let f1 = shipper.frame(7, 123, 5, false);
        let Message::Telemetry {
            counters,
            events_jsonl,
            best_len,
            ..
        } = &f1
        else {
            panic!("not a telemetry frame")
        };
        assert_eq!(*best_len, 123);
        assert!(counters.contains(&("clk.calls".to_string(), 5)));
        // Second frame: only the increment and the new event.
        c.add(2);
        obs.event("node.iter", &[("round", Value::U(1))]);
        let first_events = events_jsonl.clone();
        let f2 = shipper.frame(7, 120, 7, true);
        let Message::Telemetry {
            counters,
            events_jsonl,
            stalled,
            ..
        } = &f2
        else {
            panic!("not a telemetry frame")
        };
        assert!(*stalled);
        assert!(counters.contains(&("clk.calls".to_string(), 2)), "{counters:?}");
        if obs_api::ENABLED {
            assert_eq!(
                String::from_utf8(first_events).unwrap().lines().count(),
                1
            );
            let second = String::from_utf8(events_jsonl.clone()).unwrap();
            assert_eq!(second.lines().count(), 1, "{second}");
            assert!(second.contains("\"round\":1"), "{second}");
        }
        // Round trip through the store: totals match the node counter.
        let store = TelemetryStore::new();
        store.ingest(&f1);
        store.ingest(&f2);
        assert_eq!(store.merged_snapshot().counter("clk.calls"), 7);
        if obs_api::ENABLED {
            assert_eq!(store.events().len(), 2);
        }
    }
}
