//! The bootstrap hub (paper §2.2).
//!
//! The hub is the only central component and is used *only* during
//! network initialization: each node connects, announces its listen
//! address, and receives its hypercube position plus the list of
//! neighbors that have already joined. The joining node then dials
//! those neighbors directly; nodes joining later dial it, and the TCP
//! layer registers the reverse edges — so early nodes start with sparse
//! lists that fill in as the cube completes, exactly as the paper
//! describes.
//!
//! The bootstrap protocol is a one-request/one-response text exchange
//! (`JOIN <addr>` → `ID <id> EXPECT <n> NEIGHBORS <id>@<addr>;…`),
//! deliberately separate from the binary peer protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use obs_api::{Obs, Value};

use crate::message::NodeId;
use crate::tcp::TcpConfig;
use crate::topology::Topology;
use crate::NetError;

/// A running hub, serving until `expected` nodes have joined.
pub struct Hub {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    obs: Obs,
}

impl Hub {
    /// Start a hub on `addr` (port 0 for ephemeral) for a network of
    /// `expected` nodes with the given topology. Bootstrap is silent;
    /// use [`Hub::start_with`] to trace joins and rejections.
    pub fn start(addr: &str, expected: usize, topology: Topology) -> Result<Hub, NetError> {
        Self::start_with(addr, expected, topology, Obs::disabled())
    }

    /// [`Hub::start`] with an observability handle: every accepted join
    /// (`hub.join`), rejected request (`hub.reject`), and bootstrap
    /// completion (`hub.complete`) is recorded as a structured event
    /// instead of the old `eprintln!` noise.
    pub fn start_with(
        addr: &str,
        expected: usize,
        topology: Topology,
        obs: Obs,
    ) -> Result<Hub, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let loop_obs = obs.clone();
        let thread = std::thread::Builder::new()
            .name("p2p-hub".into())
            .spawn(move || hub_loop(listener, expected, topology, loop_obs))
            .expect("spawn hub thread");
        Ok(Hub {
            addr,
            thread: Some(thread),
            obs,
        })
    }

    /// Address nodes should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub's observability handle (disabled for [`Hub::start`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Wait until all expected nodes joined and the hub retired.
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn hub_loop(listener: TcpListener, expected: usize, topology: Topology, obs: Obs) {
    let c_joins = obs.counter("hub.joins");
    let c_rejects = obs.counter("hub.rejects");
    let mut joined: Vec<SocketAddr> = Vec::with_capacity(expected);
    while joined.len() < expected {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => return,
        };
        match serve_one(stream, &mut joined, expected, topology) {
            Ok((id, neighbors)) => {
                c_joins.incr();
                obs.event(
                    "hub.join",
                    &[
                        ("id", Value::U(id as u64)),
                        ("neighbors", Value::U(neighbors as u64)),
                        ("joined", Value::U(joined.len() as u64)),
                    ],
                );
            }
            Err(e) => {
                // A malformed join attempt doesn't kill the hub.
                c_rejects.incr();
                obs.event("hub.reject", &[("error", Value::S(e.to_string()))]);
            }
        }
    }
    obs.event("hub.complete", &[("nodes", Value::U(joined.len() as u64))]);
}

fn serve_one(
    stream: TcpStream,
    joined: &mut Vec<SocketAddr>,
    expected: usize,
    topology: Topology,
) -> Result<(NodeId, usize), NetError> {
    // Bound the request read: a connector that never sends its JOIN
    // line must not wedge the hub for everyone else.
    stream
        .set_read_timeout(Some(TcpConfig::default().handshake_timeout))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let parts: Vec<&str> = line.trim().splitn(2, ' ').collect();
    if parts.len() != 2 || parts[0] != "JOIN" {
        return Err(NetError::Codec(format!("bad hub request {line:?}")));
    }
    let listen: SocketAddr = parts[1]
        .parse()
        .map_err(|e| NetError::Codec(format!("bad address {:?}: {e}", parts[1])))?;
    let id = joined.len() as NodeId;
    joined.push(listen);
    // Neighbors in the final topology that already joined.
    let neighbors: Vec<String> = topology
        .neighbors(id, expected)
        .into_iter()
        .filter(|&m| m < id)
        .map(|m| format!("{m}@{}", joined[m]))
        .collect();
    let mut w = stream;
    writeln!(
        w,
        "ID {id} EXPECT {expected} NEIGHBORS {}",
        neighbors.join(";")
    )?;
    w.flush()?;
    Ok((id, neighbors.len()))
}

/// A node's view after bootstrap: its id and the already-joined
/// neighbors to dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinInfo {
    /// Assigned hypercube position.
    pub id: NodeId,
    /// Total network size.
    pub expected: usize,
    /// Neighbors that joined earlier: `(id, address)`.
    pub neighbors: Vec<(NodeId, SocketAddr)>,
}

/// Join a network: contact the hub, announce our listen address, and
/// parse the assigned position and neighbor list. Uses the default
/// timeout/retry policy (see [`join_via_hub_with`]).
pub fn join_via_hub(hub: SocketAddr, listen: SocketAddr) -> Result<JoinInfo, NetError> {
    join_via_hub_with(hub, listen, &TcpConfig::default())
}

/// [`join_via_hub`] with an explicit timeout/retry policy: every
/// attempt bounds the connect, the request write, and the reply read;
/// failed attempts are retried with exponential backoff (the hub may
/// simply not be up yet during cluster bring-up).
pub fn join_via_hub_with(
    hub: SocketAddr,
    listen: SocketAddr,
    cfg: &TcpConfig,
) -> Result<JoinInfo, NetError> {
    let mut backoff = cfg.backoff_base;
    let mut last_err = NetError::Closed;
    for attempt in 0..=cfg.connect_retries {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_max);
        }
        match join_once(hub, listen, cfg) {
            Ok(info) => return Ok(info),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn join_once(hub: SocketAddr, listen: SocketAddr, cfg: &TcpConfig) -> Result<JoinInfo, NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "JOIN {listen}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    parse_join_reply(&line)
}

fn parse_join_reply(line: &str) -> Result<JoinInfo, NetError> {
    let err = |m: String| NetError::Codec(m);
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    if tokens.len() < 5 || tokens[0] != "ID" || tokens[2] != "EXPECT" || tokens[4] != "NEIGHBORS" {
        return Err(err(format!("bad hub reply {line:?}")));
    }
    let id: NodeId = tokens[1].parse().map_err(|_| err("bad id".into()))?;
    let expected: usize = tokens[3].parse().map_err(|_| err("bad expect".into()))?;
    let mut neighbors = Vec::new();
    if tokens.len() > 5 {
        for item in tokens[5].split(';').filter(|s| !s.is_empty()) {
            let (nid, addr) = item
                .split_once('@')
                .ok_or_else(|| err(format!("bad neighbor {item:?}")))?;
            neighbors.push((
                nid.parse().map_err(|_| err("bad neighbor id".into()))?,
                addr.parse()
                    .map_err(|_| err(format!("bad neighbor addr {addr:?}")))?,
            ));
        }
    }
    Ok(JoinInfo {
        id,
        expected,
        neighbors,
    })
}

/// Convenience for tests and examples: bootstrap a full TCP network of
/// `n` [`crate::tcp::TcpEndpoint`]s through a hub on localhost, wiring
/// all topology edges, and wait until every edge is live.
pub fn bootstrap_local(n: usize, topology: Topology) -> Result<Vec<crate::tcp::TcpEndpoint>, NetError> {
    let hub = Hub::start("127.0.0.1:0", n, topology)?;
    let hub_addr = hub.addr();
    let mut endpoints = Vec::with_capacity(n);
    for _ in 0..n {
        // Bind first so we can announce a real listen address, then let
        // the hub assign the id.
        let mut ep = crate::tcp::TcpEndpoint::bind(usize::MAX, "127.0.0.1:0")?;
        let info = join_via_hub(hub_addr, ep.listen_addr())?;
        ep.set_id(info.id);
        for (nid, addr) in &info.neighbors {
            ep.connect_to(*nid, *addr)?;
        }
        endpoints.push(ep);
    }
    hub.join();
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    #[test]
    fn parse_reply_with_neighbors() {
        let info =
            parse_join_reply("ID 3 EXPECT 8 NEIGHBORS 1@127.0.0.1:9001;2@127.0.0.1:9002\n")
                .unwrap();
        assert_eq!(info.id, 3);
        assert_eq!(info.expected, 8);
        assert_eq!(info.neighbors.len(), 2);
        assert_eq!(info.neighbors[0].0, 1);
    }

    #[test]
    fn parse_reply_empty_neighbors() {
        let info = parse_join_reply("ID 0 EXPECT 8 NEIGHBORS \n").unwrap();
        assert_eq!(info.id, 0);
        assert!(info.neighbors.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_join_reply("HELLO WORLD").is_err());
        assert!(parse_join_reply("ID x EXPECT 8 NEIGHBORS ").is_err());
    }

    #[test]
    fn hub_assigns_sequential_ids_and_earlier_neighbors() {
        let hub = Hub::start("127.0.0.1:0", 4, Topology::Ring).unwrap();
        let addr = hub.addr();
        let mut infos = Vec::new();
        for i in 0..4 {
            let listen: SocketAddr = format!("127.0.0.1:{}", 40000 + i).parse().unwrap();
            infos.push(join_via_hub(addr, listen).unwrap());
        }
        hub.join();
        assert_eq!(infos[0].id, 0);
        assert!(infos[0].neighbors.is_empty());
        // Ring: node 3 neighbors {2, 0}, both already joined.
        assert_eq!(infos[3].id, 3);
        let ids: Vec<NodeId> = infos[3].neighbors.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2) && ids.contains(&0));
    }

    #[test]
    fn hub_records_join_and_reject_events() {
        let obs = Obs::for_node(u32::MAX);
        let hub = Hub::start_with("127.0.0.1:0", 2, Topology::Ring, obs.clone()).unwrap();
        let addr = hub.addr();
        // A garbage request first: must be rejected, not crash the hub.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            writeln!(s, "NONSENSE").unwrap();
        }
        // Give the hub a moment to process the bad request before the
        // real joins race it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        join_via_hub(addr, "127.0.0.1:40020".parse().unwrap()).unwrap();
        join_via_hub(addr, "127.0.0.1:40021".parse().unwrap()).unwrap();
        hub.join();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("hub.joins"), 2);
        assert_eq!(snap.counter("hub.rejects"), 1);
        if obs_api::ENABLED {
            let events = obs.events();
            assert_eq!(events.iter().filter(|e| e.kind == "hub.join").count(), 2);
            assert_eq!(events.iter().filter(|e| e.kind == "hub.reject").count(), 1);
            assert_eq!(
                events.iter().filter(|e| e.kind == "hub.complete").count(),
                1
            );
        }
    }

    #[test]
    fn join_dead_hub_fails_within_retry_budget() {
        // Grab a port that was live and is now certainly dead.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = TcpConfig::fast_fail();
        let start = std::time::Instant::now();
        let res = join_via_hub_with(dead, "127.0.0.1:40000".parse().unwrap(), &cfg);
        assert!(res.is_err(), "joined a dead hub");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "dead-hub join took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn silent_connector_does_not_wedge_hub() {
        let hub = Hub::start("127.0.0.1:0", 2, Topology::Ring).unwrap();
        let addr = hub.addr();
        // Connect and say nothing: serve_one must time out and move on.
        let _silent = TcpStream::connect(addr).unwrap();
        // Wait longer than the hub's handshake timeout so the joins
        // don't race the silent connector's eviction.
        let cfg = TcpConfig {
            handshake_timeout: std::time::Duration::from_secs(10),
            ..Default::default()
        };
        let a = join_via_hub_with(addr, "127.0.0.1:40010".parse().unwrap(), &cfg).unwrap();
        let b = join_via_hub_with(addr, "127.0.0.1:40011".parse().unwrap(), &cfg).unwrap();
        assert_eq!((a.id, b.id), (0, 1));
        hub.join();
    }

    #[test]
    fn bootstrap_local_wires_full_topology() {
        let mut eps = bootstrap_local(4, Topology::Ring).unwrap();
        // Give reverse edges a moment to register.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        loop {
            let complete = eps.iter().all(|e| e.neighbors().len() == 2);
            if complete || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for (i, e) in eps.iter().enumerate() {
            let mut nb = e.neighbors();
            nb.sort_unstable();
            let mut want = Topology::Ring.neighbors(i, 4);
            want.sort_unstable();
            assert_eq!(nb, want, "node {i}");
        }
        for e in &mut eps {
            e.shutdown();
        }
    }
}
