//! The bootstrap hub (paper §2.2).
//!
//! The hub is the only central component and is used *only* during
//! network initialization: each node connects, announces its listen
//! address, and receives its hypercube position plus the list of
//! neighbors that have already joined. The joining node then dials
//! those neighbors directly; nodes joining later dial it, and the TCP
//! layer registers the reverse edges — so early nodes start with sparse
//! lists that fill in as the cube completes, exactly as the paper
//! describes.
//!
//! The bootstrap protocol is a one-request/one-response text exchange
//! (`JOIN <addr>` → `ID <id> EXPECT <n> NEIGHBORS <id>@<addr>;…`),
//! deliberately separate from the binary peer protocol.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};
use obs_api::{Obs, Value};
use parking_lot::Mutex;

use crate::codec::{read_frame, write_frame};
use crate::election::{MembershipLog, Replica};
use crate::message::{Message, NodeId};
use crate::tcp::{TcpConfig, TcpEndpoint};
use crate::telemetry::TelemetryStore;
use crate::topology::{Membership, Topology};
use crate::NetError;

/// A running hub, serving until `expected` nodes have joined.
pub struct Hub {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    obs: Obs,
}

impl Hub {
    /// Start a hub on `addr` (port 0 for ephemeral) for a network of
    /// `expected` nodes with the given topology. Bootstrap is silent;
    /// use [`Hub::start_with`] to trace joins and rejections.
    pub fn start(addr: &str, expected: usize, topology: Topology) -> Result<Hub, NetError> {
        Self::start_with(addr, expected, topology, Obs::disabled())
    }

    /// [`Hub::start`] with an observability handle: every accepted join
    /// (`hub.join`), rejected request (`hub.reject`), and bootstrap
    /// completion (`hub.complete`) is recorded as a structured event
    /// instead of the old `eprintln!` noise.
    pub fn start_with(
        addr: &str,
        expected: usize,
        topology: Topology,
        obs: Obs,
    ) -> Result<Hub, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let loop_obs = obs.clone();
        let thread = std::thread::Builder::new()
            .name("p2p-hub".into())
            .spawn(move || hub_loop(listener, expected, topology, loop_obs))
            .expect("spawn hub thread");
        Ok(Hub {
            addr,
            thread: Some(thread),
            obs,
        })
    }

    /// Address nodes should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub's observability handle (disabled for [`Hub::start`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Wait until all expected nodes joined and the hub retired.
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn hub_loop(listener: TcpListener, expected: usize, topology: Topology, obs: Obs) {
    let c_joins = obs.counter("hub.joins");
    let c_rejects = obs.counter("hub.rejects");
    let mut joined: Vec<SocketAddr> = Vec::with_capacity(expected);
    while joined.len() < expected {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => return,
        };
        match serve_one(stream, &mut joined, expected, topology) {
            Ok((id, neighbors)) => {
                c_joins.incr();
                obs.event(
                    "hub.join",
                    &[
                        ("id", Value::U(id as u64)),
                        ("neighbors", Value::U(neighbors as u64)),
                        ("joined", Value::U(joined.len() as u64)),
                    ],
                );
            }
            Err(e) => {
                // A malformed join attempt doesn't kill the hub.
                c_rejects.incr();
                obs.event("hub.reject", &[("error", Value::S(e.to_string()))]);
            }
        }
    }
    obs.event("hub.complete", &[("nodes", Value::U(joined.len() as u64))]);
}

fn serve_one(
    stream: TcpStream,
    joined: &mut Vec<SocketAddr>,
    expected: usize,
    topology: Topology,
) -> Result<(NodeId, usize), NetError> {
    // Bound the request read and the reply write: a connector that
    // never sends its JOIN line (or never drains the reply) must not
    // wedge the hub for everyone else.
    stream
        .set_read_timeout(Some(TcpConfig::default().handshake_timeout))
        .ok();
    stream
        .set_write_timeout(Some(TcpConfig::default().handshake_timeout))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let parts: Vec<&str> = line.trim().splitn(2, ' ').collect();
    if parts.len() != 2 || parts[0] != "JOIN" {
        return Err(NetError::Codec(format!("bad hub request {line:?}")));
    }
    let listen: SocketAddr = parts[1]
        .parse()
        .map_err(|e| NetError::Codec(format!("bad address {:?}: {e}", parts[1])))?;
    let id = joined.len() as NodeId;
    // Neighbors in the final topology that already joined.
    let neighbors: Vec<String> = topology
        .neighbors(id, expected)
        .into_iter()
        .filter(|&m| m < id)
        .map(|m| format!("{m}@{}", joined[m]))
        .collect();
    let mut w = stream;
    writeln!(
        w,
        "ID {id} EXPECT {expected} NEIGHBORS {}",
        neighbors.join(";")
    )?;
    w.flush()?;
    // Commit the slot only after the reply went out: a client that
    // disconnected mid-handshake never joined and its id is reused.
    joined.push(listen);
    Ok((id, neighbors.len()))
}

/// A node's view after bootstrap: its id and the already-joined
/// neighbors to dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinInfo {
    /// Assigned hypercube position.
    pub id: NodeId,
    /// Total network size.
    pub expected: usize,
    /// Neighbors that joined earlier: `(id, address)`.
    pub neighbors: Vec<(NodeId, SocketAddr)>,
}

/// Join a network: contact the hub, announce our listen address, and
/// parse the assigned position and neighbor list. Uses the default
/// timeout/retry policy (see [`join_via_hub_with`]).
pub fn join_via_hub(hub: SocketAddr, listen: SocketAddr) -> Result<JoinInfo, NetError> {
    join_via_hub_with(hub, listen, &TcpConfig::default())
}

/// [`join_via_hub`] with an explicit timeout/retry policy: every
/// attempt bounds the connect, the request write, and the reply read;
/// failed attempts are retried with exponential backoff (the hub may
/// simply not be up yet during cluster bring-up).
pub fn join_via_hub_with(
    hub: SocketAddr,
    listen: SocketAddr,
    cfg: &TcpConfig,
) -> Result<JoinInfo, NetError> {
    let mut backoff = cfg.backoff_base;
    let mut last_err = NetError::Closed;
    for attempt in 0..=cfg.connect_retries {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_max);
        }
        match join_once(hub, listen, cfg) {
            Ok(info) => return Ok(info),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn join_once(hub: SocketAddr, listen: SocketAddr, cfg: &TcpConfig) -> Result<JoinInfo, NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "JOIN {listen}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    parse_join_reply(&line)
}

fn parse_join_reply(line: &str) -> Result<JoinInfo, NetError> {
    let err = |m: String| NetError::Codec(m);
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    if tokens.len() < 5 || tokens[0] != "ID" || tokens[2] != "EXPECT" || tokens[4] != "NEIGHBORS" {
        return Err(err(format!("bad hub reply {line:?}")));
    }
    let id: NodeId = tokens[1].parse().map_err(|_| err("bad id".into()))?;
    let expected: usize = tokens[3].parse().map_err(|_| err("bad expect".into()))?;
    let mut neighbors = Vec::new();
    if tokens.len() > 5 {
        for item in tokens[5].split(';').filter(|s| !s.is_empty()) {
            let (nid, addr) = item
                .split_once('@')
                .ok_or_else(|| err(format!("bad neighbor {item:?}")))?;
            neighbors.push((
                nid.parse().map_err(|_| err("bad neighbor id".into()))?,
                addr.parse()
                    .map_err(|_| err(format!("bad neighbor addr {addr:?}")))?,
            ));
        }
    }
    Ok(JoinInfo {
        id,
        expected,
        neighbors,
    })
}

/// Convenience for tests and examples: bootstrap a full TCP network of
/// `n` [`crate::tcp::TcpEndpoint`]s through a hub on localhost, wiring
/// all topology edges, and wait until every edge is live.
pub fn bootstrap_local(n: usize, topology: Topology) -> Result<Vec<crate::tcp::TcpEndpoint>, NetError> {
    let hub = Hub::start("127.0.0.1:0", n, topology)?;
    let hub_addr = hub.addr();
    let mut endpoints = Vec::with_capacity(n);
    for _ in 0..n {
        // Bind first so we can announce a real listen address, then let
        // the hub assign the id.
        let mut ep = crate::tcp::TcpEndpoint::bind(usize::MAX, "127.0.0.1:0")?;
        let info = join_via_hub(hub_addr, ep.listen_addr())?;
        ep.set_id(info.id);
        for (nid, addr) in &info.neighbors {
            ep.connect_to(*nid, *addr)?;
        }
        endpoints.push(ep);
    }
    hub.join();
    Ok(endpoints)
}

// ---------------------------------------------------------------------
// Lifecycle hub: membership management beyond bootstrap.
// ---------------------------------------------------------------------

/// Shared state of a [`LifecycleHub`].
struct LifecycleState {
    /// Listen addresses by node id; `None` until the id has joined.
    joined: Vec<Option<SocketAddr>>,
    /// Live membership + repaired adjacency (the repair rule lives in
    /// [`Membership`], shared with the in-memory churn driver).
    membership: Membership,
    /// Repair group per dead node, remembered so every reporter of the
    /// same death — not just the first — receives its assignments.
    repair_memo: HashMap<NodeId, Vec<NodeId>>,
    expected: usize,
    complete: bool,
    /// Election epoch this hub serves under (0 for the bootstrap hub).
    epoch: u64,
    /// Set when a newer `HUBCLAIM` fenced this hub out of the role:
    /// lifecycle requests are answered `MOVED <epoch>` from then on,
    /// so clients fail over instead of acting on a stale membership
    /// view.
    stepped_down: bool,
}

/// Receiver of solve jobs arriving on the hub's `JOB` command: the
/// job layer (e.g. `distclk::service`) registers one via
/// [`LifecycleHub::set_job_handler`] and the hub hands it every job
/// frame together with the still-open client connection, on which the
/// handler streams its binary reply frames (`JobAccept`,
/// `JobImproved`…, terminated by `JobDone`). The hub stays protocol-
/// agnostic: fencing (`MOVED` after a newer `HUBCLAIM`) happens before
/// dispatch, exactly like the `METRICS`/`STATUS` scrapes.
pub trait JobHandler: Send + Sync {
    /// Serve one job connection. `first` is the frame that followed
    /// the `JOB` line (a `JobSubmit` or `JobCancel`); the handler owns
    /// `stream` from here on and replies with one `OK …`/`ERR …` text
    /// line, then (for submissions) a stream of codec frames.
    fn handle(&self, first: Message, stream: TcpStream) -> Result<(), NetError>;
}

/// Shared slot for the registered job handler (empty until the job
/// layer attaches).
type JobHandlerSlot = Arc<Mutex<Option<Arc<dyn JobHandler>>>>;

/// A hub promoted from one-shot bootstrapper to lifecycle manager: it
/// keeps serving after bootstrap, accepting three request kinds:
///
/// - `JOIN <addr>` — bootstrap join, exactly as [`Hub`];
/// - `DOWN <reporter> <dead>` — a node reports a dead peer; the hub
///   rewires the topology around the hole (dimension-neighbor
///   fallback, see [`Membership::fail`]) and answers
///   `REPAIR <id>@<addr>;…` with the links the *reporter* must dial.
///   Only higher-id group members are assigned to a reporter, so each
///   repair edge is dialed from exactly one side;
/// - `REJOIN <id> <addr>` — a restarted node rejoins under its old id;
///   the hub marks it alive again and answers with the standard
///   `ID … EXPECT … NEIGHBORS …` reply listing the alive neighbors to
///   dial.
///
/// Every connection is served on its own short-lived thread under a
/// read deadline, so a malformed, truncated, or wedged request can
/// neither consume a join slot nor stall the hub for everyone else.
///
/// The hub role is *migratable* (DESIGN.md §9 "hub migration"): a
/// fourth request kind, `HUBCLAIM <epoch>`, lets an elected successor
/// fence this hub out of the role. A claim with an epoch strictly
/// greater than the hub's own is accepted (`OK STEPDOWN <epoch>`);
/// from then on lifecycle requests are answered `MOVED <epoch>` so
/// clients fail over to the successor. Stale claims are answered
/// `STALE <epoch>`. A successor reconstructs its serving state from a
/// replicated [`MembershipLog`] via [`LifecycleHub::start_from_log`].
pub struct LifecycleHub {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<LifecycleState>>,
    telemetry: Arc<TelemetryStore>,
    jobs: JobHandlerSlot,
    obs: Obs,
}

impl LifecycleHub {
    /// Start a lifecycle hub on `addr` (port 0 for ephemeral) for a
    /// network of `expected` nodes.
    pub fn start(addr: &str, expected: usize, topology: Topology) -> Result<Self, NetError> {
        Self::start_with(addr, expected, topology, Obs::disabled())
    }

    /// [`LifecycleHub::start`] with an observability handle: joins,
    /// rejections, deaths (`hub.down`), repairs (`hub.repair`), and
    /// rejoins (`hub.rejoin`) are recorded as structured events.
    pub fn start_with(
        addr: &str,
        expected: usize,
        topology: Topology,
        obs: Obs,
    ) -> Result<Self, NetError> {
        Self::spawn(
            addr,
            LifecycleState {
                joined: vec![None; expected],
                membership: Membership::new(topology, expected),
                repair_memo: HashMap::new(),
                expected,
                complete: false,
                epoch: 0,
                stepped_down: false,
            },
            obs,
        )
    }

    /// Start a *successor* hub at `epoch`, reconstructing membership
    /// and repair memos by replaying a replicated [`MembershipLog`]
    /// (the same fold [`Replica`] performs on every node, so the
    /// successor's view agrees with the gossiped consensus). Listen
    /// addresses are not in the log — the promoted node supplies what
    /// it knows in `addrs` (typically its own connection table);
    /// unknown addresses simply yield fewer repair assignments until
    /// the node re-announces itself via `REJOIN`.
    pub fn start_from_log(
        addr: &str,
        expected: usize,
        topology: Topology,
        log: &MembershipLog,
        epoch: u64,
        addrs: Vec<Option<SocketAddr>>,
        obs: Obs,
    ) -> Result<Self, NetError> {
        let replica = Replica::from_entries(topology, expected, log.entries());
        let mut joined = addrs;
        joined.resize(expected, None);
        let repair_memo: HashMap<NodeId, Vec<NodeId>> = replica
            .repair_groups()
            .iter()
            .map(|(&dead, group)| (dead, group.clone()))
            .collect();
        let complete = joined.iter().all(|a| a.is_some());
        Self::spawn(
            addr,
            LifecycleState {
                joined,
                membership: replica.view().clone(),
                repair_memo,
                expected,
                complete,
                epoch,
                stepped_down: false,
            },
            obs,
        )
    }

    fn spawn(addr: &str, state: LifecycleState, obs: Obs) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(state));
        let telemetry = TelemetryStore::shared();
        let jobs: JobHandlerSlot = Arc::new(Mutex::new(None));
        let loop_state = Arc::clone(&state);
        let loop_stop = Arc::clone(&stop);
        let loop_telemetry = Arc::clone(&telemetry);
        let loop_jobs = Arc::clone(&jobs);
        let loop_obs = obs.clone();
        let thread = std::thread::Builder::new()
            .name("p2p-hub-lifecycle".into())
            .spawn(move || {
                lifecycle_loop(
                    listener,
                    loop_state,
                    loop_stop,
                    loop_telemetry,
                    loop_jobs,
                    loop_obs,
                )
            })
            .expect("spawn hub thread");
        Ok(LifecycleHub {
            addr,
            thread: Some(thread),
            stop,
            state,
            telemetry,
            jobs,
            obs,
        })
    }

    /// Address nodes should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The election epoch this hub currently serves (or last served)
    /// under — bumped when a newer `HUBCLAIM` is accepted.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Whether a newer claim has fenced this hub out of the role.
    pub fn stepped_down(&self) -> bool {
        self.state.lock().stepped_down
    }

    /// The hub's live telemetry registry: `TELEMETRY` frames land
    /// here, and `METRICS`/`STATUS` scrapes read from it. In-process
    /// runs can clone the `Arc` and ingest directly, bypassing the
    /// wire — the scrape commands then serve exactly the same view.
    pub fn telemetry(&self) -> Arc<TelemetryStore> {
        Arc::clone(&self.telemetry)
    }

    /// Register (or replace) the handler behind the `JOB` command.
    /// Until one is attached, job submissions are answered
    /// `ERR no job service`. The handler outlives individual
    /// connections — it is shared by every job-serving thread.
    pub fn set_job_handler(&self, handler: Arc<dyn JobHandler>) {
        *self.jobs.lock() = Some(handler);
    }

    /// Stop serving and join the hub thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LifecycleHub {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lifecycle_loop(
    listener: TcpListener,
    state: Arc<Mutex<LifecycleState>>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<TelemetryStore>,
    jobs: JobHandlerSlot,
    obs: Obs,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => break,
        };
        if stop.load(Ordering::Acquire) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        let conn_state = Arc::clone(&state);
        let conn_telemetry = Arc::clone(&telemetry);
        let conn_jobs = Arc::clone(&jobs);
        let conn_obs = obs.clone();
        let handle = std::thread::Builder::new()
            .name("p2p-hub-conn".into())
            .spawn(move || {
                if let Err(e) =
                    serve_lifecycle(stream, &conn_state, &conn_telemetry, &conn_jobs, &conn_obs)
                {
                    conn_obs.counter("hub.rejects").incr();
                    conn_obs.event("hub.reject", &[("error", Value::S(e.to_string()))]);
                }
            })
            .expect("spawn hub connection thread");
        conns.retain(|h| !h.is_finished());
        conns.push(handle);
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Serve one lifecycle request (`JOIN` / `DOWN` / `REJOIN` /
/// `HUBCLAIM` / `TELEMETRY` / `METRICS` / `STATUS` / `JOB`) under
/// read and write deadlines (a `JOB` connection is handed to the
/// registered [`JobHandler`], which manages its own deadlines from
/// then on — result streams legitimately outlive the handshake
/// timeout).
fn serve_lifecycle(
    stream: TcpStream,
    state: &Mutex<LifecycleState>,
    telemetry: &TelemetryStore,
    jobs: &JobHandlerSlot,
    obs: &Obs,
) -> Result<(), NetError> {
    let deadline = TcpConfig::default().handshake_timeout;
    stream.set_read_timeout(Some(deadline)).ok();
    stream.set_write_timeout(Some(deadline)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    let mut w = stream;
    // A fenced-out hub must not act on its now-stale membership view:
    // everything except further claims is redirected.
    if !matches!(tokens.first(), Some(&"HUBCLAIM")) {
        let st = state.lock();
        if st.stepped_down {
            let epoch = st.epoch;
            drop(st);
            writeln!(w, "MOVED {epoch}")?;
            w.flush()?;
            return Ok(());
        }
    }
    match tokens.as_slice() {
        ["JOIN", addr] => {
            let listen: SocketAddr = addr
                .parse()
                .map_err(|e| NetError::Codec(format!("bad address {addr:?}: {e}")))?;
            let mut st = state.lock();
            let id = st
                .joined
                .iter()
                .position(|a| a.is_none())
                .ok_or_else(|| NetError::Codec("network full".into()))?;
            let expected = st.expected;
            let neighbors: Vec<String> = st
                .membership
                .neighbors(id)
                .into_iter()
                .filter_map(|m| st.joined[m].map(|a| format!("{m}@{a}")))
                .collect();
            writeln!(
                w,
                "ID {id} EXPECT {expected} NEIGHBORS {}",
                neighbors.join(";")
            )?;
            w.flush()?;
            // Commit only after the reply went out (see `serve_one`).
            st.joined[id] = Some(listen);
            obs.counter("hub.joins").incr();
            obs.event(
                "hub.join",
                &[
                    ("id", Value::U(id as u64)),
                    ("neighbors", Value::U(neighbors.len() as u64)),
                ],
            );
            if !st.complete && st.joined.iter().all(|a| a.is_some()) {
                st.complete = true;
                obs.event("hub.complete", &[("nodes", Value::U(expected as u64))]);
            }
            Ok(())
        }
        ["DOWN", reporter, dead] => {
            let reporter: NodeId = reporter
                .parse()
                .map_err(|_| NetError::Codec("bad reporter id".into()))?;
            let dead: NodeId = dead
                .parse()
                .map_err(|_| NetError::Codec("bad dead id".into()))?;
            let mut st = state.lock();
            if reporter >= st.expected || dead >= st.expected || reporter == dead {
                return Err(NetError::Codec(format!(
                    "bad DOWN {reporter} {dead} in network of {}",
                    st.expected
                )));
            }
            if st.membership.is_alive(dead) {
                let group = st.membership.fail(dead);
                obs.counter("hub.downs").incr();
                obs.event(
                    "hub.down",
                    &[
                        ("dead", Value::U(dead as u64)),
                        ("reporter", Value::U(reporter as u64)),
                        ("repair_group", Value::U(group.len() as u64)),
                    ],
                );
                st.repair_memo.insert(dead, group);
            }
            // Each repair edge is dialed by its lower-id endpoint, so
            // a reporter is assigned only the higher-id group members
            // (the reverse edge registers automatically on accept).
            let group = st.repair_memo.get(&dead).cloned().unwrap_or_default();
            let assignments: Vec<String> = if group.contains(&reporter) {
                group
                    .iter()
                    .filter(|&&m| m > reporter)
                    .filter_map(|&m| st.joined[m].map(|a| format!("{m}@{a}")))
                    .collect()
            } else {
                Vec::new()
            };
            writeln!(w, "REPAIR {}", assignments.join(";"))?;
            w.flush()?;
            if !assignments.is_empty() {
                obs.event(
                    "hub.repair",
                    &[
                        ("reporter", Value::U(reporter as u64)),
                        ("assignments", Value::U(assignments.len() as u64)),
                    ],
                );
            }
            Ok(())
        }
        ["REJOIN", id, addr] => {
            let id: NodeId = id
                .parse()
                .map_err(|_| NetError::Codec("bad rejoin id".into()))?;
            let listen: SocketAddr = addr
                .parse()
                .map_err(|e| NetError::Codec(format!("bad address {addr:?}: {e}")))?;
            let mut st = state.lock();
            if id >= st.expected {
                return Err(NetError::Codec(format!(
                    "rejoin id {id} out of 0..{}",
                    st.expected
                )));
            }
            let expected = st.expected;
            st.membership.rejoin(id);
            st.repair_memo.remove(&id);
            let neighbors: Vec<String> = st
                .membership
                .neighbors(id)
                .into_iter()
                .filter_map(|m| st.joined[m].map(|a| format!("{m}@{a}")))
                .collect();
            writeln!(
                w,
                "ID {id} EXPECT {expected} NEIGHBORS {}",
                neighbors.join(";")
            )?;
            w.flush()?;
            st.joined[id] = Some(listen);
            obs.counter("hub.rejoins").incr();
            obs.event(
                "hub.rejoin",
                &[
                    ("id", Value::U(id as u64)),
                    ("neighbors", Value::U(neighbors.len() as u64)),
                ],
            );
            Ok(())
        }
        ["TELEMETRY"] => {
            // The text line is followed by one binary codec frame on
            // the same stream; the reply carries the hub store clock
            // at ingest so the shipper can measure its own RTT.
            let msg = read_frame(&mut reader)?;
            let Some(hub_t) = telemetry.ingest(&msg) else {
                return Err(NetError::Codec("TELEMETRY frame was not Telemetry".into()));
            };
            writeln!(w, "OK {hub_t}")?;
            w.flush()?;
            obs.counter("hub.telemetry_frames").incr();
            Ok(())
        }
        ["JOB"] => {
            // The text line is followed by one binary codec frame (a
            // `JobSubmit` or `JobCancel`) on the same stream, like
            // `TELEMETRY`. The connection is then handed to the job
            // layer, which replies with a status line and streams
            // result frames back on it. Fencing already happened
            // above: a stepped-down holder answered `MOVED` before the
            // frame was read, so a failed-over client resubmits to the
            // successor instead of landing a job on a stale scheduler.
            let msg = read_frame(&mut reader)?;
            if !matches!(msg, Message::JobSubmit { .. } | Message::JobCancel { .. }) {
                return Err(NetError::Codec("JOB frame was not a job frame".into()));
            }
            let handler = jobs.lock().clone();
            match handler {
                Some(h) => {
                    obs.counter("hub.jobs").incr();
                    h.handle(msg, w)
                }
                None => {
                    writeln!(w, "ERR no job service")?;
                    w.flush()?;
                    Ok(())
                }
            }
        }
        ["METRICS"] => {
            // Prometheus text exposition of the cluster-merged view;
            // the body ends when the hub closes the connection.
            w.write_all(telemetry.prometheus_text().as_bytes())?;
            w.flush()?;
            obs.counter("hub.scrapes").incr();
            Ok(())
        }
        ["STATUS"] => {
            w.write_all(telemetry.status_text().as_bytes())?;
            w.flush()?;
            obs.counter("hub.scrapes").incr();
            Ok(())
        }
        ["HUBCLAIM", epoch] => {
            let claimed: u64 = epoch
                .parse()
                .map_err(|_| NetError::Codec("bad claim epoch".into()))?;
            let mut st = state.lock();
            if claimed > st.epoch {
                st.epoch = claimed;
                st.stepped_down = true;
                obs.counter("hub.step_downs").incr();
                obs.event("hub.step_down", &[("epoch", Value::U(claimed))]);
                writeln!(w, "OK STEPDOWN {claimed}")?;
            } else {
                obs.counter("hub.stale_claims").incr();
                obs.event(
                    "hub.stale_claim",
                    &[
                        ("claimed", Value::U(claimed)),
                        ("epoch", Value::U(st.epoch)),
                    ],
                );
                writeln!(w, "STALE {}", st.epoch)?;
            }
            w.flush()?;
            Ok(())
        }
        _ => Err(NetError::Codec(format!("bad hub request {line:?}"))),
    }
}

/// Report a dead peer to the hub and parse the repair assignments the
/// reporter must dial. Retries with backoff like [`join_via_hub_with`].
pub fn report_down(
    hub: SocketAddr,
    reporter: NodeId,
    dead: NodeId,
    cfg: &TcpConfig,
) -> Result<Vec<(NodeId, SocketAddr)>, NetError> {
    retry_request(cfg, || {
        let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
        stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
        stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
        writeln!(stream, "DOWN {reporter} {dead}")?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        parse_repair_reply(&line)
    })
}

/// Rejoin a network under a previously assigned id after a restart.
/// The reply lists the alive neighbors to dial (same format as a
/// bootstrap join).
pub fn rejoin_via_hub(
    hub: SocketAddr,
    id: NodeId,
    listen: SocketAddr,
    cfg: &TcpConfig,
) -> Result<JoinInfo, NetError> {
    retry_request(cfg, || {
        let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
        stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
        stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
        writeln!(stream, "REJOIN {id} {listen}")?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        parse_join_reply(&line)
    })
}

/// Tell a (presumed stale) hub that the caller now holds the role at
/// `epoch`. Returns `Ok(true)` when the hub stepped down, `Ok(false)`
/// when it rejected the claim as stale, and `Err` when it could not be
/// reached — which, for a claim, usually means it is simply dead and
/// there is nothing left to fence.
///
/// Deliberately single-attempt: the retry/backoff machinery of the
/// other helpers exists to ride out a hub that is *not up yet*,
/// whereas a claim targets a hub that is suspected down already.
pub fn claim_hub(hub: SocketAddr, epoch: u64, cfg: &TcpConfig) -> Result<bool, NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "HUBCLAIM {epoch}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    match tokens.as_slice() {
        ["OK", "STEPDOWN", _] => Ok(true),
        ["STALE", _] => Ok(false),
        _ => Err(NetError::Codec(format!("bad claim reply {line:?}"))),
    }
}

/// Ship one [`Message::Telemetry`] frame to the hub's `TELEMETRY`
/// command and return the hub store clock (ns) at ingest. The caller
/// measures the wall time of this call to obtain the RTT fed into its
/// *next* frame. Deliberately single-attempt: telemetry is lossy by
/// design and the next periodic shipment supersedes a dropped one.
pub fn ship_telemetry(
    hub: SocketAddr,
    frame: &Message,
    cfg: &TcpConfig,
) -> Result<u64, NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "TELEMETRY")?;
    write_frame(&mut stream, frame)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    match tokens.as_slice() {
        ["OK", t] => t
            .parse()
            .map_err(|_| NetError::Codec(format!("bad hub clock {t:?}"))),
        _ => Err(NetError::Codec(format!("bad telemetry reply {line:?}"))),
    }
}

/// A live job-result stream: the client half of a `JOB` connection
/// after the hub's registered [`JobHandler`] accepted the submission.
/// Frames arrive in order: one `JobAccept`, zero or more
/// `JobImproved` (strictly improving lengths — anytime semantics),
/// and a terminal `JobDone`.
#[derive(Debug)]
pub struct JobStream {
    reader: BufReader<TcpStream>,
}

impl JobStream {
    /// Block for the next frame of the stream. After a `JobDone` the
    /// hub closes the connection and further calls return an error.
    pub fn next_frame(&mut self) -> Result<Message, NetError> {
        read_frame(&mut self.reader)
    }
}

/// Submit a solve job to the hub's `JOB` command and return the
/// assigned job id plus the live result stream. The submission frame's
/// `job` field is ignored — the scheduler assigns the id (returned in
/// the `OK <id>` status line and echoed on every stream frame).
///
/// Errors distinguish a fenced-out hub (`hub moved: MOVED <epoch>` —
/// resubmit to the successor) from an admission rejection
/// (`job rejected: …`, e.g. the tenant's flow budget is exhausted).
pub fn submit_job(
    hub: SocketAddr,
    submit: &Message,
    cfg: &TcpConfig,
) -> Result<(u64, JobStream), NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    // Status line under the handshake deadline; once accepted, the
    // result stream is event-driven (improvements arrive whenever the
    // engine finds them), so reads block without a deadline.
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "JOB")?;
    write_frame(&mut stream, submit)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let tokens: Vec<&str> = line.trim().split(' ').collect();
    match tokens.as_slice() {
        ["OK", id] => {
            let job = id
                .parse()
                .map_err(|_| NetError::Codec(format!("bad job id {id:?}")))?;
            reader.get_ref().set_read_timeout(None).ok();
            Ok((job, JobStream { reader }))
        }
        ["MOVED", ..] => Err(NetError::Codec(format!("hub moved: {}", line.trim()))),
        ["ERR", ..] => Err(NetError::Codec(format!("job rejected: {}", line.trim()))),
        _ => Err(NetError::Codec(format!("bad job reply {line:?}"))),
    }
}

/// Cancel an in-flight job via the hub's `JOB` command. The job's
/// result stream (on its original connection) still terminates with a
/// `JobDone` carrying the best tour found up to the cancellation.
pub fn cancel_job(hub: SocketAddr, job: u64, cfg: &TcpConfig) -> Result<(), NetError> {
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "JOB")?;
    write_frame(
        &mut stream,
        &Message::JobCancel {
            from: 0,
            job,
            reason: 3,
        },
    )?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    match line.trim() {
        "OK" => Ok(()),
        other if other.starts_with("MOVED") => {
            Err(NetError::Codec(format!("hub moved: {other}")))
        }
        other => Err(NetError::Codec(format!("bad cancel reply {other:?}"))),
    }
}

/// Scrape the hub's cluster-merged metrics (`METRICS`): the body is
/// Prometheus text exposition, terminated by connection close.
pub fn scrape_metrics(hub: SocketAddr, cfg: &TcpConfig) -> Result<String, NetError> {
    scrape(hub, "METRICS", cfg)
}

/// Scrape the hub's per-node convergence view (`STATUS`): one
/// `NODE …` line per reporting node.
pub fn scrape_status(hub: SocketAddr, cfg: &TcpConfig) -> Result<String, NetError> {
    scrape(hub, "STATUS", cfg)
}

fn scrape(hub: SocketAddr, cmd: &str, cfg: &TcpConfig) -> Result<String, NetError> {
    use std::io::Read as _;
    let mut stream = TcpStream::connect_timeout(&hub, cfg.connect_timeout)?;
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    stream.set_read_timeout(Some(cfg.handshake_timeout)).ok();
    writeln!(stream, "{cmd}")?;
    stream.flush()?;
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    if body.starts_with("MOVED") {
        return Err(NetError::Codec(format!("hub moved: {}", body.trim())));
    }
    Ok(body)
}

fn retry_request<T>(
    cfg: &TcpConfig,
    mut attempt: impl FnMut() -> Result<T, NetError>,
) -> Result<T, NetError> {
    let mut backoff = cfg.backoff_base;
    let mut last_err = NetError::Closed;
    for n in 0..=cfg.connect_retries {
        if n > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_max);
        }
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn parse_repair_reply(line: &str) -> Result<Vec<(NodeId, SocketAddr)>, NetError> {
    let err = |m: String| NetError::Codec(m);
    let rest = line
        .trim()
        .strip_prefix("REPAIR")
        .ok_or_else(|| err(format!("bad repair reply {line:?}")))?
        .trim();
    let mut assignments = Vec::new();
    for item in rest.split(';').filter(|s| !s.is_empty()) {
        let (nid, addr) = item
            .split_once('@')
            .ok_or_else(|| err(format!("bad assignment {item:?}")))?;
        assignments.push((
            nid.parse().map_err(|_| err("bad assignment id".into()))?,
            addr.parse()
                .map_err(|_| err(format!("bad assignment addr {addr:?}")))?,
        ));
    }
    Ok(assignments)
}

/// A self-healing attachment on a [`TcpEndpoint`]: whenever the
/// endpoint declares a peer down (liveness timeout or connection
/// loss), a background thread reports the death to the lifecycle hub
/// and dials the repair assignments it gets back — so `NodeDriver`
/// sees its neighbor list heal live without knowing about the hub.
/// Dropping (or [`SelfHealing::stop`]-ping) the guard detaches it.
pub struct SelfHealing {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Attach self-healing to an endpoint (see [`SelfHealing`]). Never
/// fails over: a dead hub means deaths go unreported, exactly as
/// pre-migration builds.
pub fn attach_self_healing(ep: &TcpEndpoint, hub: SocketAddr, cfg: TcpConfig) -> SelfHealing {
    attach_self_healing_with_failover(ep, hub, cfg, |_| None)
}

/// [`attach_self_healing`] with hub-failover: when a death report
/// fails and the last successful hub exchange is older than
/// [`TcpConfig::hub_liveness_timeout`], the hub is declared silent and
/// `on_hub_silent` is consulted for a successor address (typically the
/// announced `HUB_CLAIM` winner, or the next entry of a pre-agreed
/// address table). A returned address replaces the hub for this and
/// all subsequent reports; `None` keeps waiting on the old one. With
/// `hub_liveness_timeout: None` the callback is never invoked.
pub fn attach_self_healing_with_failover<F>(
    ep: &TcpEndpoint,
    hub: SocketAddr,
    cfg: TcpConfig,
    on_hub_silent: F,
) -> SelfHealing
where
    F: Fn(NodeId) -> Option<SocketAddr> + Send + 'static,
{
    let handle = ep.handle();
    let (tx, rx) = unbounded::<NodeId>();
    ep.set_peer_down_hook(move |dead| {
        let _ = tx.send(dead);
    });
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("p2p-self-heal".into())
        .spawn(move || {
            let mut hub = hub;
            let mut last_ok = Instant::now();
            while !thread_stop.load(Ordering::Acquire) {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(dead) => {
                        match report_down(hub, handle.node_id(), dead, &cfg) {
                            Ok(assignments) => {
                                last_ok = Instant::now();
                                for (nid, addr) in assignments {
                                    let _ = handle.connect_to(nid, addr);
                                }
                            }
                            Err(_) => {
                                let silent = cfg
                                    .hub_liveness_timeout
                                    .is_some_and(|t| last_ok.elapsed() >= t);
                                if !silent {
                                    continue;
                                }
                                let Some(next) = on_hub_silent(dead) else {
                                    continue;
                                };
                                hub = next;
                                if let Ok(assignments) =
                                    report_down(hub, handle.node_id(), dead, &cfg)
                                {
                                    last_ok = Instant::now();
                                    for (nid, addr) in assignments {
                                        let _ = handle.connect_to(nid, addr);
                                    }
                                }
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        })
        .expect("spawn self-healing thread");
    SelfHealing {
        stop,
        thread: Some(thread),
    }
}

impl SelfHealing {
    /// Detach: stop reporting deaths and join the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SelfHealing {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    /// Minimal job handler for protocol tests: acknowledges the
    /// submission under a fixed id and immediately streams one
    /// improvement plus the terminal frame.
    struct EchoJobs;

    impl JobHandler for EchoJobs {
        fn handle(&self, first: Message, mut stream: TcpStream) -> Result<(), NetError> {
            match first {
                Message::JobSubmit { client, .. } => {
                    let job = crate::message::job_id(client, 0);
                    writeln!(stream, "OK {job}")?;
                    stream.flush()?;
                    write_frame(
                        &mut stream,
                        &Message::JobAccept {
                            from: 0,
                            job,
                            worker: 1,
                        },
                    )?;
                    write_frame(
                        &mut stream,
                        &Message::JobImproved {
                            from: 1,
                            job,
                            length: 10,
                            order: vec![0, 1, 2],
                        },
                    )?;
                    write_frame(
                        &mut stream,
                        &Message::JobDone {
                            from: 1,
                            job,
                            reason: 0,
                            length: 10,
                            order: vec![0, 1, 2],
                        },
                    )?;
                    Ok(())
                }
                Message::JobCancel { .. } => {
                    writeln!(stream, "OK")?;
                    stream.flush()?;
                    Ok(())
                }
                _ => Err(NetError::Codec("unexpected frame".into())),
            }
        }
    }

    fn sample_submit(client: u64) -> Message {
        Message::JobSubmit {
            from: 0,
            job: 0,
            client,
            seed: 1,
            kicks: 4,
            deadline_ms: 0,
            target: i64::MIN,
            payload_kind: 2,
            payload: b"[[0,0],[1,0],[1,1],[0,1]]".to_vec(),
            checkpoint: vec![],
        }
    }

    #[test]
    fn job_command_streams_frames_and_is_moved_fenced() {
        let cfg = TcpConfig::default();
        let hub = LifecycleHub::start("127.0.0.1:0", 2, Topology::Ring).unwrap();
        // Before a handler is attached the command answers ERR.
        let err = submit_job(hub.addr(), &sample_submit(9), &cfg).unwrap_err();
        assert!(err.to_string().contains("no job service"), "{err}");

        hub.set_job_handler(Arc::new(EchoJobs));
        let (job, mut stream) = submit_job(hub.addr(), &sample_submit(9), &cfg).unwrap();
        assert_eq!(job, crate::message::job_id(9, 0));
        assert!(matches!(
            stream.next_frame().unwrap(),
            Message::JobAccept { job: j, .. } if j == job
        ));
        assert!(matches!(
            stream.next_frame().unwrap(),
            Message::JobImproved { length: 10, .. }
        ));
        assert!(matches!(
            stream.next_frame().unwrap(),
            Message::JobDone { reason: 0, .. }
        ));
        cancel_job(hub.addr(), job, &cfg).unwrap();

        // A junk frame after the JOB line must not reach the handler.
        let mut raw = TcpStream::connect(hub.addr()).unwrap();
        writeln!(raw, "JOB").unwrap();
        write_frame(&mut raw, &Message::Ping { from: 0 }).unwrap();
        let mut line = String::new();
        let _ = BufReader::new(raw).read_line(&mut line);
        assert!(line.is_empty(), "non-job frame must be dropped, got {line:?}");

        // After a newer HUBCLAIM the holder is fenced: job admission is
        // redirected exactly like METRICS/STATUS, before any frame is
        // read or scheduled.
        assert!(claim_hub(hub.addr(), 1, &cfg).unwrap());
        let err = submit_job(hub.addr(), &sample_submit(9), &cfg).unwrap_err();
        assert!(err.to_string().contains("hub moved"), "{err}");
        let err = cancel_job(hub.addr(), job, &cfg).unwrap_err();
        assert!(err.to_string().contains("hub moved"), "{err}");
    }

    #[test]
    fn parse_reply_with_neighbors() {
        let info =
            parse_join_reply("ID 3 EXPECT 8 NEIGHBORS 1@127.0.0.1:9001;2@127.0.0.1:9002\n")
                .unwrap();
        assert_eq!(info.id, 3);
        assert_eq!(info.expected, 8);
        assert_eq!(info.neighbors.len(), 2);
        assert_eq!(info.neighbors[0].0, 1);
    }

    #[test]
    fn parse_reply_empty_neighbors() {
        let info = parse_join_reply("ID 0 EXPECT 8 NEIGHBORS \n").unwrap();
        assert_eq!(info.id, 0);
        assert!(info.neighbors.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_join_reply("HELLO WORLD").is_err());
        assert!(parse_join_reply("ID x EXPECT 8 NEIGHBORS ").is_err());
    }

    #[test]
    fn hub_assigns_sequential_ids_and_earlier_neighbors() {
        let hub = Hub::start("127.0.0.1:0", 4, Topology::Ring).unwrap();
        let addr = hub.addr();
        let mut infos = Vec::new();
        for i in 0..4 {
            let listen: SocketAddr = format!("127.0.0.1:{}", 40000 + i).parse().unwrap();
            infos.push(join_via_hub(addr, listen).unwrap());
        }
        hub.join();
        assert_eq!(infos[0].id, 0);
        assert!(infos[0].neighbors.is_empty());
        // Ring: node 3 neighbors {2, 0}, both already joined.
        assert_eq!(infos[3].id, 3);
        let ids: Vec<NodeId> = infos[3].neighbors.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2) && ids.contains(&0));
    }

    #[test]
    fn hub_records_join_and_reject_events() {
        let obs = Obs::for_node(u32::MAX);
        let hub = Hub::start_with("127.0.0.1:0", 2, Topology::Ring, obs.clone()).unwrap();
        let addr = hub.addr();
        // A garbage request first: must be rejected, not crash the hub.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            writeln!(s, "NONSENSE").unwrap();
        }
        // Give the hub a moment to process the bad request before the
        // real joins race it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        join_via_hub(addr, "127.0.0.1:40020".parse().unwrap()).unwrap();
        join_via_hub(addr, "127.0.0.1:40021".parse().unwrap()).unwrap();
        hub.join();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("hub.joins"), 2);
        assert_eq!(snap.counter("hub.rejects"), 1);
        if obs_api::ENABLED {
            let events = obs.events();
            assert_eq!(events.iter().filter(|e| e.kind == "hub.join").count(), 2);
            assert_eq!(events.iter().filter(|e| e.kind == "hub.reject").count(), 1);
            assert_eq!(
                events.iter().filter(|e| e.kind == "hub.complete").count(),
                1
            );
        }
    }

    #[test]
    fn join_dead_hub_fails_within_retry_budget() {
        // Grab a port that was live and is now certainly dead.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = TcpConfig::fast_fail();
        let start = std::time::Instant::now();
        let res = join_via_hub_with(dead, "127.0.0.1:40000".parse().unwrap(), &cfg);
        assert!(res.is_err(), "joined a dead hub");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "dead-hub join took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn silent_connector_does_not_wedge_hub() {
        let hub = Hub::start("127.0.0.1:0", 2, Topology::Ring).unwrap();
        let addr = hub.addr();
        // Connect and say nothing: serve_one must time out and move on.
        let _silent = TcpStream::connect(addr).unwrap();
        // Wait longer than the hub's handshake timeout so the joins
        // don't race the silent connector's eviction.
        let cfg = TcpConfig {
            handshake_timeout: std::time::Duration::from_secs(10),
            ..Default::default()
        };
        let a = join_via_hub_with(addr, "127.0.0.1:40010".parse().unwrap(), &cfg).unwrap();
        let b = join_via_hub_with(addr, "127.0.0.1:40011".parse().unwrap(), &cfg).unwrap();
        assert_eq!((a.id, b.id), (0, 1));
        hub.join();
    }

    /// Satellite bugfix: malformed and truncated JOIN lines, and a
    /// client that disconnects mid-handshake, must not consume any of
    /// the `expected` slots — the full network still bootstraps.
    #[test]
    fn bad_handshakes_do_not_consume_slots() {
        let hub = Hub::start("127.0.0.1:0", 3, Topology::Ring).unwrap();
        let addr = hub.addr();
        {
            // Truncated request (no newline), then disconnect.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"JOI").unwrap();
        }
        {
            // Disconnect before sending anything.
            let _s = TcpStream::connect(addr).unwrap();
        }
        {
            // Malformed but complete line.
            let mut s = TcpStream::connect(addr).unwrap();
            writeln!(s, "JOIN not-an-address").unwrap();
        }
        // All three expected nodes still get ids 0..3.
        let mut ids = Vec::new();
        for i in 0..3 {
            let listen: SocketAddr = format!("127.0.0.1:{}", 40030 + i).parse().unwrap();
            ids.push(join_via_hub(addr, listen).unwrap().id);
        }
        hub.join();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    /// The lifecycle protocol at the wire level: bootstrap, a death
    /// with repair assignments for every reporter, and a rejoin.
    #[test]
    fn lifecycle_hub_serves_down_and_rejoin() {
        let obs = Obs::for_node(u32::MAX - 1);
        let mut hub =
            LifecycleHub::start_with("127.0.0.1:0", 4, Topology::Ring, obs.clone()).unwrap();
        let addr = hub.addr();
        let cfg = TcpConfig::default();
        let listens: Vec<SocketAddr> = (0..4)
            .map(|i| format!("127.0.0.1:{}", 40040 + i).parse().unwrap())
            .collect();
        for (i, &l) in listens.iter().enumerate() {
            assert_eq!(join_via_hub(addr, l).unwrap().id, i);
        }

        // Node 2 dies; ring neighbors 1 and 3 both report. The repair
        // edge 1–3 is dialed by its lower endpoint only.
        let from_1 = report_down(addr, 1, 2, &cfg).unwrap();
        assert_eq!(from_1, vec![(3, listens[3])]);
        let from_3 = report_down(addr, 3, 2, &cfg).unwrap();
        assert!(from_3.is_empty());
        // A duplicate report is idempotent.
        assert_eq!(report_down(addr, 1, 2, &cfg).unwrap(), vec![(3, listens[3])]);
        // A bystander that never knew the dead node gets nothing.
        assert!(report_down(addr, 0, 2, &cfg).unwrap().is_empty());

        // Node 2 rejoins from a new port and is told its alive
        // static-topology neighbors.
        let new_listen: SocketAddr = "127.0.0.1:40049".parse().unwrap();
        let info = rejoin_via_hub(addr, 2, new_listen, &cfg).unwrap();
        assert_eq!(info.id, 2);
        let mut back: Vec<NodeId> = info.neighbors.iter().map(|&(i, _)| i).collect();
        back.sort_unstable();
        assert_eq!(back, vec![1, 3]);

        // Garbage is rejected without wedging the hub.
        assert!(report_down(addr, 9, 9, &TcpConfig::fast_fail()).is_err());
        hub.stop();

        let snap = obs.snapshot();
        assert_eq!(snap.counter("hub.joins"), 4);
        assert_eq!(snap.counter("hub.downs"), 1);
        assert_eq!(snap.counter("hub.rejoins"), 1);
        if obs_api::ENABLED {
            let events = obs.events();
            assert!(events.iter().any(|e| e.kind == "hub.down"));
            assert!(events.iter().any(|e| e.kind == "hub.repair"));
            assert!(events.iter().any(|e| e.kind == "hub.rejoin"));
            assert!(events.iter().any(|e| e.kind == "hub.complete"));
        }
    }

    /// End-to-end self-healing over real sockets: a 4-ring loses node
    /// 2; liveness detects it, the hub hands out the 1–3 repair edge,
    /// and the survivors' neighbor lists heal without any manual
    /// rewiring. The dead node then rejoins and is rewired in.
    #[test]
    fn self_healing_ring_survives_kill_and_rejoin() {
        let mut hub = LifecycleHub::start("127.0.0.1:0", 4, Topology::Ring).unwrap();
        let hub_addr = hub.addr();
        let cfg = TcpConfig::fast_fail().with_liveness(Duration::from_millis(400));

        let mut eps: Vec<TcpEndpoint> = Vec::new();
        let mut healers = Vec::new();
        for _ in 0..4 {
            let mut ep = TcpEndpoint::bind_with(usize::MAX, "127.0.0.1:0", cfg.clone()).unwrap();
            let info = join_via_hub(hub_addr, ep.listen_addr()).unwrap();
            ep.set_id(info.id);
            for (nid, addr) in &info.neighbors {
                ep.connect_to(*nid, *addr).unwrap();
            }
            healers.push(attach_self_healing(&ep, hub_addr, cfg.clone()));
            eps.push(ep);
        }
        assert!(crate::util::wait_until(
            || eps.iter().all(|e| e.neighbors().len() == 2),
            Duration::from_secs(5)
        ));

        // Kill node 2 without a Leave (crash semantics).
        let mut dead = eps.remove(2);
        healers.remove(2).stop();
        dead.shutdown();

        // Ring neighbors 1 and 3 must detect the death and acquire the
        // repair edge 1–3; node 0 keeps its original neighbors.
        assert!(
            crate::util::wait_until(
                || {
                    let n1 = eps[1].neighbors();
                    let n3 = eps[2].neighbors();
                    n1.contains(&3) && n3.contains(&1) && !n1.contains(&2) && !n3.contains(&2)
                },
                Duration::from_secs(10)
            ),
            "repair edge 1-3 never appeared: 1->{:?} 3->{:?}",
            eps[1].neighbors(),
            eps[2].neighbors()
        );

        // Node 2 rejoins under its old id from a fresh socket.
        let mut back = TcpEndpoint::bind_with(usize::MAX, "127.0.0.1:0", cfg.clone()).unwrap();
        let info = rejoin_via_hub(hub_addr, 2, back.listen_addr(), &cfg).unwrap();
        assert_eq!(info.id, 2);
        back.set_id(2);
        for (nid, addr) in &info.neighbors {
            back.connect_to(*nid, *addr).unwrap();
        }
        assert!(crate::util::wait_until(
            || {
                back.neighbors().len() == 2
                    && eps[1].neighbors().contains(&2)
                    && eps[2].neighbors().contains(&2)
            },
            Duration::from_secs(5)
        ));

        for h in &mut healers {
            h.stop();
        }
        back.shutdown();
        for e in &mut eps {
            e.shutdown();
        }
        hub.stop();
    }

    /// The live telemetry plane over real sockets: nodes ship frames
    /// to the hub's `TELEMETRY` command mid-run; `METRICS` returns the
    /// cluster-merged Prometheus view and `STATUS` the per-node
    /// convergence lines; a stepped-down hub redirects both.
    #[test]
    fn telemetry_ship_and_scrape_over_sockets() {
        let mut hub = LifecycleHub::start("127.0.0.1:0", 4, Topology::Ring).unwrap();
        let addr = hub.addr();
        let cfg = TcpConfig::default();
        hub.telemetry().set_reference(Some(100));

        let f0 = Message::Telemetry {
            from: 0,
            t_ns: 10,
            rtt_ns: 0,
            best_len: 110,
            clk_calls: 42,
            stalled: false,
            counters: vec![("clk.calls".into(), 42)],
            gauges: vec![("node.best".into(), 110)],
            events_jsonl: vec![],
        };
        let t0 = ship_telemetry(addr, &f0, &cfg).unwrap();
        let f1 = Message::Telemetry {
            from: 1,
            t_ns: 11,
            rtt_ns: 5,
            best_len: 100,
            clk_calls: 8,
            stalled: true,
            counters: vec![("clk.calls".into(), 8)],
            gauges: vec![("node.best".into(), 100)],
            events_jsonl: vec![],
        };
        let t1 = ship_telemetry(addr, &f1, &cfg).unwrap();
        assert!(t1 >= t0, "hub clock went backwards: {t0} -> {t1}");

        let metrics = scrape_metrics(addr, &cfg).unwrap();
        assert!(metrics.contains("clk_calls 50"), "{metrics}");
        assert!(metrics.contains("node_best 210"), "{metrics}");
        assert!(metrics.contains("telemetry_nodes_reporting 2"), "{metrics}");
        assert!(metrics.contains("telemetry_nodes_stalled 1"), "{metrics}");
        let status = scrape_status(addr, &cfg).unwrap();
        assert!(status.contains("NODE 0 BEST 110 GAP 10.0000"), "{status}");
        assert!(status.contains("NODE 1 BEST 100 GAP 0.0000"), "{status}");
        assert!(status.lines().any(|l| l.starts_with("NODE 1") && l.contains("STALLED 1")));

        // The in-process view is the same store the wire serves.
        assert_eq!(hub.telemetry().nodes(), vec![0, 1]);

        // A fenced-out hub redirects telemetry traffic like any other
        // lifecycle request.
        assert!(claim_hub(addr, 1, &cfg).unwrap());
        assert!(scrape_metrics(addr, &cfg).is_err());
        assert!(ship_telemetry(addr, &f0, &cfg).is_err());
        hub.stop();
    }

    #[test]
    fn parse_repair_replies() {
        assert_eq!(parse_repair_reply("REPAIR \n").unwrap(), vec![]);
        assert_eq!(
            parse_repair_reply("REPAIR 3@127.0.0.1:9003;5@127.0.0.1:9005\n").unwrap(),
            vec![
                (3, "127.0.0.1:9003".parse().unwrap()),
                (5, "127.0.0.1:9005".parse().unwrap()),
            ]
        );
        assert!(parse_repair_reply("NOPE").is_err());
        assert!(parse_repair_reply("REPAIR x@y").is_err());
    }

    /// `HUBCLAIM` epoch fencing over real sockets: a newer claim makes
    /// the hub step down and redirect lifecycle traffic; equal or
    /// older claims are rejected as stale.
    #[test]
    fn hubclaim_fences_by_epoch_over_sockets() {
        let obs = Obs::for_node(u32::MAX - 2);
        let mut hub =
            LifecycleHub::start_with("127.0.0.1:0", 4, Topology::Ring, obs.clone()).unwrap();
        let addr = hub.addr();
        let cfg = TcpConfig::fast_fail();

        assert_eq!(hub.epoch(), 0);
        assert!(!hub.stepped_down());
        assert!(claim_hub(addr, 1, &cfg).unwrap(), "first claim must win");
        assert_eq!(hub.epoch(), 1);
        assert!(hub.stepped_down());
        // Re-delivery and older epochs are fenced.
        assert!(!claim_hub(addr, 1, &cfg).unwrap());
        assert!(!claim_hub(addr, 0, &cfg).unwrap());
        // A stepped-down hub redirects lifecycle requests (`MOVED`),
        // which clients surface as an error and treat as failover.
        assert!(report_down(addr, 1, 2, &cfg).is_err());
        assert!(rejoin_via_hub(addr, 2, "127.0.0.1:41000".parse().unwrap(), &cfg).is_err());
        // Claims keep working after step-down: a yet-newer claimer can
        // still fence the epoch forward.
        assert!(claim_hub(addr, 5, &cfg).unwrap());
        assert_eq!(hub.epoch(), 5);
        hub.stop();

        let snap = obs.snapshot();
        assert_eq!(snap.counter("hub.step_downs"), 2);
        assert_eq!(snap.counter("hub.stale_claims"), 2);
        if obs_api::ENABLED {
            assert!(obs.events().iter().any(|e| e.kind == "hub.step_down"));
        }
    }

    /// A successor started from a replicated membership log serves
    /// DOWN and REJOIN exactly where the dead hub left off: the repair
    /// memo survives the migration, and a rejoiner re-announces its
    /// address to the new hub.
    #[test]
    fn successor_hub_restores_state_from_log() {
        // What every node's replica would hold after node 2 died.
        let mut replica = Replica::bootstrap(Topology::Ring, 4);
        replica.note_down(2);
        let listens: Vec<Option<SocketAddr>> = (0..4)
            .map(|i| format!("127.0.0.1:{}", 41010 + i).parse().ok())
            .collect();

        let mut hub = LifecycleHub::start_from_log(
            "127.0.0.1:0",
            4,
            Topology::Ring,
            replica.log(),
            1,
            listens.clone(),
            Obs::disabled(),
        )
        .unwrap();
        let addr = hub.addr();
        let cfg = TcpConfig::fast_fail();
        assert_eq!(hub.epoch(), 1);

        // The death of 2 predates the migration, yet reporters still
        // receive their repair assignments from the replayed memo.
        assert_eq!(
            report_down(addr, 1, 2, &cfg).unwrap(),
            vec![(3, listens[3].unwrap())]
        );
        assert!(report_down(addr, 3, 2, &cfg).unwrap().is_empty());

        // The rejoin path also works post-migration.
        let back: SocketAddr = "127.0.0.1:41019".parse().unwrap();
        let info = rejoin_via_hub(addr, 2, back, &cfg).unwrap();
        assert_eq!(info.id, 2);
        let mut ids: Vec<NodeId> = info.neighbors.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
        hub.stop();
    }

    /// End-to-end hub failover over real sockets: the original hub
    /// dies, a node death goes unreportable, the healer declares the
    /// hub silent past `hub_liveness_timeout`, fails over to the
    /// successor (started from the replicated log), and the repair
    /// edge still appears — the topology heals with no hub downtime
    /// visible to the search layer.
    #[test]
    fn failover_healer_switches_to_successor_hub() {
        let mut hub = LifecycleHub::start("127.0.0.1:0", 4, Topology::Ring).unwrap();
        let hub_addr = hub.addr();
        let cfg = TcpConfig::fast_fail()
            .with_liveness(Duration::from_millis(400))
            .with_hub_liveness(Duration::from_millis(1));

        // The successor hub every healer fails over to, primed with
        // the replicated bootstrap log (4 joins, no deaths yet).
        let replica = Replica::bootstrap(Topology::Ring, 4);

        let mut eps: Vec<TcpEndpoint> = Vec::new();
        for _ in 0..4 {
            let mut ep = TcpEndpoint::bind_with(usize::MAX, "127.0.0.1:0", cfg.clone()).unwrap();
            let info = join_via_hub(hub_addr, ep.listen_addr()).unwrap();
            ep.set_id(info.id);
            for (nid, addr) in &info.neighbors {
                ep.connect_to(*nid, *addr).unwrap();
            }
            eps.push(ep);
        }
        let listens: Vec<Option<SocketAddr>> = eps.iter().map(|e| Some(e.listen_addr())).collect();
        let mut successor = LifecycleHub::start_from_log(
            "127.0.0.1:0",
            4,
            Topology::Ring,
            replica.log(),
            1,
            listens,
            Obs::disabled(),
        )
        .unwrap();
        let successor_addr = successor.addr();
        let mut healers: Vec<SelfHealing> = eps
            .iter()
            .map(|ep| {
                attach_self_healing_with_failover(ep, hub_addr, cfg.clone(), move |_| {
                    Some(successor_addr)
                })
            })
            .collect();
        assert!(crate::util::wait_until(
            || eps.iter().all(|e| e.neighbors().len() == 2),
            Duration::from_secs(5)
        ));

        // The original hub dies first, then node 2 crashes: deaths can
        // only be served by the successor.
        hub.stop();
        let mut dead = eps.remove(2);
        healers.remove(2).stop();
        dead.shutdown();

        assert!(
            crate::util::wait_until(
                || {
                    let n1 = eps[1].neighbors();
                    let n3 = eps[2].neighbors();
                    n1.contains(&3) && n3.contains(&1) && !n1.contains(&2) && !n3.contains(&2)
                },
                Duration::from_secs(10)
            ),
            "repair edge 1-3 never appeared after failover: 1->{:?} 3->{:?}",
            eps[1].neighbors(),
            eps[2].neighbors()
        );

        for h in &mut healers {
            h.stop();
        }
        for e in &mut eps {
            e.shutdown();
        }
        successor.stop();
    }

    #[test]
    fn bootstrap_local_wires_full_topology() {
        let mut eps = bootstrap_local(4, Topology::Ring).unwrap();
        // Give reverse edges a moment to register.
        crate::util::wait_until(
            || eps.iter().all(|e| e.neighbors().len() == 2),
            std::time::Duration::from_secs(3),
        );
        for (i, e) in eps.iter().enumerate() {
            let mut nb = e.neighbors();
            nb.sort_unstable();
            let mut want = Topology::Ring.neighbors(i, 4);
            want.sort_unstable();
            assert_eq!(nb, want, "node {i}");
        }
        for e in &mut eps {
            e.shutdown();
        }
    }
}
