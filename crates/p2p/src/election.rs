//! Hub migration: a replicated membership log and a deterministic
//! bully-style election.
//!
//! The paper's hub is "only a central component during bootstrap"
//! (§2.2), but the [`crate::hub::LifecycleHub`] extended it into a
//! long-lived repair coordinator — a single point of repair. This
//! module makes the hub role migratable:
//!
//! * [`MembershipLog`] — an append-only log of JOIN / DOWN / REJOIN /
//!   REPAIR facts. Every node keeps a [`Replica`]; entries gossip
//!   piggy-back on the existing broadcast fabric
//!   ([`crate::Message::LogSnapshot`]) and the full log is
//!   snapshot-transferable through the wire codec, so any survivor can
//!   reconstruct the hub's repair state.
//! * **Election rule** — the lowest *alive* node id wins, tie-broken
//!   by join epoch (the node's incarnation number; relevant only when
//!   a stale incarnation of the same id races its own rejoin). Every
//!   replica evaluates the same rule over the same log, so no
//!   coordination round is needed: the rule *is* the coordination.
//! * **Epoch fencing** — the winner announces
//!   [`crate::Message::HubClaim`] with `epoch = current + 1`. A claim
//!   is accepted iff its epoch is newer, or equally new with a lower
//!   claimer id (the concurrent-candidate tie-break). Stale hubs see a
//!   newer epoch and step down; re-deliveries are rejected, which is
//!   what terminates claim-forwarding epidemics.
//!
//! Entries carry SWIM-style **incarnation numbers**: `DOWN(v, i)` only
//! applies while `v`'s incarnation is still `i`, so a death report
//! that was delayed past the node's rejoin cannot re-kill it.
//! [`Replica::apply`] is idempotent and returns only the entries that
//! changed state — forwarding exactly that subset both bounds gossip
//! and terminates the epidemic.

use std::collections::BTreeMap;

use crate::message::NodeId;
use crate::topology::{Membership, Topology};

/// One replicated membership fact.
///
/// Wire encoding (inside [`crate::Message::LogSnapshot`]): a `kind`
/// byte (1 = JOIN, 2 = DOWN, 3 = REJOIN, 4 = REPAIR) followed by two
/// `u64` LE fields — 17 bytes per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEntry {
    /// `node` joined the network at bootstrap with initial
    /// incarnation `epoch` (always 0 today; recorded so a snapshot
    /// doubles as the full roster).
    Join {
        /// Joining node.
        node: NodeId,
        /// Initial incarnation.
        epoch: u64,
    },
    /// `node` was observed dead while at incarnation `inc`.
    Down {
        /// Dead node.
        node: NodeId,
        /// Incarnation the report refers to; stale reports (from
        /// before a later rejoin) no longer match and are ignored.
        inc: u64,
    },
    /// `node` came back from incarnation `inc`; applying bumps it to
    /// `inc + 1`.
    Rejoin {
        /// Rejoining node.
        node: NodeId,
        /// Incarnation the node is returning from.
        inc: u64,
    },
    /// Repair edge `a — b` was added (clique rule around a death).
    Repair {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
}

/// Append-only log of membership facts. Order within one log is a
/// valid causal order for the facts its owner applied, so shipping the
/// whole log (a snapshot) and replaying it in order reconstructs the
/// owner's view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipLog {
    entries: Vec<LogEntry>,
}

impl MembershipLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fact has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one entry (the caller has already applied it).
    pub fn push(&mut self, e: LogEntry) {
        self.entries.push(e);
    }
}

/// Who a replica currently believes is hub, fenced by claim epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionState {
    hub: Option<NodeId>,
    epoch: u64,
}

impl ElectionState {
    /// Bootstrap state: `hub` holds the role at epoch 0 (by the hub
    /// bootstrap convention this is node 0 — the node the original
    /// central hub handed id 0).
    pub fn bootstrap(hub: NodeId) -> Self {
        ElectionState {
            hub: Some(hub),
            epoch: 0,
        }
    }

    /// Current hub, if any claim (or the bootstrap) is in force.
    pub fn hub(&self) -> Option<NodeId> {
        self.hub
    }

    /// Epoch of the claim in force.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Observe `HUB_CLAIM(claimer, epoch)`. Accepts — and returns
    /// `true` — iff the claim is strictly newer, or equally new with a
    /// lower claimer id (concurrent candidates converge on the lowest
    /// id). Re-delivery of the claim in force returns `false`, which
    /// is what stops claim-forwarding epidemics.
    pub fn observe_claim(&mut self, claimer: NodeId, epoch: u64) -> bool {
        let newer = epoch > self.epoch
            || (epoch == self.epoch && self.hub.map(|h| claimer < h).unwrap_or(true));
        if newer {
            self.hub = Some(claimer);
            self.epoch = epoch;
        }
        newer
    }
}

/// One node's replica of the membership log: the log itself, the
/// [`Membership`] view obtained by replaying it, per-node incarnation
/// numbers, and the election state.
///
/// Replicas at different nodes may hold the log in different orders
/// (gossip is not ordered), but [`Replica::apply`]'s incarnation
/// fencing makes the *state* — alive set, adjacency, incarnations —
/// convergent: it is a join-semilattice over the set of applied facts.
#[derive(Debug, Clone)]
pub struct Replica {
    log: MembershipLog,
    view: Membership,
    inc: Vec<u64>,
    state: ElectionState,
    /// Last repair group per dead node (the hub's `repair_memo`
    /// equivalent), so a promoted survivor can answer duplicate DOWN
    /// reports idempotently. Removed on rejoin.
    repair_groups: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Replica {
    /// Fresh replica: full static topology, everyone alive at
    /// incarnation 0, node 0 holding the hub role at epoch 0 (the hub
    /// bootstrap convention). The log is seeded with one JOIN entry
    /// per node so a snapshot carries the roster.
    pub fn bootstrap(topo: Topology, n: usize) -> Self {
        let mut log = MembershipLog::new();
        for node in 0..n {
            log.push(LogEntry::Join { node, epoch: 0 });
        }
        Replica {
            log,
            view: Membership::new(topo, n),
            inc: vec![0; n],
            state: ElectionState::bootstrap(0),
            repair_groups: BTreeMap::new(),
        }
    }

    /// Reconstruct a replica from a shipped log (a rejoiner or a
    /// promoted hub rebuilding state). Entries are applied in order
    /// with the usual fencing, so replaying a valid log is exact.
    pub fn from_entries(topo: Topology, n: usize, entries: &[LogEntry]) -> Self {
        let mut r = Replica::bootstrap(topo, n);
        r.apply(entries);
        r
    }

    /// The replayed membership view.
    pub fn view(&self) -> &Membership {
        &self.view
    }

    /// The full log (snapshot-transferable via the wire codec).
    pub fn log(&self) -> &MembershipLog {
        &self.log
    }

    /// Current incarnation of `id` (0 until its first rejoin).
    pub fn incarnation(&self, id: NodeId) -> u64 {
        self.inc.get(id).copied().unwrap_or(0)
    }

    /// Last repair group recorded per dead node.
    pub fn repair_groups(&self) -> &BTreeMap<NodeId, Vec<NodeId>> {
        &self.repair_groups
    }

    /// Hub currently believed in force.
    pub fn hub(&self) -> Option<NodeId> {
        self.state.hub()
    }

    /// Epoch of the hub claim in force.
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// Is the believed hub actually alive in this replica's view?
    pub fn hub_alive(&self) -> bool {
        self.state.hub().is_some_and(|h| self.view.is_alive(h))
    }

    /// The deterministic election rule: lowest alive node id,
    /// tie-broken by join epoch (incarnation). Ids are unique, so the
    /// epoch only matters as the fencing component carried into the
    /// winner's claim.
    pub fn winner(&self) -> Option<NodeId> {
        self.view
            .alive_nodes()
            .into_iter()
            .min_by_key(|&v| (v, self.incarnation(v)))
    }

    /// Observe a `HUB_CLAIM`; see [`ElectionState::observe_claim`].
    pub fn observe_claim(&mut self, claimer: NodeId, epoch: u64) -> bool {
        self.state.observe_claim(claimer, epoch)
    }

    /// Locally observed death (from `take_peer_downs` — the in-memory
    /// analogue of the TCP Ping/Pong last-seen clock expiring).
    /// Returns the new log entries (the DOWN plus the derived REPAIR
    /// edges) for gossiping; empty if the death was already known.
    pub fn note_down(&mut self, dead: NodeId) -> Vec<LogEntry> {
        if dead >= self.view.len() || !self.view.is_alive(dead) {
            return Vec::new();
        }
        let mut out = vec![LogEntry::Down {
            node: dead,
            inc: self.incarnation(dead),
        }];
        let group = self.view.fail(dead);
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                out.push(LogEntry::Repair { a, b });
            }
        }
        self.repair_groups.insert(dead, group);
        for &e in &out {
            self.log.push(e);
        }
        out
    }

    /// Locally observed rejoin (e.g. a `BestRequest` from a node this
    /// replica believed dead). Returns the new log entries for
    /// gossiping; empty if the node was already alive.
    pub fn note_rejoin(&mut self, node: NodeId) -> Vec<LogEntry> {
        if node >= self.view.len() || self.view.is_alive(node) {
            return Vec::new();
        }
        let entry = LogEntry::Rejoin {
            node,
            inc: self.incarnation(node),
        };
        self.apply_one(entry);
        vec![entry]
    }

    /// Apply gossiped or snapshot entries in order. Returns the subset
    /// that changed state — the entries worth forwarding onward; the
    /// rest were already known (idempotence terminates the epidemic).
    pub fn apply(&mut self, entries: &[LogEntry]) -> Vec<LogEntry> {
        entries
            .iter()
            .copied()
            .filter(|&e| self.apply_one(e))
            .collect()
    }

    fn apply_one(&mut self, e: LogEntry) -> bool {
        let n = self.view.len();
        let changed = match e {
            // Roster facts: every replica bootstraps with the full
            // roster already joined, so these are always known.
            LogEntry::Join { .. } => false,
            LogEntry::Down { node, inc } => {
                if node < n && self.view.is_alive(node) && self.inc[node] == inc {
                    let group = self.view.fail(node);
                    self.repair_groups.insert(node, group);
                    true
                } else {
                    false
                }
            }
            LogEntry::Rejoin { node, inc } => {
                if node < n && !self.view.is_alive(node) && self.inc[node] == inc {
                    self.view.rejoin(node);
                    self.inc[node] = inc + 1;
                    self.repair_groups.remove(&node);
                    true
                } else {
                    false
                }
            }
            LogEntry::Repair { a, b } => a < n && b < n && self.view.wire(a, b),
        };
        if changed {
            self.log.push(e);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica8() -> Replica {
        Replica::bootstrap(Topology::Hypercube, 8)
    }

    #[test]
    fn bootstrap_hub_is_node_zero_at_epoch_zero() {
        let r = replica8();
        assert_eq!(r.hub(), Some(0));
        assert_eq!(r.epoch(), 0);
        assert!(r.hub_alive());
        assert_eq!(r.winner(), Some(0));
        assert_eq!(r.log().len(), 8, "roster JOIN entries");
    }

    #[test]
    fn winner_is_min_alive_id() {
        let mut r = replica8();
        r.note_down(0);
        assert_eq!(r.winner(), Some(1));
        r.note_down(1);
        r.note_down(2);
        assert_eq!(r.winner(), Some(3));
        assert!(!r.hub_alive());
    }

    #[test]
    fn claims_fence_by_epoch_then_id() {
        let mut s = ElectionState::bootstrap(0);
        assert!(s.observe_claim(1, 1), "newer epoch accepted");
        assert!(!s.observe_claim(1, 1), "re-delivery rejected");
        assert!(!s.observe_claim(2, 1), "same epoch, higher id rejected");
        assert!(s.observe_claim(0, 1), "same epoch, lower id wins");
        assert!(!s.observe_claim(5, 0), "stale epoch rejected");
        assert_eq!(s.hub(), Some(0));
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn note_down_emits_down_plus_repair_entries_once() {
        let mut r = replica8();
        let entries = r.note_down(3);
        // 3's hypercube neighbors {1, 2, 7} → one DOWN + C(3,2) repairs.
        assert_eq!(entries.len(), 1 + 3);
        assert_eq!(entries[0], LogEntry::Down { node: 3, inc: 0 });
        assert!(r.note_down(3).is_empty(), "idempotent");
        assert_eq!(r.repair_groups()[&3], vec![1, 2, 7]);
    }

    #[test]
    fn apply_is_idempotent_and_returns_changed_subset() {
        let mut a = replica8();
        let mut b = replica8();
        let entries = a.note_down(5);
        let changed = b.apply(&entries);
        // The DOWN re-derives the clique, so the REPAIR entries are
        // already satisfied when they apply: only the DOWN is fresh.
        assert_eq!(changed, vec![LogEntry::Down { node: 5, inc: 0 }]);
        assert!(b.apply(&entries).is_empty(), "second apply is a no-op");
        assert_eq!(b.view().alive_nodes(), a.view().alive_nodes());
        assert_eq!(b.repair_groups(), a.repair_groups());
    }

    #[test]
    fn stale_down_after_rejoin_is_fenced_by_incarnation() {
        let mut r = replica8();
        let stale = r.note_down(2); // DOWN(2, inc 0)
        r.note_rejoin(2); // inc 2 → 1
        assert!(r.view().is_alive(2));
        // The old death report resurfaces via gossip: must not re-kill.
        assert!(r.apply(&stale).is_empty());
        assert!(r.view().is_alive(2));
        assert_eq!(r.incarnation(2), 1);
    }

    #[test]
    fn snapshot_replay_reconstructs_view() {
        let mut a = replica8();
        a.note_down(0);
        a.note_down(4);
        a.note_rejoin(0);
        a.note_down(6);
        let b = Replica::from_entries(Topology::Hypercube, 8, a.log().entries());
        assert_eq!(b.view().alive_nodes(), a.view().alive_nodes());
        assert_eq!(b.repair_groups(), a.repair_groups());
        for v in 0..8 {
            assert_eq!(b.incarnation(v), a.incarnation(v), "node {v}");
            assert_eq!(b.view().neighbors(v), a.view().neighbors(v), "node {v}");
        }
        assert!(b.view().alive_connected());
    }

    #[test]
    fn gossip_converges_across_orders() {
        // Two replicas learn the same facts in different orders and
        // still converge (the state is a join-semilattice).
        let mut origin = replica8();
        let d3 = origin.note_down(3);
        let d5 = origin.note_down(5);
        let mut fwd = replica8();
        fwd.apply(&d3);
        fwd.apply(&d5);
        let mut rev = replica8();
        rev.apply(&d5);
        rev.apply(&d3);
        assert_eq!(fwd.view().alive_nodes(), rev.view().alive_nodes());
        for v in 0..8 {
            assert_eq!(fwd.view().neighbors(v), rev.view().neighbors(v));
        }
        assert_eq!(fwd.winner(), rev.winner());
    }

    #[test]
    fn rejoin_notes_are_fenced_too() {
        let mut r = replica8();
        let down = r.note_down(7);
        let rejoin = r.note_rejoin(7);
        assert_eq!(rejoin, vec![LogEntry::Rejoin { node: 7, inc: 0 }]);
        assert!(r.note_rejoin(7).is_empty(), "already alive");
        // A second observer applying [down, rejoin, down-again] ends
        // alive at incarnation 1 only after a *fresh* death report.
        let mut o = replica8();
        o.apply(&down);
        o.apply(&rejoin);
        assert!(o.view().is_alive(7));
        let fresh = o.note_down(7);
        assert_eq!(fresh[0], LogEntry::Down { node: 7, inc: 1 });
    }

    #[test]
    fn out_of_range_entries_are_ignored() {
        let mut r = replica8();
        assert!(r.note_down(99).is_empty());
        assert!(r.note_rejoin(99).is_empty());
        assert!(r
            .apply(&[
                LogEntry::Down { node: 42, inc: 0 },
                LogEntry::Repair { a: 1, b: 99 },
            ])
            .is_empty());
        assert_eq!(r.view().alive_nodes().len(), 8);
    }
}
