//! Small shared helpers.

use std::time::{Duration, Instant};

/// Poll `pred` until it returns true or `deadline` passes, sleeping
/// between polls (no busy-wait). Returns whether the predicate held
/// before the deadline.
///
/// This is the crate's standard way to wait for an asynchronous
/// condition in tests (peer registration, counters catching up, queue
/// drains) — prefer it over hand-rolled `while Instant::now() < …`
/// spin loops.
pub fn wait_until(mut pred: impl FnMut() -> bool, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_truth_returns_fast() {
        let start = Instant::now();
        assert!(wait_until(|| true, Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn eventual_truth_is_awaited() {
        let start = Instant::now();
        assert!(wait_until(
            || start.elapsed() > Duration::from_millis(20),
            Duration::from_secs(5)
        ));
    }

    #[test]
    fn deadline_expiry_returns_false() {
        assert!(!wait_until(|| false, Duration::from_millis(30)));
    }
}
