//! Hand-rolled binary wire codec.
//!
//! Frames are length-prefixed: `u32 (LE) payload length` followed by the
//! payload. Payload layout: `u8` tag, then fixed-width little-endian
//! fields. Tour orders are `u32` city indices. No external serialization
//! crate is needed — the protocol has three message types and the codec
//! is ~100 lines (see DESIGN.md §6).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::election::LogEntry;
use crate::message::Message;
use crate::NetError;

const TAG_TOUR: u8 = 1;
const TAG_OPTIMUM: u8 = 2;
const TAG_LEAVE: u8 = 3;
const TAG_PING: u8 = 4;
const TAG_PONG: u8 = 5;
const TAG_BEST_REQUEST: u8 = 6;
const TAG_BEST_REPLY: u8 = 7;
const TAG_HUB_CLAIM: u8 = 8;
const TAG_LOG_SNAPSHOT: u8 = 9;
const TAG_TELEMETRY: u8 = 10;
const TAG_SHARD_RESULT: u8 = 11;
const TAG_JOB_SUBMIT: u8 = 12;
const TAG_JOB_ACCEPT: u8 = 13;
const TAG_JOB_IMPROVED: u8 = 14;
const TAG_JOB_DONE: u8 = 15;
const TAG_JOB_CANCEL: u8 = 16;

/// Highest job-termination reason code on the wire (see
/// [`Message::JobDone`]: 0 budget, 1 target, 2 deadline, 3 cancelled).
const MAX_JOB_REASON: u8 = 3;

/// Job payload kinds accepted on the wire (1 = TSPLIB, 2 = JSON).
const MAX_PAYLOAD_KIND: u8 = 2;

/// Longest accepted metric name inside a Telemetry frame (real names
/// are short dotted paths like `node.clk_calls`).
const MAX_METRIC_NAME: usize = 256;

// Membership-log entry kinds (first byte of each 17-byte entry inside
// a LogSnapshot payload).
const KIND_JOIN: u8 = 1;
const KIND_DOWN: u8 = 2;
const KIND_REJOIN: u8 = 3;
const KIND_REPAIR: u8 = 4;

/// Bytes per encoded [`LogEntry`]: kind byte + two `u64` LE fields.
const LOG_ENTRY_SIZE: usize = 17;

fn put_log_entry(buf: &mut BytesMut, e: &LogEntry) {
    let (kind, a, b) = match *e {
        LogEntry::Join { node, epoch } => (KIND_JOIN, node as u64, epoch),
        LogEntry::Down { node, inc } => (KIND_DOWN, node as u64, inc),
        LogEntry::Rejoin { node, inc } => (KIND_REJOIN, node as u64, inc),
        LogEntry::Repair { a, b } => (KIND_REPAIR, a as u64, b as u64),
    };
    buf.put_u8(kind);
    buf.put_u64_le(a);
    buf.put_u64_le(b);
}

fn get_log_entry(payload: &mut &[u8]) -> Result<LogEntry, NetError> {
    let kind = payload.get_u8();
    let a = payload.get_u64_le();
    let b = payload.get_u64_le();
    match kind {
        KIND_JOIN => Ok(LogEntry::Join {
            node: a as usize,
            epoch: b,
        }),
        KIND_DOWN => Ok(LogEntry::Down {
            node: a as usize,
            inc: b,
        }),
        KIND_REJOIN => Ok(LogEntry::Rejoin {
            node: a as usize,
            inc: b,
        }),
        KIND_REPAIR => Ok(LogEntry::Repair {
            a: a as usize,
            b: b as usize,
        }),
        k => Err(NetError::Codec(format!("unknown log-entry kind {k}"))),
    }
}

/// Maximum accepted payload (guards against corrupt length prefixes):
/// a tour of 10 million cities is ~40 MB.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Encode a message into a length-prefixed frame.
pub fn encode(msg: &Message) -> Bytes {
    let body_len = msg.wire_size();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    match msg {
        Message::TourFound {
            from,
            id,
            length,
            order,
        } => {
            buf.put_u8(TAG_TOUR);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*id);
            buf.put_i64_le(*length);
            buf.put_u32_le(order.len() as u32);
            for &c in order {
                buf.put_u32_le(c);
            }
        }
        Message::OptimumFound { from, length } => {
            buf.put_u8(TAG_OPTIMUM);
            buf.put_u64_le(*from as u64);
            buf.put_i64_le(*length);
        }
        Message::Leave { from } => {
            buf.put_u8(TAG_LEAVE);
            buf.put_u64_le(*from as u64);
        }
        Message::Ping { from } => {
            buf.put_u8(TAG_PING);
            buf.put_u64_le(*from as u64);
        }
        Message::Pong { from, t_ns } => {
            buf.put_u8(TAG_PONG);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*t_ns);
        }
        Message::BestRequest { from } => {
            buf.put_u8(TAG_BEST_REQUEST);
            buf.put_u64_le(*from as u64);
        }
        Message::BestReply {
            from,
            id,
            length,
            order,
        } => {
            buf.put_u8(TAG_BEST_REPLY);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*id);
            buf.put_i64_le(*length);
            buf.put_u32_le(order.len() as u32);
            for &c in order {
                buf.put_u32_le(c);
            }
        }
        Message::HubClaim { from, epoch } => {
            buf.put_u8(TAG_HUB_CLAIM);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*epoch);
        }
        Message::LogSnapshot { from, entries } => {
            buf.put_u8(TAG_LOG_SNAPSHOT);
            buf.put_u64_le(*from as u64);
            buf.put_u32_le(entries.len() as u32);
            for e in entries {
                put_log_entry(&mut buf, e);
            }
        }
        Message::Telemetry {
            from,
            t_ns,
            rtt_ns,
            best_len,
            clk_calls,
            stalled,
            counters,
            gauges,
            events_jsonl,
        } => {
            buf.put_u8(TAG_TELEMETRY);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*t_ns);
            buf.put_u64_le(*rtt_ns);
            buf.put_i64_le(*best_len);
            buf.put_u64_le(*clk_calls);
            buf.put_u8(*stalled as u8);
            buf.put_u32_le(counters.len() as u32);
            for (name, v) in counters {
                buf.put_u16_le(name.len() as u16);
                buf.put_slice(name.as_bytes());
                buf.put_u64_le(*v);
            }
            buf.put_u32_le(gauges.len() as u32);
            for (name, v) in gauges {
                buf.put_u16_le(name.len() as u16);
                buf.put_slice(name.as_bytes());
                buf.put_i64_le(*v);
            }
            buf.put_u32_le(events_jsonl.len() as u32);
            buf.put_slice(events_jsonl);
        }
        Message::ShardResult {
            from,
            shard,
            length,
            order,
        } => {
            buf.put_u8(TAG_SHARD_RESULT);
            buf.put_u64_le(*from as u64);
            buf.put_u32_le(*shard);
            buf.put_i64_le(*length);
            buf.put_u32_le(order.len() as u32);
            for &c in order {
                buf.put_u32_le(c);
            }
        }
        Message::JobSubmit {
            from,
            job,
            client,
            seed,
            kicks,
            deadline_ms,
            target,
            payload_kind,
            payload,
            checkpoint,
        } => {
            buf.put_u8(TAG_JOB_SUBMIT);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*job);
            buf.put_u64_le(*client);
            buf.put_u64_le(*seed);
            buf.put_u64_le(*kicks);
            buf.put_u64_le(*deadline_ms);
            buf.put_i64_le(*target);
            buf.put_u8(*payload_kind);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
            buf.put_u32_le(checkpoint.len() as u32);
            buf.put_slice(checkpoint);
        }
        Message::JobAccept { from, job, worker } => {
            buf.put_u8(TAG_JOB_ACCEPT);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*job);
            buf.put_u64_le(*worker);
        }
        Message::JobImproved {
            from,
            job,
            length,
            order,
        } => {
            buf.put_u8(TAG_JOB_IMPROVED);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*job);
            buf.put_i64_le(*length);
            buf.put_u32_le(order.len() as u32);
            for &c in order {
                buf.put_u32_le(c);
            }
        }
        Message::JobDone {
            from,
            job,
            reason,
            length,
            order,
        } => {
            buf.put_u8(TAG_JOB_DONE);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*job);
            buf.put_u8(*reason);
            buf.put_i64_le(*length);
            buf.put_u32_le(order.len() as u32);
            for &c in order {
                buf.put_u32_le(c);
            }
        }
        Message::JobCancel { from, job, reason } => {
            buf.put_u8(TAG_JOB_CANCEL);
            buf.put_u64_le(*from as u64);
            buf.put_u64_le(*job);
            buf.put_u8(*reason);
        }
    }
    debug_assert_eq!(buf.len(), 4 + body_len);
    buf.freeze()
}

/// Decode one payload (without the length prefix).
pub fn decode(mut payload: &[u8]) -> Result<Message, NetError> {
    let err = |m: &str| NetError::Codec(m.to_string());
    if payload.is_empty() {
        return Err(err("empty payload"));
    }
    let tag = payload.get_u8();
    match tag {
        TAG_TOUR => {
            if payload.remaining() < 8 + 8 + 8 + 4 {
                return Err(err("truncated TourFound header"));
            }
            let from = payload.get_u64_le() as usize;
            let id = payload.get_u64_le();
            let length = payload.get_i64_le();
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != 4 * n {
                return Err(err("TourFound order length mismatch"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(payload.get_u32_le());
            }
            Ok(Message::TourFound {
                from,
                id,
                length,
                order,
            })
        }
        TAG_OPTIMUM => {
            if payload.remaining() != 16 {
                return Err(err("bad OptimumFound size"));
            }
            let from = payload.get_u64_le() as usize;
            let length = payload.get_i64_le();
            Ok(Message::OptimumFound { from, length })
        }
        TAG_LEAVE => {
            if payload.remaining() != 8 {
                return Err(err("bad Leave size"));
            }
            Ok(Message::Leave {
                from: payload.get_u64_le() as usize,
            })
        }
        TAG_PING => {
            if payload.remaining() != 8 {
                return Err(err("bad Ping size"));
            }
            Ok(Message::Ping {
                from: payload.get_u64_le() as usize,
            })
        }
        TAG_PONG => {
            if payload.remaining() != 16 {
                return Err(err("bad Pong size"));
            }
            Ok(Message::Pong {
                from: payload.get_u64_le() as usize,
                t_ns: payload.get_u64_le(),
            })
        }
        TAG_BEST_REQUEST => {
            if payload.remaining() != 8 {
                return Err(err("bad BestRequest size"));
            }
            Ok(Message::BestRequest {
                from: payload.get_u64_le() as usize,
            })
        }
        TAG_BEST_REPLY => {
            if payload.remaining() < 8 + 8 + 8 + 4 {
                return Err(err("truncated BestReply header"));
            }
            let from = payload.get_u64_le() as usize;
            let id = payload.get_u64_le();
            let length = payload.get_i64_le();
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != 4 * n {
                return Err(err("BestReply order length mismatch"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(payload.get_u32_le());
            }
            Ok(Message::BestReply {
                from,
                id,
                length,
                order,
            })
        }
        TAG_HUB_CLAIM => {
            if payload.remaining() != 16 {
                return Err(err("bad HubClaim size"));
            }
            let from = payload.get_u64_le() as usize;
            let epoch = payload.get_u64_le();
            Ok(Message::HubClaim { from, epoch })
        }
        TAG_LOG_SNAPSHOT => {
            if payload.remaining() < 8 + 4 {
                return Err(err("truncated LogSnapshot header"));
            }
            let from = payload.get_u64_le() as usize;
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != LOG_ENTRY_SIZE * n {
                return Err(err("LogSnapshot entry count mismatch"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_log_entry(&mut payload)?);
            }
            Ok(Message::LogSnapshot { from, entries })
        }
        TAG_TELEMETRY => {
            if payload.remaining() < 8 + 8 + 8 + 8 + 8 + 1 + 4 {
                return Err(err("truncated Telemetry header"));
            }
            let from = payload.get_u64_le() as usize;
            let t_ns = payload.get_u64_le();
            let rtt_ns = payload.get_u64_le();
            let best_len = payload.get_i64_le();
            let clk_calls = payload.get_u64_le();
            let stalled = match payload.get_u8() {
                0 => false,
                1 => true,
                b => return Err(err(&format!("bad Telemetry stall flag {b}"))),
            };
            let counters = get_metric_section(&mut payload, |p| {
                if p.remaining() < 8 {
                    return Err(NetError::Codec("truncated counter value".into()));
                }
                Ok(p.get_u64_le())
            })?;
            if payload.remaining() < 4 {
                return Err(err("truncated Telemetry gauge section"));
            }
            let gauges = get_metric_section(&mut payload, |p| {
                if p.remaining() < 8 {
                    return Err(NetError::Codec("truncated gauge value".into()));
                }
                Ok(p.get_i64_le())
            })?;
            if payload.remaining() < 4 {
                return Err(err("truncated Telemetry event section"));
            }
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != n {
                return Err(err("Telemetry event bytes mismatch"));
            }
            let events_jsonl = payload.to_vec();
            Ok(Message::Telemetry {
                from,
                t_ns,
                rtt_ns,
                best_len,
                clk_calls,
                stalled,
                counters,
                gauges,
                events_jsonl,
            })
        }
        TAG_SHARD_RESULT => {
            if payload.remaining() < 8 + 4 + 8 + 4 {
                return Err(err("truncated ShardResult header"));
            }
            let from = payload.get_u64_le() as usize;
            let shard = payload.get_u32_le();
            let length = payload.get_i64_le();
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != 4 * n {
                return Err(err("ShardResult order length mismatch"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(payload.get_u32_le());
            }
            Ok(Message::ShardResult {
                from,
                shard,
                length,
                order,
            })
        }
        TAG_JOB_SUBMIT => {
            if payload.remaining() < 7 * 8 + 1 + 4 {
                return Err(err("truncated JobSubmit header"));
            }
            let from = payload.get_u64_le() as usize;
            let job = payload.get_u64_le();
            let client = payload.get_u64_le();
            let seed = payload.get_u64_le();
            let kicks = payload.get_u64_le();
            let deadline_ms = payload.get_u64_le();
            let target = payload.get_i64_le();
            let payload_kind = payload.get_u8();
            if payload_kind == 0 || payload_kind > MAX_PAYLOAD_KIND {
                return Err(err(&format!("bad JobSubmit payload kind {payload_kind}")));
            }
            let n = payload.get_u32_le() as usize;
            // The checkpoint section's 4-byte length must still fit
            // after `n` payload bytes — a lying count must not read
            // past the frame or allocate unbounded memory.
            if payload.remaining() < n + 4 {
                return Err(err("JobSubmit payload length overruns frame"));
            }
            let body = payload[..n].to_vec();
            payload.advance(n);
            let c = payload.get_u32_le() as usize;
            if payload.remaining() != c {
                return Err(err("JobSubmit checkpoint length mismatch"));
            }
            let checkpoint = payload.to_vec();
            Ok(Message::JobSubmit {
                from,
                job,
                client,
                seed,
                kicks,
                deadline_ms,
                target,
                payload_kind,
                payload: body,
                checkpoint,
            })
        }
        TAG_JOB_ACCEPT => {
            if payload.remaining() != 24 {
                return Err(err("bad JobAccept size"));
            }
            Ok(Message::JobAccept {
                from: payload.get_u64_le() as usize,
                job: payload.get_u64_le(),
                worker: payload.get_u64_le(),
            })
        }
        TAG_JOB_IMPROVED => {
            if payload.remaining() < 8 + 8 + 8 + 4 {
                return Err(err("truncated JobImproved header"));
            }
            let from = payload.get_u64_le() as usize;
            let job = payload.get_u64_le();
            let length = payload.get_i64_le();
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != 4 * n {
                return Err(err("JobImproved order length mismatch"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(payload.get_u32_le());
            }
            Ok(Message::JobImproved {
                from,
                job,
                length,
                order,
            })
        }
        TAG_JOB_DONE => {
            if payload.remaining() < 8 + 8 + 1 + 8 + 4 {
                return Err(err("truncated JobDone header"));
            }
            let from = payload.get_u64_le() as usize;
            let job = payload.get_u64_le();
            let reason = payload.get_u8();
            if reason > MAX_JOB_REASON {
                return Err(err(&format!("bad JobDone reason {reason}")));
            }
            let length = payload.get_i64_le();
            let n = payload.get_u32_le() as usize;
            if payload.remaining() != 4 * n {
                return Err(err("JobDone order length mismatch"));
            }
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(payload.get_u32_le());
            }
            Ok(Message::JobDone {
                from,
                job,
                reason,
                length,
                order,
            })
        }
        TAG_JOB_CANCEL => {
            if payload.remaining() != 17 {
                return Err(err("bad JobCancel size"));
            }
            let from = payload.get_u64_le() as usize;
            let job = payload.get_u64_le();
            let reason = payload.get_u8();
            if reason > MAX_JOB_REASON {
                return Err(err(&format!("bad JobCancel reason {reason}")));
            }
            Ok(Message::JobCancel { from, job, reason })
        }
        t => Err(err(&format!("unknown tag {t}"))),
    }
}

/// Parse one `(name, value)` section of a Telemetry payload: a `u32`
/// entry count, then per entry a `u16`-length-prefixed UTF-8 name and
/// a fixed-width value read by `get_value`. Rejects oversized names,
/// non-UTF-8 names, and counts that overrun the payload — a corrupt
/// frame must never allocate unbounded memory or panic.
fn get_metric_section<T>(
    payload: &mut &[u8],
    mut get_value: impl FnMut(&mut &[u8]) -> Result<T, NetError>,
) -> Result<Vec<(String, T)>, NetError> {
    let n = payload.get_u32_le() as usize;
    // Each entry is at least 2 (name length) + 8 (value) bytes.
    if n > payload.remaining() / 10 {
        return Err(NetError::Codec("metric section count overruns frame".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if payload.remaining() < 2 {
            return Err(NetError::Codec("truncated metric name length".into()));
        }
        let name_len = payload.get_u16_le() as usize;
        if name_len > MAX_METRIC_NAME {
            return Err(NetError::Codec(format!("metric name too long ({name_len})")));
        }
        if payload.remaining() < name_len {
            return Err(NetError::Codec("truncated metric name".into()));
        }
        let name = std::str::from_utf8(&payload[..name_len])
            .map_err(|_| NetError::Codec("metric name not UTF-8".into()))?
            .to_string();
        payload.advance(name_len);
        out.push((name, get_value(payload)?));
    }
    Ok(out)
}

/// Read one frame from a blocking reader (e.g. a `TcpStream`).
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> Result<Message, NetError> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(NetError::Codec(format!("bad frame length {len}")));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode(&payload)
}

/// Write one frame to a blocking writer.
pub fn write_frame<W: std::io::Write>(writer: &mut W, msg: &Message) -> Result<(), NetError> {
    let frame = encode(msg);
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode(&msg);
        let (len_prefix, payload) = frame.split_at(4);
        let len = u32::from_le_bytes(len_prefix.try_into().unwrap()) as usize;
        assert_eq!(len, payload.len());
        assert_eq!(len, msg.wire_size());
        let back = decode(payload).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Message::TourFound {
            from: 5,
            id: u64::MAX,
            length: -123456789,
            order: (0..777).collect(),
        });
        roundtrip(Message::OptimumFound {
            from: 0,
            length: i64::MAX,
        });
        roundtrip(Message::Leave { from: usize::MAX >> 1 });
        roundtrip(Message::Ping { from: 3 });
        roundtrip(Message::Pong {
            from: 4,
            t_ns: u64::MAX - 1,
        });
        roundtrip(Message::BestRequest { from: 5 });
        roundtrip(Message::BestReply {
            from: 6,
            id: crate::message::broadcast_id(6, 1),
            length: 4242,
            order: (0..33).rev().collect(),
        });
    }

    #[test]
    fn roundtrip_election_variants() {
        roundtrip(Message::HubClaim {
            from: 3,
            epoch: u64::MAX,
        });
        roundtrip(Message::LogSnapshot {
            from: 7,
            entries: vec![],
        });
        roundtrip(Message::LogSnapshot {
            from: 1,
            entries: vec![
                LogEntry::Join { node: 0, epoch: 0 },
                LogEntry::Down { node: 3, inc: 2 },
                LogEntry::Rejoin { node: 3, inc: 2 },
                LogEntry::Repair { a: 1, b: 7 },
            ],
        });
    }

    #[test]
    fn rejects_bad_log_entries() {
        // Unknown entry kind byte.
        let mut bad = vec![TAG_LOG_SNAPSHOT];
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(99); // not a valid kind
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode(&bad).is_err());
        // Entry count larger than the bytes present.
        let mut short = vec![TAG_LOG_SNAPSHOT];
        short.extend_from_slice(&1u64.to_le_bytes());
        short.extend_from_slice(&3u32.to_le_bytes());
        short.extend_from_slice(&[0u8; LOG_ENTRY_SIZE]); // only one entry
        assert!(decode(&short).is_err());
        // HubClaim with a truncated epoch.
        let mut claim = vec![TAG_HUB_CLAIM];
        claim.extend_from_slice(&1u64.to_le_bytes());
        claim.extend_from_slice(&[0u8; 4]);
        assert!(decode(&claim).is_err());
    }

    fn sample_telemetry() -> Message {
        Message::Telemetry {
            from: 3,
            t_ns: 1_000_000_007,
            rtt_ns: 42_000,
            best_len: -27686,
            clk_calls: 512,
            stalled: true,
            counters: vec![
                ("clk.calls".to_string(), 512),
                ("node.broadcasts".to_string(), 9),
            ],
            gauges: vec![("node.best_len".to_string(), -27686)],
            events_jsonl: b"{\"t_ns\":1,\"node\":3,\"seq\":0,\"kind\":\"clk.stall\"}\n".to_vec(),
        }
    }

    #[test]
    fn roundtrip_telemetry() {
        roundtrip(sample_telemetry());
        // Empty sections are a legal (idle-node) shipment.
        roundtrip(Message::Telemetry {
            from: 0,
            t_ns: 0,
            rtt_ns: 0,
            best_len: i64::MAX,
            clk_calls: 0,
            stalled: false,
            counters: vec![],
            gauges: vec![],
            events_jsonl: vec![],
        });
    }

    #[test]
    fn rejects_corrupt_telemetry() {
        let frame = encode(&sample_telemetry());
        let payload = &frame[4..];
        // Pristine payload decodes; every truncation prefix is rejected
        // (never panics, never mis-decodes).
        assert!(decode(payload).is_ok());
        for cut in 1..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "truncation at {cut} bytes accepted"
            );
        }
        // Counter count overrunning the frame.
        let mut bad = payload.to_vec();
        let count_at = 1 + 8 * 5 + 1;
        bad[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());
        // Oversized metric name length.
        let mut bad = payload.to_vec();
        bad[count_at + 4..count_at + 6].copy_from_slice(&(MAX_METRIC_NAME as u16 + 1).to_le_bytes());
        assert!(decode(&bad).is_err());
        // Non-UTF-8 metric name bytes.
        let mut bad = payload.to_vec();
        bad[count_at + 6] = 0xFF;
        assert!(decode(&bad).is_err());
        // Stall flag outside {0, 1}.
        let mut bad = payload.to_vec();
        bad[count_at - 1] = 7;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn roundtrip_shard_result() {
        roundtrip(Message::ShardResult {
            from: 3,
            shard: 17,
            length: 123_456_789,
            order: (1000..1777).collect(),
        });
        roundtrip(Message::ShardResult {
            from: 0,
            shard: 0,
            length: i64::MIN,
            order: vec![],
        });
    }

    #[test]
    fn rejects_corrupt_shard_result() {
        let frame = encode(&Message::ShardResult {
            from: 2,
            shard: 5,
            length: 999,
            order: (0..48).collect(),
        });
        let payload = &frame[4..];
        assert!(decode(payload).is_ok());
        for cut in 1..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "truncation at {cut} bytes accepted"
            );
        }
        // City count claiming more entries than bytes present.
        let mut bad = payload.to_vec();
        let count_at = 1 + 8 + 4 + 8;
        bad[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());
    }

    fn sample_job_submit() -> Message {
        Message::JobSubmit {
            from: 0,
            job: crate::message::job_id(7, 1),
            client: 7,
            seed: 99,
            kicks: 250,
            deadline_ms: 10_000,
            target: -5,
            payload_kind: 1,
            payload: b"NAME: t\nTYPE: TSP\n".to_vec(),
            checkpoint: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn roundtrip_job_frames() {
        roundtrip(sample_job_submit());
        // Fresh submission: empty checkpoint, unbounded kicks.
        roundtrip(Message::JobSubmit {
            from: 3,
            job: 0,
            client: u64::MAX >> 32,
            seed: 0,
            kicks: 0,
            deadline_ms: 0,
            target: i64::MIN,
            payload_kind: 2,
            payload: b"[[0,0],[1,1]]".to_vec(),
            checkpoint: vec![],
        });
        roundtrip(Message::JobAccept {
            from: 2,
            job: crate::message::job_id(7, 1),
            worker: 2,
        });
        roundtrip(Message::JobImproved {
            from: 1,
            job: 42,
            length: -1,
            order: (0..321).rev().collect(),
        });
        roundtrip(Message::JobImproved {
            from: 1,
            job: 42,
            length: i64::MAX,
            order: vec![],
        });
        for reason in 0..=3u8 {
            roundtrip(Message::JobDone {
                from: 5,
                job: u64::MAX,
                reason,
                length: 777,
                order: (0..48).collect(),
            });
            roundtrip(Message::JobCancel {
                from: 5,
                job: 1,
                reason,
            });
        }
    }

    #[test]
    fn rejects_corrupt_job_submit() {
        let frame = encode(&sample_job_submit());
        let payload = &frame[4..];
        assert!(decode(payload).is_ok());
        for cut in 1..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "truncation at {cut} bytes accepted"
            );
        }
        // Payload kind outside {1, 2}.
        let kind_at = 1 + 7 * 8;
        for bad_kind in [0u8, 3, 255] {
            let mut bad = payload.to_vec();
            bad[kind_at] = bad_kind;
            assert!(decode(&bad).is_err(), "payload kind {bad_kind} accepted");
        }
        // Payload length overrunning the frame.
        let mut bad = payload.to_vec();
        bad[kind_at + 1..kind_at + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());
        // Checkpoint length disagreeing with the bytes present (the
        // 4-byte section length sits right before the 5 blob bytes).
        let mut bad = payload.to_vec();
        let len = bad.len();
        bad[len - 9..len - 5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn rejects_corrupt_job_stream_frames() {
        let improved = encode(&Message::JobImproved {
            from: 1,
            job: 9,
            length: 55,
            order: (0..32).collect(),
        });
        let payload = &improved[4..];
        assert!(decode(payload).is_ok());
        for cut in 1..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "JobImproved truncation at {cut} accepted"
            );
        }
        // City count claiming more entries than bytes present.
        let mut bad = payload.to_vec();
        let count_at = 1 + 8 + 8 + 8;
        bad[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());

        let done = encode(&Message::JobDone {
            from: 1,
            job: 9,
            reason: 2,
            length: 55,
            order: (0..32).collect(),
        });
        let payload = &done[4..];
        assert!(decode(payload).is_ok());
        for cut in 1..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "JobDone truncation at {cut} accepted"
            );
        }
        // Reason byte outside the defined scale.
        let mut bad = payload.to_vec();
        bad[1 + 8 + 8] = MAX_JOB_REASON + 1;
        assert!(decode(&bad).is_err());
        let mut bad = payload.to_vec();
        let count_at = 1 + 8 + 8 + 1 + 8;
        bad[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bad).is_err());

        // Control frames: exact-size checks and reason validation.
        let accept = encode(&Message::JobAccept {
            from: 1,
            job: 9,
            worker: 1,
        });
        let payload = &accept[4..];
        for cut in 1..payload.len() {
            assert!(decode(&payload[..cut]).is_err());
        }
        let cancel = encode(&Message::JobCancel {
            from: 1,
            job: 9,
            reason: 3,
        });
        let payload = &cancel[4..];
        for cut in 1..payload.len() {
            assert!(decode(&payload[..cut]).is_err());
        }
        let mut bad = payload.to_vec();
        bad[1 + 8 + 8] = MAX_JOB_REASON + 1;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn roundtrip_empty_order() {
        roundtrip(Message::TourFound {
            from: 1,
            id: 0,
            length: 0,
            order: vec![],
        });
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99, 0, 0]).is_err());
        assert!(decode(&[TAG_OPTIMUM, 1, 2]).is_err());
        // Tour claiming more cities than bytes present.
        let mut bad = vec![TAG_TOUR];
        bad.extend_from_slice(&5u64.to_le_bytes());
        bad.extend_from_slice(&11u64.to_le_bytes());
        bad.extend_from_slice(&7i64.to_le_bytes());
        bad.extend_from_slice(&100u32.to_le_bytes());
        bad.extend_from_slice(&[1, 2, 3]); // not 400 bytes
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = vec![
            Message::Leave { from: 2 },
            Message::TourFound {
                from: 1,
                id: crate::message::broadcast_id(1, 42),
                length: 99,
                order: vec![3, 1, 2, 0],
            },
            Message::OptimumFound { from: 0, length: 7 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap();
            assert_eq!(&got, m);
        }
    }

    #[test]
    fn bad_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
