//! Fault injection: wrap any [`Transport`] and subject inbound
//! messages to message drop, duplication, reordering, and wire-level
//! byte corruption, driven by a seeded RNG.
//!
//! The paper's P2P network (§2.2) must keep cooperating when real
//! links misbehave. This wrapper — the sibling of
//! [`crate::delay::DelayedTransport`] — lets experiments and tests
//! measure exactly how gracefully tour quality degrades as the link
//! gets worse, and exercises the receive-side validation paths
//! (codec rejection, tour validation in the node loop).
//!
//! Faults are applied on the *inbound* side so that a lockstep
//! simulation stays deterministic: each endpoint owns its own RNG
//! (derived from the fault seed and the node id) and perturbs only
//! what it receives.
//!
//! Corruption is modelled at the wire level: the message is encoded
//! with the real codec, a few payload bytes are flipped, and the
//! result is decoded again. If the codec catches the damage the
//! message is discarded (that is what a real endpoint would do); if
//! the flip survives decoding, the *corrupted* message is delivered —
//! which is precisely the case the node-level tour validation exists
//! for.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codec::{decode, encode};
use crate::message::{Message, NodeId};
use crate::transport::Transport;
use crate::NetError;

/// Fault probabilities (each in `[0, 1]`) and the RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability an inbound message is silently dropped.
    pub drop: f64,
    /// Probability an inbound message is delivered twice.
    pub duplicate: f64,
    /// Probability an inbound message is inserted at a random
    /// position of the pending queue instead of the back.
    pub reorder: f64,
    /// Probability an inbound message has 1–4 payload bytes flipped.
    pub corrupt: f64,
    /// Seed for the per-endpoint RNG (combined with the node id so
    /// every endpoint draws an independent stream).
    pub seed: u64,
}

impl FaultConfig {
    /// A fault-free configuration (useful as a baseline).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            seed,
        }
    }

    /// Drop-only faults at rate `p`.
    pub fn drop_rate(p: f64, seed: u64) -> Self {
        FaultConfig {
            drop: p,
            ..FaultConfig::none(seed)
        }
    }

    /// Corruption-only faults at rate `p`.
    pub fn corrupt_rate(p: f64, seed: u64) -> Self {
        FaultConfig {
            corrupt: p,
            ..FaultConfig::none(seed)
        }
    }

    fn assert_valid(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {name}={p} outside [0, 1]"
            );
        }
    }
}

/// Counters of injected faults (per endpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Extra deliveries injected by duplication.
    pub duplicated: u64,
    /// Messages inserted out of order.
    pub reordered: u64,
    /// Messages delivered with surviving byte corruption.
    pub corrupted_delivered: u64,
    /// Corrupted messages the codec rejected (discarded).
    pub corrupted_discarded: u64,
}

/// A [`Transport`] decorator that injects faults on inbound delivery.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    rng: SmallRng,
    pending: VecDeque<Message>,
    stats: FaultStats,
    probes: FaultProbes,
}

/// Injected-fault counters mirrored into an obs registry (no-ops
/// unless created via [`FaultyTransport::with_obs`]). Kept in sync
/// with [`FaultStats`] at injection time, not copied after the fact.
struct FaultProbes {
    c_dropped: obs_api::Counter,
    c_duplicated: obs_api::Counter,
    c_reordered: obs_api::Counter,
    c_corrupted_delivered: obs_api::Counter,
    c_corrupted_discarded: obs_api::Counter,
}

impl FaultProbes {
    fn resolve(obs: &obs_api::Obs) -> Self {
        FaultProbes {
            c_dropped: obs.counter("fault.dropped"),
            c_duplicated: obs.counter("fault.duplicated"),
            c_reordered: obs.counter("fault.reordered"),
            c_corrupted_delivered: obs.counter("fault.corrupted_delivered"),
            c_corrupted_discarded: obs.counter("fault.corrupted_discarded"),
        }
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, deriving the RNG from `cfg.seed` and the node id.
    pub fn new(inner: T, cfg: FaultConfig) -> Self {
        Self::with_obs(inner, cfg, obs_api::Obs::disabled())
    }

    /// [`FaultyTransport::new`] plus an observability handle: every
    /// injected fault also increments a `fault.*` counter in its
    /// registry.
    pub fn with_obs(inner: T, cfg: FaultConfig, obs: obs_api::Obs) -> Self {
        cfg.assert_valid();
        let seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(inner.node_id() as u64);
        FaultyTransport {
            inner,
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            pending: VecDeque::new(),
            stats: FaultStats::default(),
            probes: FaultProbes::resolve(&obs),
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The active fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped transport (for tests and chaos
    /// drivers that need to reach through the decorator, e.g. to
    /// inject a peer-down notification on an in-memory endpoint).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Flip 1–4 random payload bytes and re-decode. `None` means the
    /// codec caught the damage and the message is lost.
    fn corrupt(&mut self, msg: &Message) -> Option<Message> {
        let frame = encode(msg);
        let mut payload = frame[4..].to_vec();
        let flips = self.rng.gen_range(1..=4usize.min(payload.len()));
        for _ in 0..flips {
            let at = self.rng.gen_range(0..payload.len());
            payload[at] ^= self.rng.gen_range(1..=u8::MAX);
        }
        decode(&payload).ok()
    }

    /// Pull everything from the inner transport, applying faults.
    fn ingest(&mut self) {
        while let Some(msg) = self.inner.try_recv() {
            if self.rng.gen_bool(self.cfg.drop) {
                self.stats.dropped += 1;
                self.probes.c_dropped.incr();
                continue;
            }
            let msg = if self.rng.gen_bool(self.cfg.corrupt) {
                match self.corrupt(&msg) {
                    Some(m) => {
                        self.stats.corrupted_delivered += 1;
                        self.probes.c_corrupted_delivered.incr();
                        m
                    }
                    None => {
                        self.stats.corrupted_discarded += 1;
                        self.probes.c_corrupted_discarded.incr();
                        continue;
                    }
                }
            } else {
                msg
            };
            let copies = if self.rng.gen_bool(self.cfg.duplicate) {
                self.stats.duplicated += 1;
                self.probes.c_duplicated.incr();
                2
            } else {
                1
            };
            for _ in 0..copies {
                if !self.pending.is_empty() && self.rng.gen_bool(self.cfg.reorder) {
                    self.stats.reordered += 1;
                    self.probes.c_reordered.incr();
                    let at = self.rng.gen_range(0..self.pending.len());
                    self.pending.insert(at, msg.clone());
                } else {
                    self.pending.push_back(msg.clone());
                }
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.inner.neighbors()
    }

    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        self.inner.send(to, msg)
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.ingest();
        self.pending.pop_front()
    }

    fn leave(&mut self) {
        self.inner.leave();
    }

    // Liveness observations must pass through: without this the
    // decorator inherited the trait's empty default and silently
    // swallowed the inner transport's peer-down notifications, so a
    // node behind fault injection could never trigger clique repair
    // or a hub election.
    fn take_peer_downs(&mut self) -> Vec<NodeId> {
        self.inner.take_peer_downs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryNetwork;
    use crate::topology::Topology;

    fn pair() -> (crate::memory::MemoryEndpoint, crate::memory::MemoryEndpoint) {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        (a, b)
    }

    fn flood(a: &mut impl Transport, n: i64) {
        for i in 0..n {
            a.send(1, Message::OptimumFound { from: 0, length: i })
                .unwrap();
        }
    }

    #[test]
    fn peer_downs_pass_through_the_decorator() {
        let (a, _b) = pair();
        let mut a = FaultyTransport::new(a, FaultConfig::drop_rate(1.0, 3));
        a.inner_mut().note_peer_down(1);
        assert_eq!(a.take_peer_downs(), vec![1]);
        assert!(a.take_peer_downs().is_empty(), "drained once");
    }

    #[test]
    fn fault_free_passes_everything_in_order() {
        let (mut a, b) = pair();
        let mut b = FaultyTransport::new(b, FaultConfig::none(7));
        flood(&mut a, 20);
        let got = b.drain();
        assert_eq!(got.len(), 20);
        let lens: Vec<i64> = got
            .iter()
            .map(|m| match m {
                Message::OptimumFound { length, .. } => *length,
                _ => panic!("unexpected {m:?}"),
            })
            .collect();
        assert_eq!(lens, (0..20).collect::<Vec<_>>());
        assert_eq!(b.stats(), FaultStats::default());
    }

    #[test]
    fn obs_counters_mirror_fault_stats() {
        let (mut a, b) = pair();
        let obs = obs_api::Obs::for_node(1);
        let cfg = FaultConfig {
            drop: 0.3,
            duplicate: 0.2,
            reorder: 0.2,
            corrupt: 0.0,
            seed: 99,
        };
        let mut b = FaultyTransport::with_obs(b, cfg, obs.clone());
        flood(&mut a, 300);
        let _ = b.drain();
        let stats = b.stats();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("fault.dropped"), stats.dropped);
        assert_eq!(snap.counter("fault.duplicated"), stats.duplicated);
        assert_eq!(snap.counter("fault.reordered"), stats.reordered);
        assert!(stats.dropped > 0 && stats.duplicated > 0, "{stats:?}");
    }

    #[test]
    fn drop_rate_loses_roughly_that_fraction() {
        let (mut a, b) = pair();
        let mut b = FaultyTransport::new(b, FaultConfig::drop_rate(0.5, 42));
        flood(&mut a, 400);
        let got = b.drain();
        let dropped = b.stats().dropped;
        assert_eq!(got.len() as u64 + dropped, 400);
        assert!(
            (120..=280).contains(&dropped),
            "dropped {dropped}/400 at p=0.5"
        );
    }

    #[test]
    fn full_drop_loses_everything() {
        let (mut a, b) = pair();
        let mut b = FaultyTransport::new(b, FaultConfig::drop_rate(1.0, 1));
        flood(&mut a, 10);
        assert!(b.drain().is_empty());
        assert_eq!(b.stats().dropped, 10);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let (mut a, b) = pair();
        let cfg = FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::none(3)
        };
        let mut b = FaultyTransport::new(b, cfg);
        flood(&mut a, 5);
        assert_eq!(b.drain().len(), 10);
        assert_eq!(b.stats().duplicated, 5);
    }

    #[test]
    fn reordering_permutes_but_preserves_multiset() {
        let (mut a, b) = pair();
        let cfg = FaultConfig {
            reorder: 1.0,
            ..FaultConfig::none(9)
        };
        let mut b = FaultyTransport::new(b, cfg);
        flood(&mut a, 50);
        let mut lens: Vec<i64> = b
            .drain()
            .iter()
            .map(|m| match m {
                Message::OptimumFound { length, .. } => *length,
                _ => panic!(),
            })
            .collect();
        assert!(b.stats().reordered > 0);
        lens.sort_unstable();
        assert_eq!(lens, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn corruption_mangles_or_discards_but_never_panics() {
        let (mut a, b) = pair();
        let mut b = FaultyTransport::new(b, FaultConfig::corrupt_rate(1.0, 5));
        for _ in 0..50 {
            a.send(
                1,
                Message::TourFound {
                    from: 0,
                    id: 3,
                    length: 1000,
                    order: (0..40).collect(),
                },
            )
            .unwrap();
        }
        let got = b.drain();
        let s = b.stats();
        assert_eq!(got.len() as u64, s.corrupted_delivered);
        assert_eq!(s.corrupted_delivered + s.corrupted_discarded, 50);
        // Something must have been visibly mangled: either the codec
        // discarded it, or a delivered message differs from the original.
        let pristine = Message::TourFound {
            from: 0,
            id: 3,
            length: 1000,
            order: (0..40).collect(),
        };
        assert!(
            s.corrupted_discarded > 0 || got.iter().any(|m| *m != pristine),
            "corruption at p=1 left every message intact"
        );
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let (mut a, b) = pair();
            let mut b = FaultyTransport::new(
                b,
                FaultConfig {
                    drop: 0.3,
                    duplicate: 0.2,
                    reorder: 0.4,
                    corrupt: 0.1,
                    seed: 77,
                },
            );
            flood(&mut a, 100);
            (b.drain(), b.stats())
        };
        let (m1, s1) = run();
        let (m2, s2) = run();
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn sends_pass_through_unfaulted() {
        let (a, mut b) = pair();
        let mut a = FaultyTransport::new(a, FaultConfig::drop_rate(1.0, 2));
        a.send(1, Message::Leave { from: 0 }).unwrap();
        assert_eq!(b.try_recv(), Some(Message::Leave { from: 0 }));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_probability_rejected() {
        let (_, b) = pair();
        let _ = FaultyTransport::new(b, FaultConfig::drop_rate(1.5, 0));
    }
}
