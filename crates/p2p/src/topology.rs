//! Network topologies.
//!
//! The paper arranges 8 nodes in a **hypercube** (§2.2); ring, complete
//! and star variants are provided for the topology ablation
//! experiments.

use crate::message::NodeId;

/// Static network topologies over `n` nodes with ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Binary hypercube: node `i` is adjacent to `i ^ (1 << b)` for
    /// every bit `b` with `i ^ (1 << b) < n` (for non-power-of-two `n`
    /// this is the induced subgraph, which stays connected).
    Hypercube,
    /// Cycle `0 — 1 — … — n-1 — 0`.
    Ring,
    /// Every node adjacent to every other.
    Complete,
    /// Node 0 is the center; all others connect only to it.
    Star,
}

impl Topology {
    /// Neighbor list of `node` in a `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn neighbors(&self, node: NodeId, n: usize) -> Vec<NodeId> {
        assert!(node < n, "node {node} out of 0..{n}");
        if n <= 1 {
            return Vec::new();
        }
        match self {
            Topology::Hypercube => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                (0..bits)
                    .map(|b| node ^ (1usize << b))
                    .filter(|&m| m < n && m != node)
                    .collect()
            }
            Topology::Ring => {
                if n == 2 {
                    vec![1 - node]
                } else {
                    vec![(node + n - 1) % n, (node + 1) % n]
                }
            }
            Topology::Complete => (0..n).filter(|&m| m != node).collect(),
            Topology::Star => {
                if node == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
        }
    }

    /// Parse by name (for the experiment CLI).
    pub fn by_name(name: &str) -> Option<Topology> {
        match name.to_ascii_lowercase().as_str() {
            "hypercube" | "cube" => Some(Topology::Hypercube),
            "ring" => Some(Topology::Ring),
            "complete" | "full" => Some(Topology::Complete),
            "star" => Some(Topology::Star),
            _ => None,
        }
    }
}

/// Verify a topology is connected (used in tests and by the hub before
/// it hands out neighbor lists).
pub fn is_connected(topo: Topology, n: usize) -> bool {
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for m in topo.neighbors(v, n) {
            if !seen[m] {
                seen[m] = true;
                count += 1;
                stack.push(m);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_8_nodes_matches_paper() {
        // 8 nodes: 3-regular cube.
        for node in 0..8 {
            let nb = Topology::Hypercube.neighbors(node, 8);
            assert_eq!(nb.len(), 3, "node {node}");
            for m in nb {
                // Adjacent nodes differ in exactly one bit.
                assert_eq!((node ^ m).count_ones(), 1);
            }
        }
    }

    #[test]
    fn hypercube_symmetry() {
        for n in [2usize, 5, 8, 13, 16] {
            for a in 0..n {
                for b in Topology::Hypercube.neighbors(a, n) {
                    assert!(
                        Topology::Hypercube.neighbors(b, n).contains(&a),
                        "asymmetric edge {a}-{b} at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_topologies_connected() {
        for n in [2usize, 3, 7, 8, 9, 16] {
            for t in [
                Topology::Hypercube,
                Topology::Ring,
                Topology::Complete,
                Topology::Star,
            ] {
                assert!(is_connected(t, n), "{t:?} disconnected at n={n}");
            }
        }
    }

    #[test]
    fn ring_has_degree_two() {
        for node in 0..6 {
            assert_eq!(Topology::Ring.neighbors(node, 6).len(), 2);
        }
        assert_eq!(Topology::Ring.neighbors(0, 2), vec![1]);
    }

    #[test]
    fn complete_and_star_shapes() {
        assert_eq!(Topology::Complete.neighbors(2, 5).len(), 4);
        assert_eq!(Topology::Star.neighbors(0, 5).len(), 4);
        assert_eq!(Topology::Star.neighbors(3, 5), vec![0]);
    }

    #[test]
    fn parsing() {
        assert_eq!(Topology::by_name("Hypercube"), Some(Topology::Hypercube));
        assert_eq!(Topology::by_name("ring"), Some(Topology::Ring));
        assert_eq!(Topology::by_name("bogus"), None);
    }

    #[test]
    fn single_node_has_no_neighbors() {
        assert!(Topology::Hypercube.neighbors(0, 1).is_empty());
    }
}
