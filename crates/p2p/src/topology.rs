//! Network topologies and live membership.
//!
//! The paper arranges 8 nodes in a **hypercube** (§2.2); ring, complete
//! and star variants are provided for the topology ablation
//! experiments. [`Membership`] tracks which nodes are alive in a
//! long-running network and computes the self-healing repair edges
//! that keep the topology connected when a node dies (the
//! dimension-neighbor fallback of the churn issue): the shared rule
//! used by both the hub lifecycle manager and the lockstep churn
//! driver, so the two deployments degrade identically.

use std::collections::BTreeSet;

use crate::message::NodeId;

/// Static network topologies over `n` nodes with ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Binary hypercube: node `i` is adjacent to `i ^ (1 << b)` for
    /// every bit `b` with `i ^ (1 << b) < n` (for non-power-of-two `n`
    /// this is the induced subgraph, which stays connected).
    Hypercube,
    /// Cycle `0 — 1 — … — n-1 — 0`.
    Ring,
    /// Every node adjacent to every other.
    Complete,
    /// Node 0 is the center; all others connect only to it.
    Star,
}

impl Topology {
    /// Neighbor list of `node` in a `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn neighbors(&self, node: NodeId, n: usize) -> Vec<NodeId> {
        assert!(node < n, "node {node} out of 0..{n}");
        if n <= 1 {
            return Vec::new();
        }
        match self {
            Topology::Hypercube => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                (0..bits)
                    .map(|b| node ^ (1usize << b))
                    .filter(|&m| m < n && m != node)
                    .collect()
            }
            Topology::Ring => {
                if n == 2 {
                    vec![1 - node]
                } else {
                    vec![(node + n - 1) % n, (node + 1) % n]
                }
            }
            Topology::Complete => (0..n).filter(|&m| m != node).collect(),
            Topology::Star => {
                if node == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
        }
    }

    /// Parse by name (for the experiment CLI).
    pub fn by_name(name: &str) -> Option<Topology> {
        match name.to_ascii_lowercase().as_str() {
            "hypercube" | "cube" => Some(Topology::Hypercube),
            "ring" => Some(Topology::Ring),
            "complete" | "full" => Some(Topology::Complete),
            "star" => Some(Topology::Star),
            _ => None,
        }
    }
}

/// Dynamic membership over a static topology: which nodes are alive
/// and who is wired to whom right now.
///
/// The repair rule for a death is the **dimension-neighbor fallback**:
/// the dead node's surviving neighbors (the nodes that each lost one
/// edge — in a hypercube, the edge along one dimension) are wired into
/// a clique among themselves. Every path that used to route through
/// the dead node can then take the direct repair edge instead, so the
/// cube degrades to a connected sub-cube rather than partitioning.
/// On rejoin the node is reconnected to its *alive* static-topology
/// neighbors; stale repair edges are left in place (extra edges never
/// hurt connectivity and keeping them makes repairs idempotent).
///
/// All sets are `BTreeSet`s so iteration order — and therefore every
/// repair assignment handed out by the hub or the lockstep churn
/// driver — is deterministic.
#[derive(Debug, Clone)]
pub struct Membership {
    topo: Topology,
    n: usize,
    alive: Vec<bool>,
    adj: Vec<BTreeSet<NodeId>>,
}

impl Membership {
    /// Full static topology, everyone alive.
    pub fn new(topo: Topology, n: usize) -> Self {
        let adj = (0..n)
            .map(|v| topo.neighbors(v, n).into_iter().collect())
            .collect();
        Membership {
            topo,
            n,
            alive: vec![true; n],
            adj,
        }
    }

    /// Number of member slots (alive or dead).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no member slots at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Is `id` currently alive?
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive.get(id).copied().unwrap_or(false)
    }

    /// Ids of currently alive nodes, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.n).filter(|&v| self.alive[v]).collect()
    }

    /// Current (repaired) neighbor list of `id`, restricted to alive
    /// nodes, ascending.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.adj[id]
            .iter()
            .copied()
            .filter(|&v| self.alive[v])
            .collect()
    }

    /// Declare `dead` down and rewire around it.
    ///
    /// Returns the repair group — the dead node's alive neighbors, now
    /// wired into a clique — so the caller (hub or churn driver) can
    /// push `connect` assignments to exactly those nodes. Idempotent:
    /// reporting the same death twice returns an empty group.
    pub fn fail(&mut self, dead: NodeId) -> Vec<NodeId> {
        if !self.is_alive(dead) {
            return Vec::new();
        }
        self.alive[dead] = false;
        let group: Vec<NodeId> = self.neighbors(dead);
        for &a in &group {
            for &b in &group {
                if a != b {
                    self.adj[a].insert(b);
                }
            }
        }
        group
    }

    /// Bring `id` back and reconnect it to its alive static-topology
    /// neighbors — or, if every static neighbor is also dead, to the
    /// lowest-id alive node so the rejoiner is never isolated. Returns
    /// the nodes that must accept the rejoiner; empty if `id` was
    /// already alive.
    pub fn rejoin(&mut self, id: NodeId) -> Vec<NodeId> {
        if self.is_alive(id) {
            return Vec::new();
        }
        self.alive[id] = true;
        let mut back: Vec<NodeId> = self
            .topo
            .neighbors(id, self.n)
            .into_iter()
            .filter(|&v| self.alive[v])
            .collect();
        if back.is_empty() {
            back = (0..self.n).find(|&v| self.alive[v] && v != id).into_iter().collect();
        }
        back.sort_unstable();
        self.adj[id] = back.iter().copied().collect();
        for &v in &back {
            self.adj[v].insert(id);
        }
        back
    }

    /// Insert the undirected edge `a — b` directly (used when replaying
    /// `REPAIR` entries from a replicated membership log, where the
    /// repair edges arrive as facts rather than being re-derived from a
    /// death). Returns `true` if the edge was new in either direction;
    /// out-of-range or self edges are ignored.
    pub fn wire(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || a >= self.n || b >= self.n {
            return false;
        }
        let fresh_a = self.adj[a].insert(b);
        let fresh_b = self.adj[b].insert(a);
        fresh_a || fresh_b
    }

    /// Is the alive subgraph (with repair edges) connected?
    pub fn alive_connected(&self) -> bool {
        let alive = self.alive_nodes();
        let Some(&start) = alive.first() else {
            return true;
        };
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for m in self.neighbors(v) {
                if !seen[m] {
                    seen[m] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == alive.len()
    }
}

/// Verify a topology is connected (used in tests and by the hub before
/// it hands out neighbor lists).
pub fn is_connected(topo: Topology, n: usize) -> bool {
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for m in topo.neighbors(v, n) {
            if !seen[m] {
                seen[m] = true;
                count += 1;
                stack.push(m);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_8_nodes_matches_paper() {
        // 8 nodes: 3-regular cube.
        for node in 0..8 {
            let nb = Topology::Hypercube.neighbors(node, 8);
            assert_eq!(nb.len(), 3, "node {node}");
            for m in nb {
                // Adjacent nodes differ in exactly one bit.
                assert_eq!((node ^ m).count_ones(), 1);
            }
        }
    }

    #[test]
    fn hypercube_symmetry() {
        for n in [2usize, 5, 8, 13, 16] {
            for a in 0..n {
                for b in Topology::Hypercube.neighbors(a, n) {
                    assert!(
                        Topology::Hypercube.neighbors(b, n).contains(&a),
                        "asymmetric edge {a}-{b} at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_topologies_connected() {
        for n in [2usize, 3, 7, 8, 9, 16] {
            for t in [
                Topology::Hypercube,
                Topology::Ring,
                Topology::Complete,
                Topology::Star,
            ] {
                assert!(is_connected(t, n), "{t:?} disconnected at n={n}");
            }
        }
    }

    #[test]
    fn ring_has_degree_two() {
        for node in 0..6 {
            assert_eq!(Topology::Ring.neighbors(node, 6).len(), 2);
        }
        assert_eq!(Topology::Ring.neighbors(0, 2), vec![1]);
    }

    #[test]
    fn complete_and_star_shapes() {
        assert_eq!(Topology::Complete.neighbors(2, 5).len(), 4);
        assert_eq!(Topology::Star.neighbors(0, 5).len(), 4);
        assert_eq!(Topology::Star.neighbors(3, 5), vec![0]);
    }

    #[test]
    fn parsing() {
        assert_eq!(Topology::by_name("Hypercube"), Some(Topology::Hypercube));
        assert_eq!(Topology::by_name("ring"), Some(Topology::Ring));
        assert_eq!(Topology::by_name("bogus"), None);
    }

    #[test]
    fn single_node_has_no_neighbors() {
        assert!(Topology::Hypercube.neighbors(0, 1).is_empty());
    }

    #[test]
    fn membership_kill_keeps_hypercube_connected() {
        let mut m = Membership::new(Topology::Hypercube, 8);
        let group = m.fail(3);
        // Node 3's hypercube neighbors: 2, 1, 7.
        assert_eq!(group, vec![1, 2, 7]);
        assert!(!m.is_alive(3));
        assert!(m.alive_connected());
        // Repair clique: 1, 2 and 7 are now pairwise adjacent.
        assert!(m.neighbors(1).contains(&2));
        assert!(m.neighbors(2).contains(&7));
        assert!(m.neighbors(7).contains(&1));
        // Dead node no longer appears in anyone's neighbor list.
        for v in m.alive_nodes() {
            assert!(!m.neighbors(v).contains(&3));
        }
    }

    #[test]
    fn membership_ring_kill_bridges_the_gap() {
        let mut m = Membership::new(Topology::Ring, 6);
        let group = m.fail(2);
        assert_eq!(group, vec![1, 3]);
        assert!(m.neighbors(1).contains(&3));
        assert!(m.alive_connected());
    }

    #[test]
    fn membership_chained_failures_stay_connected() {
        let mut m = Membership::new(Topology::Hypercube, 8);
        for dead in [5, 2, 7, 0] {
            m.fail(dead);
            assert!(m.alive_connected(), "disconnected after killing {dead}");
        }
        assert_eq!(m.alive_nodes(), vec![1, 3, 4, 6]);
    }

    #[test]
    fn membership_fail_is_idempotent() {
        let mut m = Membership::new(Topology::Hypercube, 8);
        assert!(!m.fail(6).is_empty());
        assert!(m.fail(6).is_empty());
    }

    #[test]
    fn membership_rejoin_restores_static_edges() {
        let mut m = Membership::new(Topology::Hypercube, 8);
        m.fail(3);
        let back = m.rejoin(3);
        assert_eq!(back, vec![1, 2, 7]);
        assert!(m.is_alive(3));
        assert!(m.alive_connected());
        for &v in &back {
            assert!(m.neighbors(v).contains(&3));
            assert!(m.neighbors(3).contains(&v));
        }
        // Rejoining an alive node is a no-op.
        assert!(m.rejoin(3).is_empty());
    }

    #[test]
    fn membership_rejoin_with_all_static_neighbors_dead_falls_back() {
        let mut m = Membership::new(Topology::Star, 5);
        m.fail(0); // center
        m.fail(3);
        // 3's only static neighbor (0) is dead → fall back to the
        // lowest-id alive node.
        assert_eq!(m.rejoin(3), vec![1]);
        assert!(m.alive_connected());
    }

    #[test]
    fn membership_wire_inserts_symmetric_edges_once() {
        let mut m = Membership::new(Topology::Ring, 6);
        assert!(m.wire(0, 3));
        assert!(!m.wire(3, 0), "re-wiring the same edge is a no-op");
        assert!(m.neighbors(0).contains(&3));
        assert!(m.neighbors(3).contains(&0));
        // Degenerate edges are rejected.
        assert!(!m.wire(2, 2));
        assert!(!m.wire(0, 17));
    }

    #[test]
    fn membership_rejoin_skips_dead_static_neighbors() {
        let mut m = Membership::new(Topology::Hypercube, 8);
        m.fail(1);
        m.fail(3);
        // 3's static neighbors are 1 (dead), 2, 7.
        assert_eq!(m.rejoin(3), vec![2, 7]);
        assert!(m.alive_connected());
    }
}
