//! Real TCP transport.
//!
//! Each node binds a listener; peer links are ordinary TCP connections
//! carrying the length-prefixed binary frames of [`crate::codec`]. A
//! connecting peer first sends its 8-byte node id, so the accepting
//! side can register the reverse edge — this implements the paper's
//! "if the contacted node did not know the contacting node before, the
//! contacting node is added to the contacted node's neighbor list"
//! (§2.2).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::codec::{read_frame, write_frame};
use crate::message::{Message, NodeId};
use crate::transport::Transport;
use crate::NetError;

/// Shared mutable state of one TCP endpoint.
struct Shared {
    /// Write halves, keyed by peer id.
    peers: Mutex<HashMap<NodeId, TcpStream>>,
    /// Known neighbor ids (order = connection order).
    neighbors: RwLock<Vec<NodeId>>,
    /// Set on shutdown; reader and accept threads exit.
    shutdown: AtomicBool,
    inbox_tx: Sender<Message>,
}

/// A TCP-backed [`Transport`].
pub struct TcpEndpoint {
    id: NodeId,
    listen_addr: SocketAddr,
    inbox_rx: Receiver<Message>,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Bind a listener on `addr` (use port 0 for an ephemeral port) and
    /// start accepting peer connections.
    pub fn bind(id: NodeId, addr: &str) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let shared = Arc::new(Shared {
            peers: Mutex::new(HashMap::new()),
            neighbors: RwLock::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            inbox_tx,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("p2p-accept-{id}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(TcpEndpoint {
            id,
            listen_addr,
            inbox_rx,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address peers should connect to.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Set the node id after bootstrap (the hub assigns ids, but the
    /// listener must exist *before* joining so the node can announce a
    /// real address — bind with a placeholder, then call this before
    /// any [`TcpEndpoint::connect_to`]).
    pub fn set_id(&mut self, id: NodeId) {
        self.id = id;
    }

    /// Open a link to a peer (the hub told us its id and address).
    pub fn connect_to(&self, peer: NodeId, addr: SocketAddr) -> Result<(), NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // Identify ourselves so the peer registers the reverse edge.
        stream.write_all(&(self.id as u64).to_le_bytes())?;
        stream.flush()?;
        register_peer(&self.shared, peer, stream);
        Ok(())
    }

    /// Stop all threads and drop connections.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let mut peers = self.shared.peers.lock();
        for (_, s) in peers.drain() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Register a connected peer: store the write half, spawn a reader for
/// the read half, add to the neighbor list if new.
fn register_peer(shared: &Arc<Shared>, peer: NodeId, stream: TcpStream) {
    let read_half = stream.try_clone().expect("clone tcp stream");
    shared.peers.lock().insert(peer, stream);
    {
        let mut nb = shared.neighbors.write();
        if !nb.contains(&peer) {
            nb.push(peer);
        }
    }
    let reader_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("p2p-read-{peer}"))
        .spawn(move || reader_loop(read_half, peer, reader_shared))
        .expect("spawn reader thread");
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        stream.set_nodelay(true).ok();
        // First 8 bytes: the connecting peer's id.
        let mut id_buf = [0u8; 8];
        if stream.read_exact(&mut id_buf).is_err() {
            continue;
        }
        let peer = u64::from_le_bytes(id_buf) as NodeId;
        register_peer(&shared, peer, stream);
    }
}

fn reader_loop(mut stream: TcpStream, peer: NodeId, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match read_frame(&mut stream) {
            Ok(msg) => {
                let leaving = matches!(msg, Message::Leave { .. });
                if shared.inbox_tx.send(msg).is_err() {
                    break;
                }
                if leaving {
                    shared.peers.lock().remove(&peer);
                    shared.neighbors.write().retain(|&n| n != peer);
                    break;
                }
            }
            Err(_) => {
                // Connection dropped: forget the peer.
                shared.peers.lock().remove(&peer);
                shared.neighbors.write().retain(|&n| n != peer);
                break;
            }
        }
    }
}

impl Transport for TcpEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.shared.neighbors.read().clone()
    }

    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        let mut peers = self.shared.peers.lock();
        let stream = peers.get_mut(&to).ok_or(NetError::UnknownPeer(to))?;
        write_frame(stream, &msg)
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox_rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn recv_with_timeout(ep: &mut TcpEndpoint, millis: u64) -> Option<Message> {
        let deadline = std::time::Instant::now() + Duration::from_millis(millis);
        while std::time::Instant::now() < deadline {
            if let Some(m) = ep.try_recv() {
                return Some(m);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn two_nodes_exchange_tours() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        // Wait for b to register the reverse edge.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while b.neighbors().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(b.neighbors(), vec![0]);
        assert_eq!(a.neighbors(), vec![1]);

        let msg = Message::TourFound {
            from: 0,
            length: 1234,
            order: (0..100).collect(),
        };
        a.send(1, msg.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut b, 2000), Some(msg));

        // And the reverse direction over the same socket pair.
        let reply = Message::OptimumFound { from: 1, length: 9 };
        b.send(0, reply.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut a, 2000), Some(reply));
    }

    #[test]
    fn leave_removes_peer() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while b.neighbors().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        a.leave();
        let got = recv_with_timeout(&mut b, 2000);
        assert_eq!(got, Some(Message::Leave { from: 0 }));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !b.neighbors().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(b.neighbors().is_empty());
    }

    #[test]
    fn unknown_peer_errors() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let err = a.send(9, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(9)));
    }
}
