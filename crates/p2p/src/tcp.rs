//! Real TCP transport.
//!
//! Each node binds a listener; peer links are ordinary TCP connections
//! carrying the length-prefixed binary frames of [`crate::codec`]. A
//! connecting peer first sends its 8-byte node id, so the accepting
//! side can register the reverse edge — this implements the paper's
//! "if the contacted node did not know the contacting node before, the
//! contacting node is added to the contacted node's neighbor list"
//! (§2.2).
//!
//! The endpoint is hardened against misbehaving links and peers (see
//! DESIGN.md §6, "Fault model"):
//!
//! - `connect_to` uses a connect timeout and bounded retries with
//!   exponential backoff;
//! - the id handshake on both sides is bounded by a timeout, so a
//!   silent connector cannot wedge the accept path (handshakes run on
//!   their own short-lived threads);
//! - every peer has a bounded outbound queue drained by a dedicated
//!   writer thread, so `send` never performs socket I/O — a stalled
//!   peer fills its own queue ([`crate::NetError::Backpressure`])
//!   without blocking sends to anyone else;
//! - `shutdown` closes all sockets and joins the accept, reader, and
//!   writer threads within bounded time.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use obs_api::{Counter, Gauge, Obs, Value};
use parking_lot::{Mutex, RwLock};

use crate::codec::{read_frame, write_frame};
use crate::message::{Message, NodeId};
use crate::transport::Transport;
use crate::NetError;

/// Timeouts and retry policy of a [`TcpEndpoint`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Timeout for establishing an outbound connection.
    pub connect_timeout: Duration,
    /// Timeout for the 8-byte id handshake (both directions).
    pub handshake_timeout: Duration,
    /// Timeout for one frame write; a peer that stalls longer is
    /// dropped.
    pub write_timeout: Duration,
    /// Extra connection attempts after the first failure.
    pub connect_retries: u32,
    /// Initial backoff between attempts (doubles per retry).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Per-peer outbound queue capacity; a full queue makes `send`
    /// return [`NetError::Backpressure`] instead of blocking.
    pub outbound_queue: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(10),
            connect_retries: 4,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(1),
            outbound_queue: 256,
        }
    }
}

impl TcpConfig {
    /// A tight-deadline profile for tests: small timeouts, one retry.
    pub fn fast_fail() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(200),
            handshake_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(500),
            connect_retries: 1,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(50),
            ..Default::default()
        }
    }
}

/// A live peer link: the queue feeding its writer thread and the
/// socket handle used to force-close the link.
struct Peer {
    tx: Sender<Message>,
    stream: TcpStream,
    writer: JoinHandle<()>,
}

/// Shared mutable state of one TCP endpoint.
struct Shared {
    /// Live peer links, keyed by peer id.
    peers: Mutex<HashMap<NodeId, Peer>>,
    /// Known neighbor ids (order = connection order).
    neighbors: RwLock<Vec<NodeId>>,
    /// Set on shutdown; accept, handshake, reader, and writer threads
    /// exit.
    shutdown: AtomicBool,
    inbox_tx: Sender<Message>,
    /// Reader threads, joined on shutdown.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// In-flight incoming handshakes (bounded by `handshake_timeout`).
    handshakes: Mutex<Vec<JoinHandle<()>>>,
    cfg: TcpConfig,
    obs: Obs,
    probes: TcpProbes,
}

/// Wire-level metric handles, resolved once at bind time. All no-ops
/// unless the endpoint was created with [`TcpEndpoint::bind_with_obs`].
struct TcpProbes {
    /// Frame bytes written to / read from sockets (incl. the 4-byte
    /// length prefix).
    c_bytes_out: Counter,
    c_bytes_in: Counter,
    /// Messages sent / received at the transport surface.
    c_msgs_out: Counter,
    c_msgs_in: Counter,
    /// Extra connection attempts after a first failure.
    c_retries: Counter,
    /// Sends refused because a peer's outbound queue was full.
    c_backpressure: Counter,
    /// Current total outbound-queue depth across peers.
    g_queue: Gauge,
}

impl TcpProbes {
    fn resolve(obs: &Obs) -> Self {
        TcpProbes {
            c_bytes_out: obs.counter("tcp.bytes_out"),
            c_bytes_in: obs.counter("tcp.bytes_in"),
            c_msgs_out: obs.counter("tcp.msgs_out"),
            c_msgs_in: obs.counter("tcp.msgs_in"),
            c_retries: obs.counter("tcp.retries"),
            c_backpressure: obs.counter("tcp.backpressure"),
            g_queue: obs.gauge("tcp.queue_depth"),
        }
    }
}

/// A TCP-backed [`Transport`].
pub struct TcpEndpoint {
    id: NodeId,
    listen_addr: SocketAddr,
    inbox_rx: Receiver<Message>,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Bind a listener on `addr` (use port 0 for an ephemeral port) and
    /// start accepting peer connections, with default timeouts.
    pub fn bind(id: NodeId, addr: &str) -> Result<Self, NetError> {
        Self::bind_with(id, addr, TcpConfig::default())
    }

    /// Bind with an explicit timeout/retry configuration.
    pub fn bind_with(id: NodeId, addr: &str, cfg: TcpConfig) -> Result<Self, NetError> {
        Self::bind_with_obs(id, addr, cfg, Obs::disabled())
    }

    /// [`TcpEndpoint::bind_with`] plus an observability handle: bytes
    /// in/out, send-queue depth, retry counts, and peer up/down events
    /// flow into its registry.
    pub fn bind_with_obs(
        id: NodeId,
        addr: &str,
        cfg: TcpConfig,
        obs: Obs,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let probes = TcpProbes::resolve(&obs);
        let shared = Arc::new(Shared {
            peers: Mutex::new(HashMap::new()),
            neighbors: RwLock::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            inbox_tx,
            readers: Mutex::new(Vec::new()),
            handshakes: Mutex::new(Vec::new()),
            cfg,
            obs,
            probes,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("p2p-accept-{id}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(TcpEndpoint {
            id,
            listen_addr,
            inbox_rx,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address peers should connect to.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Set the node id after bootstrap (the hub assigns ids, but the
    /// listener must exist *before* joining so the node can announce a
    /// real address — bind with a placeholder, then call this before
    /// any [`TcpEndpoint::connect_to`]).
    pub fn set_id(&mut self, id: NodeId) {
        self.id = id;
    }

    /// Open a link to a peer (the hub told us its id and address),
    /// retrying with exponential backoff on failure.
    pub fn connect_to(&self, peer: NodeId, addr: SocketAddr) -> Result<(), NetError> {
        let cfg = &self.shared.cfg;
        let mut backoff = cfg.backoff_base;
        let mut last_err = NetError::Closed;
        for attempt in 0..=cfg.connect_retries {
            if attempt > 0 {
                self.shared.probes.c_retries.incr();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.backoff_max);
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(NetError::Closed);
            }
            match dial(self.id, addr, cfg) {
                Ok(stream) => {
                    register_peer(&self.shared, peer, stream);
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Stop all threads and drop connections. Bounded even with
    /// stalled peers: sockets are force-closed, which unblocks any
    /// reader or writer parked in the kernel.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Close every socket first (unblocks reads and stalled writes),
        // then drop the senders (stops idle writers) and join.
        let peers: Vec<Peer> = self.shared.peers.lock().drain().map(|(_, p)| p).collect();
        for p in &peers {
            let _ = p.stream.shutdown(Shutdown::Both);
        }
        for p in peers {
            drop(p.tx);
            let _ = p.writer.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Establish one outbound connection and run the id handshake, both
/// under timeouts.
fn dial(id: NodeId, addr: SocketAddr, cfg: &TcpConfig) -> Result<TcpStream, NetError> {
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    // Identify ourselves so the peer registers the reverse edge.
    stream.write_all(&(id as u64).to_le_bytes())?;
    stream.flush()?;
    stream.set_write_timeout(None).ok();
    Ok(stream)
}

/// Register a connected peer: spawn its writer (draining a bounded
/// queue) and reader threads, add to the neighbor list if new. An
/// existing link to the same peer is force-closed and replaced.
fn register_peer(shared: &Arc<Shared>, peer: NodeId, stream: TcpStream) {
    let read_half = stream.try_clone().expect("clone tcp stream");
    let write_half = stream.try_clone().expect("clone tcp stream");
    write_half
        .set_write_timeout(Some(shared.cfg.write_timeout))
        .ok();
    let (tx, rx) = bounded(shared.cfg.outbound_queue);
    let writer_shared = Arc::clone(shared);
    let writer = std::thread::Builder::new()
        .name(format!("p2p-write-{peer}"))
        .spawn(move || writer_loop(write_half, rx, peer, writer_shared))
        .expect("spawn writer thread");
    if let Some(old) = shared.peers.lock().insert(
        peer,
        Peer {
            tx,
            stream,
            writer,
        },
    ) {
        let _ = old.stream.shutdown(Shutdown::Both);
    }
    {
        let mut nb = shared.neighbors.write();
        if !nb.contains(&peer) {
            nb.push(peer);
        }
    }
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::Builder::new()
        .name(format!("p2p-read-{peer}"))
        .spawn(move || reader_loop(read_half, peer, reader_shared))
        .expect("spawn reader thread");
    shared.readers.lock().push(reader);
    shared
        .obs
        .event("tcp.peer_up", &[("peer", Value::U(peer as u64))]);
}

/// Forget a peer (connection error or departure). The socket is
/// closed, which terminates its reader and writer threads.
fn drop_peer(shared: &Shared, peer: NodeId) {
    let known = shared.peers.lock().remove(&peer).map(|p| {
        let _ = p.stream.shutdown(Shutdown::Both);
    });
    shared.neighbors.write().retain(|&n| n != peer);
    if known.is_some() {
        shared
            .obs
            .event("tcp.peer_down", &[("peer", Value::U(peer as u64))]);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Don't leak the connection that raced shutdown.
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        // Handshake on its own thread with a read timeout: a silent
        // connector can neither wedge this loop nor hang forever.
        let hs_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("p2p-handshake".into())
            .spawn(move || handshake_incoming(stream, hs_shared))
            .expect("spawn handshake thread");
        let mut hs = shared.handshakes.lock();
        hs.retain(|h| !h.is_finished());
        hs.push(handle);
    }
    let hs = std::mem::take(&mut *shared.handshakes.lock());
    for h in hs {
        let _ = h.join();
    }
}

/// Accept-side id handshake; times out instead of blocking forever.
fn handshake_incoming(mut stream: TcpStream, shared: Arc<Shared>) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.cfg.handshake_timeout))
        .ok();
    // First 8 bytes: the connecting peer's id.
    let mut id_buf = [0u8; 8];
    if stream.read_exact(&mut id_buf).is_err() {
        return; // silent or dead connector: discard
    }
    stream.set_read_timeout(None).ok();
    if shared.shutdown.load(Ordering::Acquire) {
        return;
    }
    let peer = u64::from_le_bytes(id_buf) as NodeId;
    register_peer(&shared, peer, stream);
}

/// Drain one peer's outbound queue onto its socket. Exits when the
/// queue disconnects (endpoint shutdown or peer dropped) or a write
/// fails (stall past the write timeout, or connection loss).
fn writer_loop(mut stream: TcpStream, rx: Receiver<Message>, peer: NodeId, shared: Arc<Shared>) {
    while let Ok(msg) = rx.recv() {
        shared.probes.g_queue.add(-1);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let frame_bytes = (msg.wire_size() + 4) as u64;
        if write_frame(&mut stream, &msg).is_err() {
            drop_peer(&shared, peer);
            break;
        }
        shared.probes.c_bytes_out.add(frame_bytes);
        shared.probes.c_msgs_out.incr();
    }
}

fn reader_loop(mut stream: TcpStream, peer: NodeId, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match read_frame(&mut stream) {
            Ok(msg) => {
                shared.probes.c_bytes_in.add((msg.wire_size() + 4) as u64);
                shared.probes.c_msgs_in.incr();
                let leaving = matches!(msg, Message::Leave { .. });
                if shared.inbox_tx.send(msg).is_err() {
                    break;
                }
                if leaving {
                    drop_peer(&shared, peer);
                    break;
                }
            }
            Err(_) => {
                // Connection dropped or corrupt stream: forget the peer.
                drop_peer(&shared, peer);
                break;
            }
        }
    }
}

impl Transport for TcpEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.shared.neighbors.read().clone()
    }

    /// Enqueue for the peer's writer thread. Never performs socket
    /// I/O and never blocks: a stalled peer surfaces as
    /// [`NetError::Backpressure`] once its queue fills.
    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        let tx = {
            let peers = self.shared.peers.lock();
            peers
                .get(&to)
                .ok_or(NetError::UnknownPeer(to))?
                .tx
                .clone()
        };
        match tx.try_send(msg) {
            Ok(()) => {
                self.shared.probes.g_queue.add(1);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.shared.probes.c_backpressure.incr();
                Err(NetError::Backpressure(to))
            }
            Err(TrySendError::Disconnected(_)) => Err(NetError::UnknownPeer(to)),
        }
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox_rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn recv_with_timeout(ep: &mut TcpEndpoint, millis: u64) -> Option<Message> {
        let deadline = Instant::now() + Duration::from_millis(millis);
        while Instant::now() < deadline {
            if let Some(m) = ep.try_recv() {
                return Some(m);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    fn wait_for_neighbors(ep: &TcpEndpoint, want: usize, millis: u64) {
        let deadline = Instant::now() + Duration::from_millis(millis);
        while ep.neighbors().len() < want && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn two_nodes_exchange_tours() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        // Wait for b to register the reverse edge.
        wait_for_neighbors(&b, 1, 2000);
        assert_eq!(b.neighbors(), vec![0]);
        assert_eq!(a.neighbors(), vec![1]);

        let msg = Message::TourFound {
            from: 0,
            id: 7,
            length: 1234,
            order: (0..100).collect(),
        };
        a.send(1, msg.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut b, 2000), Some(msg));

        // And the reverse direction over the same socket pair.
        let reply = Message::OptimumFound { from: 1, length: 9 };
        b.send(0, reply.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut a, 2000), Some(reply));
    }

    #[test]
    fn obs_counts_bytes_and_messages_both_directions() {
        let obs_a = Obs::for_node(0);
        let obs_b = Obs::for_node(1);
        let mut a =
            TcpEndpoint::bind_with_obs(0, "127.0.0.1:0", TcpConfig::default(), obs_a.clone())
                .unwrap();
        let mut b =
            TcpEndpoint::bind_with_obs(1, "127.0.0.1:0", TcpConfig::default(), obs_b.clone())
                .unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);

        let msg = Message::TourFound {
            from: 0,
            id: 1,
            length: 10,
            order: (0..50).collect(),
        };
        let frame_bytes = (msg.wire_size() + 4) as u64;
        a.send(1, msg.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut b, 2000), Some(msg));

        // The writer thread records bytes after the write completes;
        // give it a moment.
        let deadline = Instant::now() + Duration::from_secs(2);
        while obs_a.snapshot().counter("tcp.bytes_out") < frame_bytes
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        let sa = obs_a.snapshot();
        let sb = obs_b.snapshot();
        assert_eq!(sa.counter("tcp.bytes_out"), frame_bytes);
        assert_eq!(sa.counter("tcp.msgs_out"), 1);
        assert_eq!(sb.counter("tcp.bytes_in"), frame_bytes);
        assert_eq!(sb.counter("tcp.msgs_in"), 1);
        // The queue drained back to zero once the frame was written.
        assert_eq!(sa.gauges.get("tcp.queue_depth").copied(), Some(0));
        if obs_api::ENABLED {
            assert!(obs_b.events().iter().any(|e| e.kind == "tcp.peer_up"));
        }
    }

    #[test]
    fn leave_removes_peer() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);
        a.leave();
        let got = recv_with_timeout(&mut b, 2000);
        assert_eq!(got, Some(Message::Leave { from: 0 }));
        let deadline = Instant::now() + Duration::from_secs(2);
        while !b.neighbors().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(b.neighbors().is_empty());
    }

    #[test]
    fn unknown_peer_errors() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let err = a.send(9, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(9)));
    }

    /// Satellite bugfix test: connecting to a dead address fails
    /// within the configured timeout/retry budget instead of hanging.
    #[test]
    fn connect_to_dead_address_fails_within_timeout() {
        let a = TcpEndpoint::bind_with(0, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        // Grab a port that was live and is now certainly dead.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = Instant::now();
        let res = a.connect_to(7, dead);
        assert!(res.is_err(), "connected to a dead address");
        // fast_fail: 2 attempts x 200 ms connect timeout + 10 ms
        // backoff, plus slack for a slow CI host.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dead connect took {:?}",
            start.elapsed()
        );
        assert!(a.neighbors().is_empty());
    }

    /// Satellite bugfix test: a connector that never sends its id no
    /// longer wedges the accept path — later peers still get through.
    #[test]
    fn silent_connector_does_not_block_accepts() {
        let mut b = TcpEndpoint::bind_with(1, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        // A silent connection that never completes the handshake.
        let _silent = TcpStream::connect(b.listen_addr()).unwrap();
        // A real peer connecting right after must still be accepted.
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);
        assert_eq!(b.neighbors(), vec![0]);
        a.send(1, Message::Leave { from: 0 }).unwrap();
        assert_eq!(
            recv_with_timeout(&mut b, 2000),
            Some(Message::Leave { from: 0 })
        );
    }

    /// A stalled peer (never reads, kernel buffers full) cannot block
    /// sends to other peers, and shutdown still completes quickly.
    #[test]
    fn stalled_peer_does_not_block_other_sends_or_shutdown() {
        let mut cfg = TcpConfig::fast_fail();
        cfg.outbound_queue = 4;
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", cfg.clone()).unwrap();
        let mut healthy = TcpEndpoint::bind_with(1, "127.0.0.1:0", cfg.clone()).unwrap();
        a.connect_to(1, healthy.listen_addr()).unwrap();

        // The "stalled" peer: accepts the connection, then never reads.
        let stall_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stall_addr = stall_listener.local_addr().unwrap();
        let stall_thread = std::thread::spawn(move || {
            let (s, _) = stall_listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(3));
            drop(s);
        });
        a.connect_to(2, stall_addr).unwrap();

        // Flood the stalled peer with big frames until backpressure.
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 1,
            order: (0..200_000).collect(),
        };
        let mut saw_backpressure = false;
        for _ in 0..64 {
            match a.send(2, big.clone()) {
                Err(NetError::Backpressure(2)) => {
                    saw_backpressure = true;
                    break;
                }
                Err(_) => break,
                Ok(()) => {}
            }
        }
        assert!(saw_backpressure, "queue to the stalled peer never filled");

        // Sends to the healthy peer are instant despite the stall.
        let start = Instant::now();
        a.send(1, Message::OptimumFound { from: 0, length: 1 })
            .unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(recv_with_timeout(&mut healthy, 2000).is_some());

        // Shutdown joins every thread in bounded time.
        let start = Instant::now();
        a.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown took {:?} with a stalled peer",
            start.elapsed()
        );
        let _ = stall_thread.join();
    }

    #[test]
    fn shutdown_is_idempotent_and_bounded() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        let start = Instant::now();
        a.shutdown();
        a.shutdown();
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
