//! Real TCP transport.
//!
//! Each node binds a listener; peer links are ordinary TCP connections
//! carrying the length-prefixed binary frames of [`crate::codec`]. A
//! connecting peer first sends its 8-byte node id, so the accepting
//! side can register the reverse edge — this implements the paper's
//! "if the contacted node did not know the contacting node before, the
//! contacting node is added to the contacted node's neighbor list"
//! (§2.2).
//!
//! The endpoint is hardened against misbehaving links and peers (see
//! DESIGN.md §6, "Fault model"):
//!
//! - `connect_to` uses a connect timeout and bounded retries with
//!   exponential backoff;
//! - the id handshake on both sides is bounded by a timeout, so a
//!   silent connector cannot wedge the accept path (handshakes run on
//!   their own short-lived threads);
//! - every peer has a bounded outbound queue drained by a dedicated
//!   writer thread, so `send` never performs socket I/O — a stalled
//!   peer fills its own queue ([`crate::NetError::Backpressure`])
//!   without blocking sends to anyone else;
//! - `shutdown` closes all sockets and joins the accept, reader, and
//!   writer threads within bounded time.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use obs_api::{Counter, Gauge, Obs, Value};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codec::{read_frame, write_frame};
use crate::message::{Message, NodeId};
use crate::transport::Transport;
use crate::NetError;

/// Callback invoked (outside all locks) whenever a peer goes down.
type DownHook = Box<dyn Fn(NodeId) + Send>;

/// Timeouts and retry policy of a [`TcpEndpoint`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Timeout for establishing an outbound connection.
    pub connect_timeout: Duration,
    /// Timeout for the 8-byte id handshake (both directions).
    pub handshake_timeout: Duration,
    /// Timeout for one frame write; a peer that stalls longer is
    /// dropped.
    pub write_timeout: Duration,
    /// Extra connection attempts after the first failure.
    pub connect_retries: u32,
    /// Initial backoff between attempts (doubles per retry).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Per-peer outbound queue capacity; a full queue makes `send`
    /// return [`NetError::Backpressure`] instead of blocking.
    pub outbound_queue: usize,
    /// Liveness timeout: a peer from which no frame (of any kind) has
    /// arrived for this long is declared down — the link is closed,
    /// `tcp.peer_down` is emitted, and the death is surfaced through
    /// [`crate::Transport::take_peer_downs`]. `None` (the default)
    /// disables the failure detector entirely: no prober thread is
    /// spawned and behavior is identical to pre-liveness builds.
    ///
    /// When enabled, a prober thread sends [`Message::Ping`] probes at
    /// a jittered interval of ¼–½ the timeout, so idle-but-responsive
    /// peers refresh their clocks (pongs are answered at the reader
    /// level and never reach the application inbox).
    pub liveness_timeout: Option<Duration>,
    /// Hub-silence threshold for the failover-aware self-healer
    /// ([`crate::hub::attach_self_healing_with_failover`]): when a
    /// lifecycle request to the hub fails and the last successful hub
    /// exchange is older than this, the hub is declared silent and the
    /// healer asks its failover callback for a successor address.
    /// `None` (the default) never fails over — requests to a dead hub
    /// simply error, exactly as pre-migration builds.
    pub hub_liveness_timeout: Option<Duration>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(10),
            connect_retries: 4,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(1),
            outbound_queue: 256,
            liveness_timeout: None,
            hub_liveness_timeout: None,
        }
    }
}

impl TcpConfig {
    /// A tight-deadline profile for tests: small timeouts, one retry.
    pub fn fast_fail() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(200),
            handshake_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(500),
            connect_retries: 1,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(50),
            ..Default::default()
        }
    }

    /// Enable the failure detector with the given timeout.
    pub fn with_liveness(mut self, timeout: Duration) -> Self {
        self.liveness_timeout = Some(timeout);
        self
    }

    /// Enable hub-silence detection with the given threshold (see
    /// [`TcpConfig::hub_liveness_timeout`]).
    pub fn with_hub_liveness(mut self, timeout: Duration) -> Self {
        self.hub_liveness_timeout = Some(timeout);
        self
    }
}

/// A live peer link: the queue feeding its writer thread and the
/// socket handle used to force-close the link. `gen` identifies this
/// particular link: when a link is replaced (e.g. a repair re-dial),
/// the old link's reader/writer threads die with a stale generation
/// and must not tear down the replacement.
struct Peer {
    tx: Sender<Message>,
    stream: TcpStream,
    writer: JoinHandle<()>,
    gen: u64,
}

/// Shared mutable state of one TCP endpoint.
struct Shared {
    /// This node's id. Atomic because the hub assigns the real id
    /// after bind ([`TcpEndpoint::set_id`]) while the prober and
    /// reader threads are already running.
    id: AtomicUsize,
    /// Live peer links, keyed by peer id.
    peers: Mutex<HashMap<NodeId, Peer>>,
    /// Known neighbor ids (order = connection order).
    neighbors: RwLock<Vec<NodeId>>,
    /// Per-peer last-seen clock, refreshed on every inbound frame.
    last_seen: Mutex<HashMap<NodeId, Instant>>,
    /// Outstanding liveness-probe send times (local obs clock, ns) by
    /// peer — consumed by the matching pong to estimate RTT.
    ping_sent: Mutex<HashMap<NodeId, u64>>,
    /// Latest `(rtt_ns, offset_ns)` estimate per peer, where offset is
    /// the peer's obs clock minus ours (`t_remote - (t_send + rtt/2)`).
    /// Telemetry consumers use these to align cross-node timelines.
    clock_stats: Mutex<HashMap<NodeId, (u64, i64)>>,
    /// Peers declared down since the last `take_peer_downs` drain.
    peer_downs: Mutex<Vec<NodeId>>,
    /// Monotonic link-generation counter (see [`Peer::gen`]).
    link_gen: AtomicU64,
    /// Optional callback invoked (outside all locks) whenever a peer
    /// goes down — the hub lifecycle client hangs off this to report
    /// deaths and fetch repair assignments.
    down_hook: Mutex<Option<DownHook>>,
    /// Set on shutdown; accept, handshake, prober, reader, and writer
    /// threads exit.
    shutdown: AtomicBool,
    inbox_tx: Sender<Message>,
    /// Reader threads, joined on shutdown.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// In-flight incoming handshakes (bounded by `handshake_timeout`).
    handshakes: Mutex<Vec<JoinHandle<()>>>,
    cfg: TcpConfig,
    obs: Obs,
    probes: TcpProbes,
}

/// Wire-level metric handles, resolved once at bind time. All no-ops
/// unless the endpoint was created with [`TcpEndpoint::bind_with_obs`].
struct TcpProbes {
    /// Frame bytes written to / read from sockets (incl. the 4-byte
    /// length prefix).
    c_bytes_out: Counter,
    c_bytes_in: Counter,
    /// Messages sent / received at the transport surface.
    c_msgs_out: Counter,
    c_msgs_in: Counter,
    /// Extra connection attempts after a first failure.
    c_retries: Counter,
    /// Sends refused because a peer's outbound queue was full.
    c_backpressure: Counter,
    /// Current total outbound-queue depth across peers.
    g_queue: Gauge,
}

impl TcpProbes {
    fn resolve(obs: &Obs) -> Self {
        TcpProbes {
            c_bytes_out: obs.counter("tcp.bytes_out"),
            c_bytes_in: obs.counter("tcp.bytes_in"),
            c_msgs_out: obs.counter("tcp.msgs_out"),
            c_msgs_in: obs.counter("tcp.msgs_in"),
            c_retries: obs.counter("tcp.retries"),
            c_backpressure: obs.counter("tcp.backpressure"),
            g_queue: obs.gauge("tcp.queue_depth"),
        }
    }
}

/// A TCP-backed [`Transport`].
pub struct TcpEndpoint {
    id: NodeId,
    listen_addr: SocketAddr,
    inbox_rx: Receiver<Message>,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
}

/// A cloneable control handle onto a live [`TcpEndpoint`]: lets
/// auxiliary threads (e.g. the hub lifecycle client applying repair
/// assignments) rewire peers while the endpoint itself is owned by the
/// node loop.
#[derive(Clone)]
pub struct TcpHandle {
    shared: Arc<Shared>,
}

impl TcpHandle {
    /// The endpoint's current node id.
    pub fn node_id(&self) -> NodeId {
        self.shared.id.load(Ordering::Relaxed)
    }

    /// Current neighbor ids.
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.shared.neighbors.read().clone()
    }

    /// Open (or replace) a link to a peer, with the endpoint's retry
    /// policy.
    pub fn connect_to(&self, peer: NodeId, addr: SocketAddr) -> Result<(), NetError> {
        connect_peer(&self.shared, peer, addr)
    }

    /// Force-close the link to a peer (counts as a peer death).
    pub fn disconnect(&self, peer: NodeId) {
        drop_peer(&self.shared, peer);
    }

    /// Latest Ping/Pong-derived `(rtt_ns, offset_ns)` estimate for a
    /// peer, where `offset_ns` is the peer's obs clock minus ours.
    /// `None` until the liveness prober has completed a round trip to
    /// that peer (requires [`TcpConfig::liveness_timeout`]).
    pub fn clock_stats(&self, peer: NodeId) -> Option<(u64, i64)> {
        self.shared.clock_stats.lock().get(&peer).copied()
    }

    /// All per-peer `(peer, rtt_ns, offset_ns)` estimates gathered so
    /// far, in unspecified order.
    pub fn all_clock_stats(&self) -> Vec<(NodeId, u64, i64)> {
        self.shared
            .clock_stats
            .lock()
            .iter()
            .map(|(&p, &(rtt, off))| (p, rtt, off))
            .collect()
    }
}

impl TcpEndpoint {
    /// Bind a listener on `addr` (use port 0 for an ephemeral port) and
    /// start accepting peer connections, with default timeouts.
    pub fn bind(id: NodeId, addr: &str) -> Result<Self, NetError> {
        Self::bind_with(id, addr, TcpConfig::default())
    }

    /// Bind with an explicit timeout/retry configuration.
    pub fn bind_with(id: NodeId, addr: &str, cfg: TcpConfig) -> Result<Self, NetError> {
        Self::bind_with_obs(id, addr, cfg, Obs::disabled())
    }

    /// [`TcpEndpoint::bind_with`] plus an observability handle: bytes
    /// in/out, send-queue depth, retry counts, and peer up/down events
    /// flow into its registry.
    pub fn bind_with_obs(
        id: NodeId,
        addr: &str,
        cfg: TcpConfig,
        obs: Obs,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let probes = TcpProbes::resolve(&obs);
        let shared = Arc::new(Shared {
            id: AtomicUsize::new(id),
            peers: Mutex::new(HashMap::new()),
            neighbors: RwLock::new(Vec::new()),
            last_seen: Mutex::new(HashMap::new()),
            ping_sent: Mutex::new(HashMap::new()),
            clock_stats: Mutex::new(HashMap::new()),
            peer_downs: Mutex::new(Vec::new()),
            link_gen: AtomicU64::new(0),
            down_hook: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            inbox_tx,
            readers: Mutex::new(Vec::new()),
            handshakes: Mutex::new(Vec::new()),
            cfg,
            obs,
            probes,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("p2p-accept-{id}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        let probe_thread = shared.cfg.liveness_timeout.map(|timeout| {
            let probe_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("p2p-probe-{id}"))
                .spawn(move || probe_loop(probe_shared, timeout))
                .expect("spawn probe thread")
        });
        Ok(TcpEndpoint {
            id,
            listen_addr,
            inbox_rx,
            shared,
            accept_thread: Some(accept_thread),
            probe_thread,
        })
    }

    /// The address peers should connect to.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Set the node id after bootstrap (the hub assigns ids, but the
    /// listener must exist *before* joining so the node can announce a
    /// real address — bind with a placeholder, then call this before
    /// any [`TcpEndpoint::connect_to`]).
    pub fn set_id(&mut self, id: NodeId) {
        self.id = id;
        self.shared.id.store(id, Ordering::Relaxed);
    }

    /// Open a link to a peer (the hub told us its id and address),
    /// retrying with exponential backoff on failure.
    pub fn connect_to(&self, peer: NodeId, addr: SocketAddr) -> Result<(), NetError> {
        connect_peer(&self.shared, peer, addr)
    }

    /// A cloneable control handle for auxiliary threads (see
    /// [`TcpHandle`]).
    pub fn handle(&self) -> TcpHandle {
        TcpHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Install a callback invoked whenever a peer is declared down
    /// (liveness timeout, connection loss, or explicit disconnect).
    /// Called outside the endpoint's locks; replaces any previous
    /// hook.
    pub fn set_peer_down_hook(&self, hook: impl Fn(NodeId) + Send + 'static) {
        *self.shared.down_hook.lock() = Some(Box::new(hook));
    }

    /// Stop all threads and drop connections. Bounded even with
    /// stalled peers: sockets are force-closed, which unblocks any
    /// reader or writer parked in the kernel.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.probe_thread.take() {
            let _ = h.join();
        }
        // Close every socket first (unblocks reads and stalled writes),
        // then drop the senders (stops idle writers) and join.
        let peers: Vec<Peer> = self.shared.peers.lock().drain().map(|(_, p)| p).collect();
        for p in &peers {
            let _ = p.stream.shutdown(Shutdown::Both);
        }
        for p in peers {
            drop(p.tx);
            let _ = p.writer.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Open a link to `peer` with the endpoint's retry/backoff policy and
/// register it. Shared by [`TcpEndpoint::connect_to`] and
/// [`TcpHandle::connect_to`].
fn connect_peer(shared: &Arc<Shared>, peer: NodeId, addr: SocketAddr) -> Result<(), NetError> {
    let cfg = &shared.cfg;
    let id = shared.id.load(Ordering::Relaxed);
    let mut backoff = cfg.backoff_base;
    let mut last_err = NetError::Closed;
    for attempt in 0..=cfg.connect_retries {
        if attempt > 0 {
            shared.probes.c_retries.incr();
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_max);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        match dial(id, addr, cfg) {
            Ok(stream) => {
                register_peer(shared, peer, stream);
                return Ok(());
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Establish one outbound connection and run the id handshake, both
/// under timeouts.
fn dial(id: NodeId, addr: SocketAddr, cfg: &TcpConfig) -> Result<TcpStream, NetError> {
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(cfg.handshake_timeout)).ok();
    // Identify ourselves so the peer registers the reverse edge.
    stream.write_all(&(id as u64).to_le_bytes())?;
    stream.flush()?;
    stream.set_write_timeout(None).ok();
    Ok(stream)
}

/// Register a connected peer: spawn its writer (draining a bounded
/// queue) and reader threads, add to the neighbor list if new. An
/// existing link to the same peer is force-closed and replaced.
fn register_peer(shared: &Arc<Shared>, peer: NodeId, stream: TcpStream) {
    let gen = shared.link_gen.fetch_add(1, Ordering::Relaxed);
    let read_half = stream.try_clone().expect("clone tcp stream");
    let write_half = stream.try_clone().expect("clone tcp stream");
    write_half
        .set_write_timeout(Some(shared.cfg.write_timeout))
        .ok();
    let (tx, rx) = bounded(shared.cfg.outbound_queue);
    let writer_shared = Arc::clone(shared);
    let writer = std::thread::Builder::new()
        .name(format!("p2p-write-{peer}"))
        .spawn(move || writer_loop(write_half, rx, peer, gen, writer_shared))
        .expect("spawn writer thread");
    if let Some(old) = shared.peers.lock().insert(
        peer,
        Peer {
            tx,
            stream,
            writer,
            gen,
        },
    ) {
        let _ = old.stream.shutdown(Shutdown::Both);
    }
    {
        let mut nb = shared.neighbors.write();
        if !nb.contains(&peer) {
            nb.push(peer);
        }
    }
    shared.last_seen.lock().insert(peer, Instant::now());
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::Builder::new()
        .name(format!("p2p-read-{peer}"))
        .spawn(move || reader_loop(read_half, peer, gen, reader_shared))
        .expect("spawn reader thread");
    shared.readers.lock().push(reader);
    shared
        .obs
        .event("tcp.peer_up", &[("peer", Value::U(peer as u64))]);
}

/// Forget a peer (liveness timeout, connection error, or departure).
/// The socket is closed, which terminates its reader and writer
/// threads; the death is queued for [`Transport::take_peer_downs`] and
/// the down hook is invoked — both only on the first drop of a link,
/// so concurrent detection paths (prober, reader, writer) report each
/// death once.
fn drop_peer(shared: &Shared, peer: NodeId) {
    let known = shared.peers.lock().remove(&peer).map(|p| {
        let _ = p.stream.shutdown(Shutdown::Both);
    });
    shared.neighbors.write().retain(|&n| n != peer);
    shared.last_seen.lock().remove(&peer);
    shared.ping_sent.lock().remove(&peer);
    shared.clock_stats.lock().remove(&peer);
    if known.is_some() {
        shared.peer_downs.lock().push(peer);
        shared
            .obs
            .event("tcp.peer_down", &[("peer", Value::U(peer as u64))]);
        // Take the hook out while calling it so a hook that itself
        // drops a peer (e.g. a repair that replaces a link) cannot
        // deadlock on the hook lock.
        let hook = shared.down_hook.lock().take();
        if let Some(h) = hook {
            h(peer);
            let mut slot = shared.down_hook.lock();
            if slot.is_none() {
                *slot = Some(h);
            }
        }
    }
}

/// Like [`drop_peer`], but only if the current link to `peer` still
/// has generation `gen` — the reader/writer threads of a replaced
/// link must not tear down the replacement.
fn drop_peer_if(shared: &Shared, peer: NodeId, gen: u64) {
    {
        let peers = shared.peers.lock();
        if peers.get(&peer).map(|p| p.gen) != Some(gen) {
            return;
        }
    }
    drop_peer(shared, peer);
}

/// Failure-detector thread: probes every peer at a jittered interval
/// (¼–½ of `timeout`) and declares peers silent past `timeout` down.
fn probe_loop(shared: Arc<Shared>, timeout: Duration) {
    let seed = shared.id.load(Ordering::Relaxed) as u64 ^ 0x9e37_79b9_7f4a_7c15;
    let mut rng = SmallRng::seed_from_u64(seed);
    loop {
        let base = (timeout / 4).max(Duration::from_millis(5));
        let jitter = rng.gen_range(0..base.as_millis().max(1) as u64);
        let tick = base + Duration::from_millis(jitter);
        let end = Instant::now() + tick;
        while Instant::now() < end {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let self_id = shared.id.load(Ordering::Relaxed);
        let peers: Vec<(NodeId, Sender<Message>)> = shared
            .peers
            .lock()
            .iter()
            .map(|(&p, peer)| (p, peer.tx.clone()))
            .collect();
        let now = Instant::now();
        for (p, tx) in peers {
            let stale = shared
                .last_seen
                .lock()
                .get(&p)
                .is_none_or(|t| now.duration_since(*t) > timeout);
            if stale {
                drop_peer(&shared, p);
            } else if tx.try_send(Message::Ping { from: self_id }).is_ok() {
                shared.probes.g_queue.add(1);
                // Stamp the send so the matching pong yields an RTT
                // and clock-offset estimate (enqueue time; the queue
                // is empty on an idle link, so the skew is small).
                shared.ping_sent.lock().insert(p, shared.obs.t_ns());
            }
            // A full queue means the peer is stalled; skip the probe —
            // the silence will trip the timeout by itself.
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Don't leak the connection that raced shutdown.
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        // Handshake on its own thread with a read timeout: a silent
        // connector can neither wedge this loop nor hang forever.
        let hs_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("p2p-handshake".into())
            .spawn(move || handshake_incoming(stream, hs_shared))
            .expect("spawn handshake thread");
        let mut hs = shared.handshakes.lock();
        hs.retain(|h| !h.is_finished());
        hs.push(handle);
    }
    let hs = std::mem::take(&mut *shared.handshakes.lock());
    for h in hs {
        let _ = h.join();
    }
}

/// Accept-side id handshake; times out instead of blocking forever.
fn handshake_incoming(mut stream: TcpStream, shared: Arc<Shared>) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.cfg.handshake_timeout))
        .ok();
    // First 8 bytes: the connecting peer's id.
    let mut id_buf = [0u8; 8];
    if stream.read_exact(&mut id_buf).is_err() {
        return; // silent or dead connector: discard
    }
    stream.set_read_timeout(None).ok();
    if shared.shutdown.load(Ordering::Acquire) {
        return;
    }
    let peer = u64::from_le_bytes(id_buf) as NodeId;
    register_peer(&shared, peer, stream);
}

/// Drain one peer's outbound queue onto its socket. Exits when the
/// queue disconnects (endpoint shutdown or peer dropped) or a write
/// fails (stall past the write timeout, or connection loss).
fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<Message>,
    peer: NodeId,
    gen: u64,
    shared: Arc<Shared>,
) {
    while let Ok(msg) = rx.recv() {
        shared.probes.g_queue.add(-1);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let frame_bytes = (msg.wire_size() + 4) as u64;
        if write_frame(&mut stream, &msg).is_err() {
            drop_peer_if(&shared, peer, gen);
            break;
        }
        shared.probes.c_bytes_out.add(frame_bytes);
        shared.probes.c_msgs_out.incr();
    }
}

fn reader_loop(mut stream: TcpStream, peer: NodeId, gen: u64, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match read_frame(&mut stream) {
            Ok(msg) => {
                shared.probes.c_bytes_in.add((msg.wire_size() + 4) as u64);
                shared.probes.c_msgs_in.incr();
                // Any frame proves the peer alive.
                shared.last_seen.lock().insert(peer, Instant::now());
                match msg {
                    // Liveness traffic is handled here at the wire
                    // level and never reaches the application inbox,
                    // so enabling the detector cannot change what the
                    // node loop observes.
                    Message::Ping { .. } => {
                        let self_id = shared.id.load(Ordering::Relaxed);
                        let tx = shared.peers.lock().get(&peer).map(|p| p.tx.clone());
                        if let Some(tx) = tx {
                            let pong = Message::Pong {
                                from: self_id,
                                t_ns: shared.obs.t_ns(),
                            };
                            if tx.try_send(pong).is_ok() {
                                shared.probes.g_queue.add(1);
                            }
                        }
                    }
                    Message::Pong { t_ns: t_remote, .. } => {
                        // Close the probe round trip: estimate the
                        // peer's RTT and clock offset for cross-node
                        // timeline alignment.
                        if let Some(t_send) = shared.ping_sent.lock().remove(&peer) {
                            let now = shared.obs.t_ns();
                            let rtt = now.saturating_sub(t_send);
                            let offset = (t_remote as i128
                                - (t_send as i128 + rtt as i128 / 2))
                                .clamp(i64::MIN as i128, i64::MAX as i128)
                                as i64;
                            shared.clock_stats.lock().insert(peer, (rtt, offset));
                        }
                    }
                    other => {
                        let leaving = matches!(other, Message::Leave { .. });
                        if shared.inbox_tx.send(other).is_err() {
                            break;
                        }
                        if leaving {
                            drop_peer_if(&shared, peer, gen);
                            break;
                        }
                    }
                }
            }
            Err(_) => {
                // Connection dropped or corrupt stream: forget the peer.
                drop_peer_if(&shared, peer, gen);
                break;
            }
        }
    }
}

impl Transport for TcpEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.shared.neighbors.read().clone()
    }

    /// Enqueue for the peer's writer thread. Never performs socket
    /// I/O and never blocks: a stalled peer surfaces as
    /// [`NetError::Backpressure`] once its queue fills.
    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        let tx = {
            let peers = self.shared.peers.lock();
            peers
                .get(&to)
                .ok_or(NetError::UnknownPeer(to))?
                .tx
                .clone()
        };
        match tx.try_send(msg) {
            Ok(()) => {
                self.shared.probes.g_queue.add(1);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.shared.probes.c_backpressure.incr();
                Err(NetError::Backpressure(to))
            }
            Err(TrySendError::Disconnected(_)) => Err(NetError::UnknownPeer(to)),
        }
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox_rx.try_recv().ok()
    }

    fn take_peer_downs(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut *self.shared.peer_downs.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::wait_until;
    use std::time::{Duration, Instant};

    fn recv_with_timeout(ep: &mut TcpEndpoint, millis: u64) -> Option<Message> {
        let mut got = None;
        wait_until(
            || {
                got = ep.try_recv();
                got.is_some()
            },
            Duration::from_millis(millis),
        );
        got
    }

    fn wait_for_neighbors(ep: &TcpEndpoint, want: usize, millis: u64) {
        wait_until(
            || ep.neighbors().len() >= want,
            Duration::from_millis(millis),
        );
    }

    #[test]
    fn two_nodes_exchange_tours() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        // Wait for b to register the reverse edge.
        wait_for_neighbors(&b, 1, 2000);
        assert_eq!(b.neighbors(), vec![0]);
        assert_eq!(a.neighbors(), vec![1]);

        let msg = Message::TourFound {
            from: 0,
            id: 7,
            length: 1234,
            order: (0..100).collect(),
        };
        a.send(1, msg.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut b, 2000), Some(msg));

        // And the reverse direction over the same socket pair.
        let reply = Message::OptimumFound { from: 1, length: 9 };
        b.send(0, reply.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut a, 2000), Some(reply));
    }

    #[test]
    fn obs_counts_bytes_and_messages_both_directions() {
        let obs_a = Obs::for_node(0);
        let obs_b = Obs::for_node(1);
        let mut a =
            TcpEndpoint::bind_with_obs(0, "127.0.0.1:0", TcpConfig::default(), obs_a.clone())
                .unwrap();
        let mut b =
            TcpEndpoint::bind_with_obs(1, "127.0.0.1:0", TcpConfig::default(), obs_b.clone())
                .unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);

        let msg = Message::TourFound {
            from: 0,
            id: 1,
            length: 10,
            order: (0..50).collect(),
        };
        let frame_bytes = (msg.wire_size() + 4) as u64;
        a.send(1, msg.clone()).unwrap();
        assert_eq!(recv_with_timeout(&mut b, 2000), Some(msg));

        // The writer thread records bytes after the write completes;
        // give it a moment.
        wait_until(
            || obs_a.snapshot().counter("tcp.bytes_out") >= frame_bytes,
            Duration::from_secs(2),
        );
        let sa = obs_a.snapshot();
        let sb = obs_b.snapshot();
        assert_eq!(sa.counter("tcp.bytes_out"), frame_bytes);
        assert_eq!(sa.counter("tcp.msgs_out"), 1);
        assert_eq!(sb.counter("tcp.bytes_in"), frame_bytes);
        assert_eq!(sb.counter("tcp.msgs_in"), 1);
        // The queue drained back to zero once the frame was written.
        assert_eq!(sa.gauges.get("tcp.queue_depth").copied(), Some(0));
        if obs_api::ENABLED {
            assert!(obs_b.events().iter().any(|e| e.kind == "tcp.peer_up"));
        }
    }

    #[test]
    fn leave_removes_peer() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);
        a.leave();
        let got = recv_with_timeout(&mut b, 2000);
        assert_eq!(got, Some(Message::Leave { from: 0 }));
        assert!(wait_until(
            || b.neighbors().is_empty(),
            Duration::from_secs(2)
        ));
    }

    #[test]
    fn unknown_peer_errors() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let err = a.send(9, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(9)));
    }

    /// Satellite bugfix test: connecting to a dead address fails
    /// within the configured timeout/retry budget instead of hanging.
    #[test]
    fn connect_to_dead_address_fails_within_timeout() {
        let a = TcpEndpoint::bind_with(0, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        // Grab a port that was live and is now certainly dead.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = Instant::now();
        let res = a.connect_to(7, dead);
        assert!(res.is_err(), "connected to a dead address");
        // fast_fail: 2 attempts x 200 ms connect timeout + 10 ms
        // backoff, plus slack for a slow CI host.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dead connect took {:?}",
            start.elapsed()
        );
        assert!(a.neighbors().is_empty());
    }

    /// Satellite bugfix test: a connector that never sends its id no
    /// longer wedges the accept path — later peers still get through.
    #[test]
    fn silent_connector_does_not_block_accepts() {
        let mut b = TcpEndpoint::bind_with(1, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        // A silent connection that never completes the handshake.
        let _silent = TcpStream::connect(b.listen_addr()).unwrap();
        // A real peer connecting right after must still be accepted.
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);
        assert_eq!(b.neighbors(), vec![0]);
        a.send(1, Message::Leave { from: 0 }).unwrap();
        assert_eq!(
            recv_with_timeout(&mut b, 2000),
            Some(Message::Leave { from: 0 })
        );
    }

    /// A stalled peer (never reads, kernel buffers full) cannot block
    /// sends to other peers, and shutdown still completes quickly.
    #[test]
    fn stalled_peer_does_not_block_other_sends_or_shutdown() {
        let mut cfg = TcpConfig::fast_fail();
        cfg.outbound_queue = 4;
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", cfg.clone()).unwrap();
        let mut healthy = TcpEndpoint::bind_with(1, "127.0.0.1:0", cfg.clone()).unwrap();
        a.connect_to(1, healthy.listen_addr()).unwrap();

        // The "stalled" peer: accepts the connection, then never reads.
        let stall_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stall_addr = stall_listener.local_addr().unwrap();
        let stall_thread = std::thread::spawn(move || {
            let (s, _) = stall_listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(3));
            drop(s);
        });
        a.connect_to(2, stall_addr).unwrap();

        // Flood the stalled peer with big frames until backpressure.
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 1,
            order: (0..200_000).collect(),
        };
        let mut saw_backpressure = false;
        for _ in 0..64 {
            match a.send(2, big.clone()) {
                Err(NetError::Backpressure(2)) => {
                    saw_backpressure = true;
                    break;
                }
                Err(_) => break,
                Ok(()) => {}
            }
        }
        assert!(saw_backpressure, "queue to the stalled peer never filled");

        // Sends to the healthy peer are instant despite the stall.
        let start = Instant::now();
        a.send(1, Message::OptimumFound { from: 0, length: 1 })
            .unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(recv_with_timeout(&mut healthy, 2000).is_some());

        // Shutdown joins every thread in bounded time.
        let start = Instant::now();
        a.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown took {:?} with a stalled peer",
            start.elapsed()
        );
        let _ = stall_thread.join();
    }

    #[test]
    fn shutdown_is_idempotent_and_bounded() {
        let mut a = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
        let b = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        let start = Instant::now();
        a.shutdown();
        a.shutdown();
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    /// Half-open connection: the peer's socket stays open but it never
    /// reads or writes. The liveness timeout must declare it down,
    /// emit `tcp.peer_down`, surface it via `take_peer_downs`, and the
    /// outbound queue depth must stay bounded the whole time.
    #[test]
    fn half_open_peer_trips_liveness_timeout() {
        let mut cfg = TcpConfig::fast_fail().with_liveness(Duration::from_millis(400));
        cfg.outbound_queue = 8;
        let queue_bound = cfg.outbound_queue as i64;
        let obs = Obs::for_node(0);
        let mut a = TcpEndpoint::bind_with_obs(0, "127.0.0.1:0", cfg, obs.clone()).unwrap();

        // The frozen peer: accepts, then neither reads nor writes.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let frozen_addr = listener.local_addr().unwrap();
        let frozen = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(4));
            drop(s);
        });
        a.connect_to(2, frozen_addr).unwrap();
        assert_eq!(a.neighbors(), vec![2]);

        // Keep some application traffic flowing at the frozen peer so
        // the queue has every chance to grow while we wait.
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 1,
            order: (0..50_000).collect(),
        };
        let died = wait_until(
            || {
                let _ = a.send(2, big.clone());
                let depth = obs.snapshot().gauges.get("tcp.queue_depth").copied();
                assert!(
                    depth.unwrap_or(0) <= queue_bound,
                    "queue depth {depth:?} exceeded bound {queue_bound}"
                );
                a.neighbors().is_empty()
            },
            Duration::from_secs(5),
        );
        assert!(died, "frozen peer was never declared down");
        assert_eq!(a.take_peer_downs(), vec![2]);
        assert!(a.take_peer_downs().is_empty(), "downs reported twice");
        if obs_api::ENABLED {
            assert!(obs.events().iter().any(|e| e.kind == "tcp.peer_down"));
        }
        let _ = frozen.join();
    }

    /// Idle but responsive peers must NOT be declared down: ping/pong
    /// keeps the last-seen clocks fresh without any application
    /// traffic, and none of it reaches the inbox.
    #[test]
    fn idle_responsive_peers_survive_liveness_timeout() {
        let cfg = TcpConfig::fast_fail().with_liveness(Duration::from_millis(300));
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", cfg.clone()).unwrap();
        let mut b = TcpEndpoint::bind_with(1, "127.0.0.1:0", cfg).unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);

        // Sit idle for several timeouts.
        std::thread::sleep(Duration::from_millis(1200));
        assert_eq!(a.neighbors(), vec![1]);
        assert_eq!(b.neighbors(), vec![0]);
        assert!(a.take_peer_downs().is_empty());
        assert!(b.take_peer_downs().is_empty());
        // The liveness chatter stayed below the application surface.
        assert!(a.try_recv().is_none());
        assert!(b.try_recv().is_none());

        // The link still works for real traffic.
        a.send(1, Message::OptimumFound { from: 0, length: 5 })
            .unwrap();
        assert_eq!(
            recv_with_timeout(&mut b, 2000),
            Some(Message::OptimumFound { from: 0, length: 5 })
        );
    }

    /// The liveness prober's ping/pong round trip yields an RTT and
    /// clock-offset estimate for each peer, readable from the handle.
    #[test]
    fn probe_round_trip_estimates_rtt_and_offset() {
        let cfg = TcpConfig::fast_fail().with_liveness(Duration::from_millis(200));
        let obs_a = Obs::for_node(0);
        let a = TcpEndpoint::bind_with_obs(0, "127.0.0.1:0", cfg.clone(), obs_a).unwrap();
        let b = TcpEndpoint::bind_with_obs(1, "127.0.0.1:0", cfg, Obs::for_node(1)).unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        let h = a.handle();
        let got = wait_until(|| h.clock_stats(1).is_some(), Duration::from_secs(5));
        assert!(got, "no RTT/offset estimate after probing");
        let (rtt, _offset) = h.clock_stats(1).unwrap();
        if obs_api::ENABLED {
            // A loopback round trip is fast but not instant.
            assert!(rtt > 0 && rtt < 5_000_000_000, "implausible rtt {rtt}");
        }
        assert_eq!(h.all_clock_stats().len(), 1);
        // Dropping the peer clears its estimates.
        h.disconnect(1);
        assert!(h.clock_stats(1).is_none());
    }

    /// The peer-down hook fires once per death, outside the locks.
    #[test]
    fn peer_down_hook_fires_once() {
        let cfg = TcpConfig::fast_fail().with_liveness(Duration::from_millis(300));
        let mut a = TcpEndpoint::bind_with(0, "127.0.0.1:0", cfg).unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let hook_hits = Arc::clone(&hits);
        a.set_peer_down_hook(move |dead| {
            assert_eq!(dead, 1);
            hook_hits.fetch_add(1, Ordering::SeqCst);
        });
        let mut b = TcpEndpoint::bind_with(1, "127.0.0.1:0", TcpConfig::fast_fail()).unwrap();
        a.connect_to(1, b.listen_addr()).unwrap();
        wait_for_neighbors(&b, 1, 2000);
        b.shutdown();
        assert!(wait_until(
            || hits.load(Ordering::SeqCst) >= 1,
            Duration::from_secs(5)
        ));
        // Reader error and liveness prober may race to detect the same
        // death; the report must still be singular.
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(a.take_peer_downs(), vec![1]);
    }
}
