//! # p2p
//!
//! The peer-to-peer substrate of the distributed algorithm (paper §2.2):
//! a structured network of compute nodes bootstrapped by a central
//! **hub** that assigns each joining node its position in a **hypercube
//! topology** and hands out neighbor lists; after bootstrap all traffic
//! flows directly between peers over TCP.
//!
//! The crate provides two interchangeable transports behind one trait:
//!
//! - [`memory::InMemoryNetwork`] — crossbeam channels between threads in
//!   one process. Used by the simulation driver and by deterministic
//!   tests; message *semantics* are identical to TCP.
//! - [`tcp`] — real TCP sockets with length-prefixed frames and a
//!   hand-rolled binary codec ([`codec`]), plus the hub bootstrap
//!   protocol ([`hub`]). This is the deployment path the paper's Java
//!   system used.
//!
//! Topologies beyond the paper's hypercube (ring, complete, star) are in
//! [`topology`] for the ablation experiments.

pub mod codec;
pub mod delay;
pub mod election;
pub mod fault;
pub mod hub;
pub mod memory;
pub mod message;
pub mod tcp;
pub mod telemetry;
pub mod topology;
pub mod transport;
pub mod util;

pub use election::{ElectionState, LogEntry, MembershipLog, Replica};
pub use fault::{FaultConfig, FaultyTransport};
pub use memory::InMemoryNetwork;
pub use message::{broadcast_id, job_id, Message, NodeId};
pub use tcp::TcpConfig;
pub use telemetry::{NodeTelemetry, TelemetryShipper, TelemetryStore};
pub use topology::{Membership, Topology};
pub use transport::Transport;
pub use util::wait_until;

/// Networking error type.
#[derive(Debug)]
pub enum NetError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The peer is unknown or has left the network.
    UnknownPeer(NodeId),
    /// A frame failed to decode (corrupt or truncated).
    Codec(String),
    /// The peer's bounded outbound queue is full (the peer is stalled
    /// or too slow); the message was not enqueued.
    Backpressure(NodeId),
    /// The transport was shut down.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::UnknownPeer(id) => write!(f, "unknown peer {id}"),
            NetError::Codec(msg) => write!(f, "codec error: {msg}"),
            NetError::Backpressure(id) => write!(f, "outbound queue to peer {id} full"),
            NetError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}
