//! In-process transport over crossbeam channels.
//!
//! Semantically identical to the TCP transport (asynchronous,
//! unordered across peers, ordered per peer) but runs the whole
//! network inside one process — the harness the simulation driver and
//! the deterministic tests use. Message counts and byte volumes are
//! tracked so the message-statistics experiment (§4 prelude) works on
//! either backend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::message::{Message, NodeId};
use crate::topology::Topology;
use crate::transport::Transport;
use crate::NetError;

/// Shared counters for network statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Messages sent across the whole network.
    pub messages: AtomicU64,
    /// Total wire bytes (per [`Message::wire_size`]).
    pub bytes: AtomicU64,
    /// Tour broadcasts specifically (the paper reports these).
    pub tour_broadcasts: AtomicU64,
}

impl NetStats {
    fn record(&self, msg: &Message) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(msg.wire_size() as u64, Ordering::Relaxed);
        if matches!(msg, Message::TourFound { .. }) {
            self.tour_broadcasts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot `(messages, bytes, tour_broadcasts)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.tour_broadcasts.load(Ordering::Relaxed),
        )
    }
}

/// One node's endpoint in an in-memory network.
pub struct MemoryEndpoint {
    id: NodeId,
    neighbors: Vec<NodeId>,
    inbox: Receiver<Message>,
    /// Senders to every node (index = node id); `None` once that node
    /// left.
    peers: Arc<RwLock<Vec<Option<Sender<Message>>>>>,
    stats: Arc<NetStats>,
    /// Peers declared dead since the last [`Transport::take_peer_downs`]
    /// call. The churn driver fills this on survivors so the node loop
    /// observes failures the same way it would over TCP liveness probes.
    pending_downs: Vec<NodeId>,
}

impl MemoryEndpoint {
    /// Add `peer` to the neighbor list (topology repair). No-op when
    /// already present.
    pub fn add_neighbor(&mut self, peer: NodeId) {
        if peer != self.id && !self.neighbors.contains(&peer) {
            self.neighbors.push(peer);
            self.neighbors.sort_unstable();
        }
    }

    /// Remove `peer` from the neighbor list.
    pub fn remove_neighbor(&mut self, peer: NodeId) {
        self.neighbors.retain(|&n| n != peer);
    }

    /// Declare `peer` dead: drop the link and queue a peer-down
    /// notification for the next [`Transport::take_peer_downs`]. This is
    /// the in-memory analogue of the TCP liveness timeout firing.
    pub fn note_peer_down(&mut self, peer: NodeId) {
        self.remove_neighbor(peer);
        if !self.pending_downs.contains(&peer) {
            self.pending_downs.push(peer);
        }
    }
}

impl Transport for MemoryEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.neighbors.clone()
    }

    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        let peers = self.peers.read();
        let tx = peers
            .get(to)
            .and_then(|p| p.as_ref())
            .ok_or(NetError::UnknownPeer(to))?;
        self.stats.record(&msg);
        tx.send(msg).map_err(|_| NetError::Closed)
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    fn leave(&mut self) {
        let id = self.node_id();
        self.broadcast(Message::Leave { from: id });
        // Unregister so senders get UnknownPeer instead of piling up
        // messages nobody will read.
        self.peers.write()[id] = None;
    }

    fn take_peer_downs(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.pending_downs)
    }
}

/// Factory and churn controller for a whole in-memory network.
///
/// [`InMemoryNetwork::build`] is the classic stateless entry point;
/// [`InMemoryNetwork::create`] additionally returns the network handle,
/// which can [`kill`](InMemoryNetwork::kill) a node (unregister its
/// sender so peers get [`NetError::UnknownPeer`], like a crashed
/// process) and [`revive`](InMemoryNetwork::revive) it with a fresh
/// inbox — the substrate of the churn experiments.
///
/// ```
/// use p2p::{InMemoryNetwork, Message, Topology, Transport};
///
/// let (mut eps, stats) = InMemoryNetwork::build(8, Topology::Hypercube);
/// let sent = eps[0].broadcast(Message::Leave { from: 0 });
/// assert_eq!(sent, 3); // hypercube degree at n = 8
/// assert_eq!(stats.snapshot().0, 3);
/// ```
pub struct InMemoryNetwork {
    peers: Arc<RwLock<Vec<Option<Sender<Message>>>>>,
    stats: Arc<NetStats>,
}

impl InMemoryNetwork {
    /// Build an `n`-node network with the given topology, returning the
    /// churn-capable network handle plus one endpoint per node.
    pub fn create(n: usize, topology: Topology) -> (Self, Vec<MemoryEndpoint>) {
        let stats = Arc::new(NetStats::default());
        let mut senders: Vec<Option<Sender<Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(rx);
        }
        let peers = Arc::new(RwLock::new(senders));
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(id, inbox)| MemoryEndpoint {
                id,
                neighbors: topology.neighbors(id, n),
                inbox,
                peers: Arc::clone(&peers),
                stats: Arc::clone(&stats),
                pending_downs: Vec::new(),
            })
            .collect();
        (InMemoryNetwork { peers, stats }, endpoints)
    }

    /// Build an `n`-node network with the given topology, returning one
    /// endpoint per node (move each onto its own thread).
    pub fn build(n: usize, topology: Topology) -> (Vec<MemoryEndpoint>, Arc<NetStats>) {
        let (net, endpoints) = Self::create(n, topology);
        (endpoints, net.stats)
    }

    /// The shared message counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Crash node `id`: unregister its sender so every subsequent send
    /// to it fails with [`NetError::UnknownPeer`]. Unlike
    /// [`Transport::leave`] no notice is sent — peers only learn of the
    /// death through failure detection (crash semantics).
    pub fn kill(&self, id: NodeId) {
        self.peers.write()[id] = None;
    }

    /// Bring node `id` back with a fresh (empty) inbox and the given
    /// neighbor list; peers can send to it again immediately. The
    /// returned endpoint replaces the one the killed node held.
    pub fn revive(&self, id: NodeId, neighbors: Vec<NodeId>) -> MemoryEndpoint {
        let (tx, rx) = unbounded();
        self.peers.write()[id] = Some(tx);
        MemoryEndpoint {
            id,
            neighbors,
            inbox: rx,
            peers: Arc::clone(&self.peers),
            stats: Arc::clone(&self.stats),
            pending_downs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_between_neighbors() {
        let (mut eps, stats) = InMemoryNetwork::build(8, Topology::Hypercube);
        let msg = Message::TourFound {
            from: 0,
            id: 1,
            length: 42,
            order: vec![0, 1, 2],
        };
        let sent = eps[0].broadcast(msg.clone());
        assert_eq!(sent, 3); // hypercube degree at n=8
        // Node 1 is a neighbor of 0.
        let got = eps[1].try_recv().unwrap();
        assert_eq!(got, msg);
        // Node 7 (111) is not adjacent to 0 (000).
        assert!(eps[7].try_recv().is_none());
        let (m, b, t) = stats.snapshot();
        assert_eq!(m, 3);
        assert_eq!(t, 3);
        assert!(b > 0);
    }

    #[test]
    fn drain_collects_everything() {
        let (mut eps, _) = InMemoryNetwork::build(4, Topology::Complete);
        for ep in eps.iter_mut().skip(1) {
            let m = Message::OptimumFound {
                from: ep.node_id(),
                length: 7,
            };
            // Send directly to node 0.
            ep.send(0, m).unwrap();
        }
        let got = eps[0].drain();
        assert_eq!(got.len(), 3);
        assert!(eps[0].drain().is_empty());
    }

    #[test]
    fn leave_unregisters_node() {
        let (mut eps, _) = InMemoryNetwork::build(4, Topology::Ring);
        let mut e1 = eps.remove(1);
        e1.leave();
        // Neighbors received the leave notice.
        let notices = eps[0].drain(); // old index 0
        assert!(notices.iter().any(|m| matches!(m, Message::Leave { from: 1 })));
        // Sending to the departed node now fails.
        let err = eps[0].send(1, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(1)));
    }

    #[test]
    fn per_peer_ordering_preserved() {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        for i in 0..10i64 {
            eps[0]
                .send(1, Message::OptimumFound { from: 0, length: i })
                .unwrap();
        }
        let got = eps[1].drain();
        let lens: Vec<i64> = got
            .iter()
            .map(|m| match m {
                Message::OptimumFound { length, .. } => *length,
                _ => panic!(),
            })
            .collect();
        assert_eq!(lens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn endpoints_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MemoryEndpoint>();
    }

    #[test]
    fn kill_fails_sends_without_notice() {
        let (net, mut eps) = InMemoryNetwork::create(4, Topology::Ring);
        net.kill(1);
        let err = eps[0].send(1, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(1)));
        // Crash semantics: no Leave or any other notice was delivered.
        assert!(eps[0].drain().is_empty());
        assert!(eps[2].drain().is_empty());
    }

    #[test]
    fn revive_restores_delivery_with_fresh_inbox() {
        let (net, mut eps) = InMemoryNetwork::create(4, Topology::Ring);
        eps[0]
            .send(1, Message::OptimumFound { from: 0, length: 1 })
            .unwrap();
        net.kill(1);
        let mut revived = net.revive(1, vec![0, 2]);
        // The pre-death message died with the old inbox.
        assert!(revived.try_recv().is_none());
        assert_eq!(revived.neighbors(), vec![0, 2]);
        eps[0]
            .send(1, Message::OptimumFound { from: 0, length: 2 })
            .unwrap();
        assert_eq!(
            revived.try_recv(),
            Some(Message::OptimumFound { from: 0, length: 2 })
        );
    }

    #[test]
    fn note_peer_down_rewires_and_reports_once() {
        let (_net, mut eps) = InMemoryNetwork::create(4, Topology::Ring);
        let mut e0 = eps.remove(0);
        assert_eq!(e0.neighbors(), vec![3, 1]);
        e0.note_peer_down(1);
        e0.note_peer_down(1); // duplicate reports collapse
        assert_eq!(e0.neighbors(), vec![3]);
        assert_eq!(e0.take_peer_downs(), vec![1]);
        assert!(e0.take_peer_downs().is_empty());
        e0.add_neighbor(2);
        e0.add_neighbor(2); // idempotent
        assert_eq!(e0.neighbors(), vec![2, 3]);
    }
}
