//! In-process transport over crossbeam channels.
//!
//! Semantically identical to the TCP transport (asynchronous,
//! unordered across peers, ordered per peer) but runs the whole
//! network inside one process — the harness the simulation driver and
//! the deterministic tests use. Message counts and byte volumes are
//! tracked so the message-statistics experiment (§4 prelude) works on
//! either backend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::message::{Message, NodeId};
use crate::topology::Topology;
use crate::transport::Transport;
use crate::NetError;

/// Shared counters for network statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Messages sent across the whole network.
    pub messages: AtomicU64,
    /// Total wire bytes (per [`Message::wire_size`]).
    pub bytes: AtomicU64,
    /// Tour broadcasts specifically (the paper reports these).
    pub tour_broadcasts: AtomicU64,
}

impl NetStats {
    fn record(&self, msg: &Message) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(msg.wire_size() as u64, Ordering::Relaxed);
        if matches!(msg, Message::TourFound { .. }) {
            self.tour_broadcasts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot `(messages, bytes, tour_broadcasts)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.tour_broadcasts.load(Ordering::Relaxed),
        )
    }
}

/// One node's endpoint in an in-memory network.
pub struct MemoryEndpoint {
    id: NodeId,
    neighbors: Vec<NodeId>,
    inbox: Receiver<Message>,
    /// Senders to every node (index = node id); `None` once that node
    /// left.
    peers: Arc<RwLock<Vec<Option<Sender<Message>>>>>,
    stats: Arc<NetStats>,
}

impl Transport for MemoryEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.neighbors.clone()
    }

    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError> {
        let peers = self.peers.read();
        let tx = peers
            .get(to)
            .and_then(|p| p.as_ref())
            .ok_or(NetError::UnknownPeer(to))?;
        self.stats.record(&msg);
        tx.send(msg).map_err(|_| NetError::Closed)
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    fn leave(&mut self) {
        let id = self.node_id();
        self.broadcast(Message::Leave { from: id });
        // Unregister so senders get UnknownPeer instead of piling up
        // messages nobody will read.
        self.peers.write()[id] = None;
    }
}

/// Factory for a whole in-memory network.
///
/// ```
/// use p2p::{InMemoryNetwork, Message, Topology, Transport};
///
/// let (mut eps, stats) = InMemoryNetwork::build(8, Topology::Hypercube);
/// let sent = eps[0].broadcast(Message::Leave { from: 0 });
/// assert_eq!(sent, 3); // hypercube degree at n = 8
/// assert_eq!(stats.snapshot().0, 3);
/// ```
pub struct InMemoryNetwork;

impl InMemoryNetwork {
    /// Build an `n`-node network with the given topology, returning one
    /// endpoint per node (move each onto its own thread).
    pub fn build(n: usize, topology: Topology) -> (Vec<MemoryEndpoint>, Arc<NetStats>) {
        let stats = Arc::new(NetStats::default());
        let mut senders: Vec<Option<Sender<Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(rx);
        }
        let peers = Arc::new(RwLock::new(senders));
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(id, inbox)| MemoryEndpoint {
                id,
                neighbors: topology.neighbors(id, n),
                inbox,
                peers: Arc::clone(&peers),
                stats: Arc::clone(&stats),
            })
            .collect();
        (endpoints, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_between_neighbors() {
        let (mut eps, stats) = InMemoryNetwork::build(8, Topology::Hypercube);
        let msg = Message::TourFound {
            from: 0,
            id: 1,
            length: 42,
            order: vec![0, 1, 2],
        };
        let sent = eps[0].broadcast(msg.clone());
        assert_eq!(sent, 3); // hypercube degree at n=8
        // Node 1 is a neighbor of 0.
        let got = eps[1].try_recv().unwrap();
        assert_eq!(got, msg);
        // Node 7 (111) is not adjacent to 0 (000).
        assert!(eps[7].try_recv().is_none());
        let (m, b, t) = stats.snapshot();
        assert_eq!(m, 3);
        assert_eq!(t, 3);
        assert!(b > 0);
    }

    #[test]
    fn drain_collects_everything() {
        let (mut eps, _) = InMemoryNetwork::build(4, Topology::Complete);
        for ep in eps.iter_mut().skip(1) {
            let m = Message::OptimumFound {
                from: ep.node_id(),
                length: 7,
            };
            // Send directly to node 0.
            ep.send(0, m).unwrap();
        }
        let got = eps[0].drain();
        assert_eq!(got.len(), 3);
        assert!(eps[0].drain().is_empty());
    }

    #[test]
    fn leave_unregisters_node() {
        let (mut eps, _) = InMemoryNetwork::build(4, Topology::Ring);
        let mut e1 = eps.remove(1);
        e1.leave();
        // Neighbors received the leave notice.
        let notices = eps[0].drain(); // old index 0
        assert!(notices.iter().any(|m| matches!(m, Message::Leave { from: 1 })));
        // Sending to the departed node now fails.
        let err = eps[0].send(1, Message::Leave { from: 0 }).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer(1)));
    }

    #[test]
    fn per_peer_ordering_preserved() {
        let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
        for i in 0..10i64 {
            eps[0]
                .send(1, Message::OptimumFound { from: 0, length: i })
                .unwrap();
        }
        let got = eps[1].drain();
        let lens: Vec<i64> = got
            .iter()
            .map(|m| match m {
                Message::OptimumFound { length, .. } => *length,
                _ => panic!(),
            })
            .collect();
        assert_eq!(lens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn endpoints_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MemoryEndpoint>();
    }
}
