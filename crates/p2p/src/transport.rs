//! The transport abstraction both backends implement.

use crate::message::{Message, NodeId};
use crate::NetError;

/// A node's handle onto the network: knows its id and neighbors, can
/// send to any neighbor and drain its inbox. Implementations must be
/// `Send` so each node can live on its own thread.
pub trait Transport: Send {
    /// This node's identifier (its hypercube position).
    fn node_id(&self) -> NodeId;

    /// The node's current neighbor list.
    fn neighbors(&self) -> Vec<NodeId>;

    /// Send a message to one peer.
    fn send(&mut self, to: NodeId, msg: Message) -> Result<(), NetError>;

    /// Non-blocking receive of one pending message.
    fn try_recv(&mut self) -> Option<Message>;

    /// Broadcast to all neighbors. Peers that already left are skipped
    /// silently (the paper's topology "degenerates" near the end of a
    /// run as nodes finish; survivors keep working, §2.3).
    fn broadcast(&mut self, msg: Message) -> usize {
        let mut sent = 0;
        for n in self.neighbors() {
            if self.send(n, msg.clone()).is_ok() {
                sent += 1;
            }
        }
        sent
    }

    /// Drain every pending message.
    fn drain(&mut self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Announce departure to all neighbors and stop receiving.
    fn leave(&mut self) {
        let id = self.node_id();
        self.broadcast(Message::Leave { from: id });
    }

    /// Drain peers this transport has declared dead since the last
    /// call (liveness timeout, connection loss, or an explicit kill).
    /// The default — for transports without failure detection — is
    /// "nobody died".
    fn take_peer_downs(&mut self) -> Vec<NodeId> {
        Vec::new()
    }
}
