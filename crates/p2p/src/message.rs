//! Messages exchanged between nodes.
//!
//! The paper's protocol is deliberately small: nodes broadcast improved
//! tours to their neighbors, announce when the known optimum was found
//! (a termination criterion), and leave the network when their budget
//! runs out (the topology "degenerates" near the end of a run, §2.3).

/// Dense node identifier assigned by the hub (the node's position in
/// the hypercube).
pub type NodeId = usize;

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// An improved tour, broadcast to the sender's neighbors
    /// (paper Fig. 1: `BROADCASTTONEIGHBORS(s_best)`).
    TourFound {
        /// Originating node.
        from: NodeId,
        /// Broadcast id, unique per originating broadcast
        /// (`origin << 32 | seq`). Preserved verbatim on epidemic
        /// forwarding so a tour's migration can be traced hub-to-leaf
        /// in the event logs.
        id: u64,
        /// Tour length (precomputed by the sender so receivers can
        /// filter without touching the instance).
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// The sender's local CLK discovered a tour matching the known
    /// optimum — every node may terminate (§2.3 criterion 2).
    OptimumFound {
        /// Originating node.
        from: NodeId,
        /// The optimal length found.
        length: i64,
    },
    /// The sender is leaving the network (budget exhausted).
    Leave {
        /// Departing node.
        from: NodeId,
    },
    /// Liveness probe: "are you still there?". The TCP transport
    /// answers these itself (with [`Message::Pong`]) and never
    /// surfaces them to the node loop; over in-memory transports the
    /// node driver answers.
    Ping {
        /// Probing node.
        from: NodeId,
    },
    /// Liveness probe answer. Its only effect is refreshing the
    /// sender's last-seen clock on the receiving endpoint.
    Pong {
        /// Answering node.
        from: NodeId,
    },
    /// A rejoining node asking its neighborhood for the current best
    /// tour, so it can resume from population state instead of a cold
    /// construction (state resync; see DESIGN.md "Failure model").
    BestRequest {
        /// Rejoining node.
        from: NodeId,
    },
    /// Answer to [`Message::BestRequest`]: the responder's current
    /// best tour. Validated by the receiver exactly like
    /// [`Message::TourFound`] (city count, permutation, recomputed
    /// length) before adoption.
    BestReply {
        /// Responding node.
        from: NodeId,
        /// Broadcast id of the carried tour (same scheme as
        /// `TourFound`, so resyncs are traceable in the event logs).
        id: u64,
        /// Tour length as recomputed by the responder.
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// `HUB_CLAIM(epoch)`: node `from` claims (or is relayed to have
    /// claimed) the lifecycle-hub role at `epoch`. Receivers accept
    /// iff the epoch is newer — or equally new with a lower claimer
    /// id — and forward accepted claims; stale hubs step down (see
    /// [`crate::election`]).
    HubClaim {
        /// Claiming node (not necessarily the transport-level sender:
        /// claims are relayable facts).
        from: NodeId,
        /// Fencing epoch of the claim.
        epoch: u64,
    },
    /// A batch of replicated membership-log entries: either a gossip
    /// delta (the entries that just changed a replica's state) or a
    /// full log snapshot for a rejoiner rebuilding its replica.
    LogSnapshot {
        /// Sending node.
        from: NodeId,
        /// Log entries, oldest first.
        entries: Vec<crate::election::LogEntry>,
    },
}

/// Compose a per-broadcast tour id from the originating node and its
/// local broadcast sequence number. The high half carries the origin,
/// so `id >> 32` recovers where a tour was first found even after it
/// has been forwarded across the hypercube.
pub fn broadcast_id(origin: NodeId, seq: u32) -> u64 {
    ((origin as u64) << 32) | seq as u64
}

impl Message {
    /// The sender of the message.
    pub fn from(&self) -> NodeId {
        match *self {
            Message::TourFound { from, .. }
            | Message::OptimumFound { from, .. }
            | Message::Leave { from }
            | Message::Ping { from }
            | Message::Pong { from }
            | Message::BestRequest { from }
            | Message::BestReply { from, .. }
            | Message::HubClaim { from, .. }
            | Message::LogSnapshot { from, .. } => from,
        }
    }

    /// Wire-size estimate in bytes (used by the message-statistics
    /// experiment to report communication volume).
    pub fn wire_size(&self) -> usize {
        match self {
            Message::TourFound { order, .. } | Message::BestReply { order, .. } => {
                1 + 8 + 8 + 8 + 4 + 4 * order.len()
            }
            Message::OptimumFound { .. } => 1 + 8 + 8,
            Message::Leave { .. } | Message::Ping { .. } | Message::Pong { .. } => 1 + 8,
            Message::BestRequest { .. } => 1 + 8,
            Message::HubClaim { .. } => 1 + 8 + 8,
            Message::LogSnapshot { entries, .. } => 1 + 8 + 4 + 17 * entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_extracts_sender() {
        assert_eq!(Message::Leave { from: 3 }.from(), 3);
        assert_eq!(
            Message::OptimumFound { from: 7, length: 1 }.from(),
            7
        );
        assert_eq!(
            Message::TourFound {
                from: 2,
                id: broadcast_id(2, 0),
                length: 10,
                order: vec![0, 1, 2]
            }
            .from(),
            2
        );
    }

    #[test]
    fn from_extracts_sender_liveness_and_resync() {
        assert_eq!(Message::Ping { from: 4 }.from(), 4);
        assert_eq!(Message::Pong { from: 5 }.from(), 5);
        assert_eq!(Message::BestRequest { from: 6 }.from(), 6);
        assert_eq!(
            Message::BestReply {
                from: 1,
                id: broadcast_id(1, 9),
                length: 77,
                order: vec![0, 1, 2]
            }
            .from(),
            1
        );
    }

    #[test]
    fn best_reply_wire_size_matches_tour_found() {
        let order: Vec<u32> = (0..55).collect();
        let a = Message::TourFound {
            from: 0,
            id: 0,
            length: 1,
            order: order.clone(),
        };
        let b = Message::BestReply {
            from: 0,
            id: 0,
            length: 1,
            order,
        };
        assert_eq!(a.wire_size(), b.wire_size());
        assert_eq!(Message::Ping { from: 0 }.wire_size(), 9);
    }

    #[test]
    fn from_extracts_sender_election_messages() {
        use crate::election::LogEntry;
        assert_eq!(Message::HubClaim { from: 3, epoch: 2 }.from(), 3);
        assert_eq!(
            Message::LogSnapshot {
                from: 4,
                entries: vec![LogEntry::Down { node: 1, inc: 0 }]
            }
            .from(),
            4
        );
    }

    #[test]
    fn election_wire_sizes() {
        use crate::election::LogEntry;
        assert_eq!(Message::HubClaim { from: 0, epoch: 0 }.wire_size(), 17);
        let empty = Message::LogSnapshot {
            from: 0,
            entries: vec![],
        };
        let two = Message::LogSnapshot {
            from: 0,
            entries: vec![
                LogEntry::Join { node: 0, epoch: 0 },
                LogEntry::Repair { a: 1, b: 2 },
            ],
        };
        assert_eq!(empty.wire_size(), 13);
        assert_eq!(two.wire_size() - empty.wire_size(), 2 * 17);
    }

    #[test]
    fn broadcast_id_recovers_origin() {
        let id = broadcast_id(5, 17);
        assert_eq!(id >> 32, 5);
        assert_eq!(id & 0xffff_ffff, 17);
        assert_ne!(broadcast_id(5, 17), broadcast_id(17, 5));
    }

    #[test]
    fn wire_size_scales_with_tour() {
        let small = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 10],
        };
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), 4 * 990);
    }
}
