//! Messages exchanged between nodes.
//!
//! The paper's protocol is deliberately small: nodes broadcast improved
//! tours to their neighbors, announce when the known optimum was found
//! (a termination criterion), and leave the network when their budget
//! runs out (the topology "degenerates" near the end of a run, §2.3).

/// Dense node identifier assigned by the hub (the node's position in
/// the hypercube).
pub type NodeId = usize;

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// An improved tour, broadcast to the sender's neighbors
    /// (paper Fig. 1: `BROADCASTTONEIGHBORS(s_best)`).
    TourFound {
        /// Originating node.
        from: NodeId,
        /// Broadcast id, unique per originating broadcast
        /// (`origin << 32 | seq`). Preserved verbatim on epidemic
        /// forwarding so a tour's migration can be traced hub-to-leaf
        /// in the event logs.
        id: u64,
        /// Tour length (precomputed by the sender so receivers can
        /// filter without touching the instance).
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// The sender's local CLK discovered a tour matching the known
    /// optimum — every node may terminate (§2.3 criterion 2).
    OptimumFound {
        /// Originating node.
        from: NodeId,
        /// The optimal length found.
        length: i64,
    },
    /// The sender is leaving the network (budget exhausted).
    Leave {
        /// Departing node.
        from: NodeId,
    },
}

/// Compose a per-broadcast tour id from the originating node and its
/// local broadcast sequence number. The high half carries the origin,
/// so `id >> 32` recovers where a tour was first found even after it
/// has been forwarded across the hypercube.
pub fn broadcast_id(origin: NodeId, seq: u32) -> u64 {
    ((origin as u64) << 32) | seq as u64
}

impl Message {
    /// The sender of the message.
    pub fn from(&self) -> NodeId {
        match *self {
            Message::TourFound { from, .. }
            | Message::OptimumFound { from, .. }
            | Message::Leave { from } => from,
        }
    }

    /// Wire-size estimate in bytes (used by the message-statistics
    /// experiment to report communication volume).
    pub fn wire_size(&self) -> usize {
        match self {
            Message::TourFound { order, .. } => 1 + 8 + 8 + 8 + 4 + 4 * order.len(),
            Message::OptimumFound { .. } => 1 + 8 + 8,
            Message::Leave { .. } => 1 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_extracts_sender() {
        assert_eq!(Message::Leave { from: 3 }.from(), 3);
        assert_eq!(
            Message::OptimumFound { from: 7, length: 1 }.from(),
            7
        );
        assert_eq!(
            Message::TourFound {
                from: 2,
                id: broadcast_id(2, 0),
                length: 10,
                order: vec![0, 1, 2]
            }
            .from(),
            2
        );
    }

    #[test]
    fn broadcast_id_recovers_origin() {
        let id = broadcast_id(5, 17);
        assert_eq!(id >> 32, 5);
        assert_eq!(id & 0xffff_ffff, 17);
        assert_ne!(broadcast_id(5, 17), broadcast_id(17, 5));
    }

    #[test]
    fn wire_size_scales_with_tour() {
        let small = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 10],
        };
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), 4 * 990);
    }
}
