//! Messages exchanged between nodes.
//!
//! The paper's protocol is deliberately small: nodes broadcast improved
//! tours to their neighbors, announce when the known optimum was found
//! (a termination criterion), and leave the network when their budget
//! runs out (the topology "degenerates" near the end of a run, §2.3).

/// Dense node identifier assigned by the hub (the node's position in
/// the hypercube).
pub type NodeId = usize;

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// An improved tour, broadcast to the sender's neighbors
    /// (paper Fig. 1: `BROADCASTTONEIGHBORS(s_best)`).
    TourFound {
        /// Originating node.
        from: NodeId,
        /// Broadcast id, unique per originating broadcast
        /// (`origin << 32 | seq`). Preserved verbatim on epidemic
        /// forwarding so a tour's migration can be traced hub-to-leaf
        /// in the event logs.
        id: u64,
        /// Tour length (precomputed by the sender so receivers can
        /// filter without touching the instance).
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// The sender's local CLK discovered a tour matching the known
    /// optimum — every node may terminate (§2.3 criterion 2).
    OptimumFound {
        /// Originating node.
        from: NodeId,
        /// The optimal length found.
        length: i64,
    },
    /// The sender is leaving the network (budget exhausted).
    Leave {
        /// Departing node.
        from: NodeId,
    },
    /// Liveness probe: "are you still there?". The TCP transport
    /// answers these itself (with [`Message::Pong`]) and never
    /// surfaces them to the node loop; over in-memory transports the
    /// node driver answers.
    Ping {
        /// Probing node.
        from: NodeId,
    },
    /// Liveness probe answer. Refreshes the sender's last-seen clock
    /// on the receiving endpoint; the carried timestamp additionally
    /// lets the prober estimate the responder's clock offset
    /// (`t_remote - (t_send + rtt/2)`) for cross-node timeline
    /// alignment.
    Pong {
        /// Answering node.
        from: NodeId,
        /// The responder's local monotonic clock, in nanoseconds since
        /// its observability epoch (0 when observability is off).
        t_ns: u64,
    },
    /// A rejoining node asking its neighborhood for the current best
    /// tour, so it can resume from population state instead of a cold
    /// construction (state resync; see DESIGN.md "Failure model").
    BestRequest {
        /// Rejoining node.
        from: NodeId,
    },
    /// Answer to [`Message::BestRequest`]: the responder's current
    /// best tour. Validated by the receiver exactly like
    /// [`Message::TourFound`] (city count, permutation, recomputed
    /// length) before adoption.
    BestReply {
        /// Responding node.
        from: NodeId,
        /// Broadcast id of the carried tour (same scheme as
        /// `TourFound`, so resyncs are traceable in the event logs).
        id: u64,
        /// Tour length as recomputed by the responder.
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// `HUB_CLAIM(epoch)`: node `from` claims (or is relayed to have
    /// claimed) the lifecycle-hub role at `epoch`. Receivers accept
    /// iff the epoch is newer — or equally new with a lower claimer
    /// id — and forward accepted claims; stale hubs step down (see
    /// [`crate::election`]).
    HubClaim {
        /// Claiming node (not necessarily the transport-level sender:
        /// claims are relayable facts).
        from: NodeId,
        /// Fencing epoch of the claim.
        epoch: u64,
    },
    /// A batch of replicated membership-log entries: either a gossip
    /// delta (the entries that just changed a replica's state) or a
    /// full log snapshot for a rejoiner rebuilding its replica.
    LogSnapshot {
        /// Sending node.
        from: NodeId,
        /// Log entries, oldest first.
        entries: Vec<crate::election::LogEntry>,
    },
    /// Periodic live-telemetry shipment from a node to the current
    /// hub: metric deltas, recent events, and anytime convergence
    /// state. The hub folds these into its cluster-merged live
    /// registry (`METRICS`/`STATUS` scrapes) and estimates the
    /// sender's clock offset from `t_ns` + the measured RTT.
    Telemetry {
        /// Reporting node.
        from: NodeId,
        /// Sender's local monotonic clock (ns since its observability
        /// epoch) at send time.
        t_ns: u64,
        /// Round-trip time to the hub as last measured by the sender
        /// (previous shipment ack, or the transport's Ping/Pong
        /// probe); 0 when unknown.
        rtt_ns: u64,
        /// Anytime best tour length on this node.
        best_len: i64,
        /// CLK calls performed so far (the hub derives the iteration
        /// rate from successive shipments).
        clk_calls: u64,
        /// Whether the stall detector is currently tripped (no
        /// improvement for the configured window).
        stalled: bool,
        /// Counter increments since the previous shipment, by name.
        counters: Vec<(String, u64)>,
        /// Gauge readings (absolute, point-in-time), by name.
        gauges: Vec<(String, i64)>,
        /// Recent events serialized as JSONL (node-local timestamps;
        /// the hub re-stamps them onto its own timeline).
        events_jsonl: Vec<u8>,
    },
    /// A solved subregion of a sharded (divide-and-optimize) run: the
    /// sub-tour of one spatial shard, sent by the worker that solved it
    /// to the collector node. Carried in *global* city ids; the
    /// collector validates membership against its own deterministic
    /// partition and recomputes the length before accepting, and
    /// winner-merges duplicates by `(length, shard id, sender)`.
    ShardResult {
        /// Worker that solved the shard.
        from: NodeId,
        /// Shard index in the deterministic partition.
        shard: u32,
        /// Sub-tour length as computed by the worker.
        length: i64,
        /// Sub-tour visiting order in global city ids.
        order: Vec<u32>,
    },
    /// A solve job entering the service layer: carried from a client
    /// to the scheduling hub, and from the hub to the worker node the
    /// job is assigned to. On *re*assignment after a worker death the
    /// same frame travels again with `checkpoint` holding the last
    /// streamed best tour (a [`crate::codec`]-encoded `TourFound`, the
    /// node checkpoint format), so an in-flight job survives churn.
    JobSubmit {
        /// Submitting node (the hub when forwarding to a worker).
        from: NodeId,
        /// Job id, `client << 32 | seq` — the same composition as
        /// [`broadcast_id`], so `job >> 32` recovers the owning client
        /// anywhere in the pipeline. `0` until the hub assigns one.
        job: u64,
        /// Client (tenant) the job belongs to; the fairness ledger is
        /// keyed by this.
        client: u64,
        /// RNG seed of the job's engine (per-job determinism).
        seed: u64,
        /// Kick budget per engine; `0` = unbounded (deadline-only).
        kicks: u64,
        /// Wall-clock deadline in milliseconds from acceptance;
        /// `0` = none.
        deadline_ms: u64,
        /// Target length (quality budget): the job stops as soon as a
        /// tour of this length or shorter is found. `i64::MIN` = none.
        target: i64,
        /// Payload format: 1 = TSPLIB text, 2 = JSON point list.
        payload_kind: u8,
        /// The instance payload bytes.
        payload: Vec<u8>,
        /// Resume state for reassignment (empty on fresh submission).
        checkpoint: Vec<u8>,
    },
    /// A worker accepted a job and is solving it.
    JobAccept {
        /// Accepting worker.
        from: NodeId,
        /// Job id.
        job: u64,
        /// Worker id echoed as a field so the frame can be relayed to
        /// the client without rewriting `from`.
        worker: u64,
    },
    /// Anytime stream: the job's engine improved its best tour. Sent
    /// worker → hub → client for every strict improvement.
    JobImproved {
        /// Reporting worker.
        from: NodeId,
        /// Job id.
        job: u64,
        /// Improved tour length.
        length: i64,
        /// Visiting order.
        order: Vec<u32>,
    },
    /// Terminal frame of a job stream: budget exhausted, target
    /// reached, deadline expired, or cancelled — with the final best
    /// tour either way (anytime semantics).
    JobDone {
        /// Reporting worker.
        from: NodeId,
        /// Job id.
        job: u64,
        /// Why the job ended: 0 = budget exhausted, 1 = target
        /// reached, 2 = deadline expired, 3 = cancelled.
        reason: u8,
        /// Final best length.
        length: i64,
        /// Final best visiting order.
        order: Vec<u32>,
    },
    /// Cancel an in-flight job (client request, or the hub enforcing a
    /// deadline on a wedged worker). The worker answers with a
    /// [`Message::JobDone`] carrying its best-so-far.
    JobCancel {
        /// Requesting node.
        from: NodeId,
        /// Job id.
        job: u64,
        /// Reason code, same scale as [`Message::JobDone::reason`]
        /// (2 = deadline enforcement, 3 = client cancel).
        reason: u8,
    },
}

/// Compose a per-broadcast tour id from the originating node and its
/// local broadcast sequence number. The high half carries the origin,
/// so `id >> 32` recovers where a tour was first found even after it
/// has been forwarded across the hypercube.
pub fn broadcast_id(origin: NodeId, seq: u32) -> u64 {
    ((origin as u64) << 32) | seq as u64
}

/// Compose a job id from the owning client and the hub's per-client
/// submission sequence number — the [`broadcast_id`] composition
/// applied to the job layer, so `job >> 32` recovers the tenant
/// anywhere a job frame is observed.
pub fn job_id(client: u64, seq: u32) -> u64 {
    (client << 32) | seq as u64
}

impl Message {
    /// The sender of the message.
    pub fn from(&self) -> NodeId {
        match *self {
            Message::TourFound { from, .. }
            | Message::OptimumFound { from, .. }
            | Message::Leave { from }
            | Message::Ping { from }
            | Message::Pong { from, .. }
            | Message::BestRequest { from }
            | Message::BestReply { from, .. }
            | Message::HubClaim { from, .. }
            | Message::LogSnapshot { from, .. }
            | Message::Telemetry { from, .. }
            | Message::ShardResult { from, .. }
            | Message::JobSubmit { from, .. }
            | Message::JobAccept { from, .. }
            | Message::JobImproved { from, .. }
            | Message::JobDone { from, .. }
            | Message::JobCancel { from, .. } => from,
        }
    }

    /// Wire-size estimate in bytes (used by the message-statistics
    /// experiment to report communication volume).
    pub fn wire_size(&self) -> usize {
        match self {
            Message::TourFound { order, .. } | Message::BestReply { order, .. } => {
                1 + 8 + 8 + 8 + 4 + 4 * order.len()
            }
            // tag + from + shard + length + count + cities.
            Message::ShardResult { order, .. } => 1 + 8 + 4 + 8 + 4 + 4 * order.len(),
            Message::JobSubmit {
                payload,
                checkpoint,
                ..
            } => {
                // tag + from + job + client + seed + kicks + deadline
                // + target + kind + two length-prefixed byte sections.
                1 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 4 + payload.len() + 4 + checkpoint.len()
            }
            Message::JobAccept { .. } => 1 + 8 + 8 + 8,
            // tag + from + job + length + count + cities.
            Message::JobImproved { order, .. } => 1 + 8 + 8 + 8 + 4 + 4 * order.len(),
            // tag + from + job + reason + length + count + cities.
            Message::JobDone { order, .. } => 1 + 8 + 8 + 1 + 8 + 4 + 4 * order.len(),
            Message::JobCancel { .. } => 1 + 8 + 8 + 1,
            Message::OptimumFound { .. } => 1 + 8 + 8,
            Message::Leave { .. } | Message::Ping { .. } => 1 + 8,
            Message::Pong { .. } => 1 + 8 + 8,
            Message::BestRequest { .. } => 1 + 8,
            Message::HubClaim { .. } => 1 + 8 + 8,
            Message::LogSnapshot { entries, .. } => 1 + 8 + 4 + 17 * entries.len(),
            Message::Telemetry {
                counters,
                gauges,
                events_jsonl,
                ..
            } => {
                // tag + from + t_ns + rtt_ns + best_len + clk_calls
                // + stalled + three length-prefixed sections.
                1 + 8 + 8 + 8 + 8 + 8 + 1
                    + 4
                    + counters.iter().map(|(n, _)| 2 + n.len() + 8).sum::<usize>()
                    + 4
                    + gauges.iter().map(|(n, _)| 2 + n.len() + 8).sum::<usize>()
                    + 4
                    + events_jsonl.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_extracts_sender() {
        assert_eq!(Message::Leave { from: 3 }.from(), 3);
        assert_eq!(
            Message::OptimumFound { from: 7, length: 1 }.from(),
            7
        );
        assert_eq!(
            Message::TourFound {
                from: 2,
                id: broadcast_id(2, 0),
                length: 10,
                order: vec![0, 1, 2]
            }
            .from(),
            2
        );
    }

    #[test]
    fn from_extracts_sender_liveness_and_resync() {
        assert_eq!(Message::Ping { from: 4 }.from(), 4);
        assert_eq!(Message::Pong { from: 5, t_ns: 123 }.from(), 5);
        assert_eq!(Message::BestRequest { from: 6 }.from(), 6);
        assert_eq!(
            Message::BestReply {
                from: 1,
                id: broadcast_id(1, 9),
                length: 77,
                order: vec![0, 1, 2]
            }
            .from(),
            1
        );
    }

    #[test]
    fn best_reply_wire_size_matches_tour_found() {
        let order: Vec<u32> = (0..55).collect();
        let a = Message::TourFound {
            from: 0,
            id: 0,
            length: 1,
            order: order.clone(),
        };
        let b = Message::BestReply {
            from: 0,
            id: 0,
            length: 1,
            order,
        };
        assert_eq!(a.wire_size(), b.wire_size());
        assert_eq!(Message::Ping { from: 0 }.wire_size(), 9);
        // Pong additionally carries the responder's clock.
        assert_eq!(Message::Pong { from: 0, t_ns: 0 }.wire_size(), 17);
    }

    #[test]
    fn telemetry_wire_size_counts_sections() {
        let empty = Message::Telemetry {
            from: 0,
            t_ns: 0,
            rtt_ns: 0,
            best_len: 0,
            clk_calls: 0,
            stalled: false,
            counters: vec![],
            gauges: vec![],
            events_jsonl: vec![],
        };
        // tag + 5×u64/i64 + bool + three u32 section lengths.
        assert_eq!(empty.wire_size(), 1 + 5 * 8 + 1 + 3 * 4);
        let loaded = Message::Telemetry {
            from: 0,
            t_ns: 0,
            rtt_ns: 0,
            best_len: 0,
            clk_calls: 0,
            stalled: true,
            counters: vec![("ab".into(), 1)],
            gauges: vec![("xyz".into(), -2)],
            events_jsonl: b"{}\n".to_vec(),
        };
        assert_eq!(
            loaded.wire_size() - empty.wire_size(),
            (2 + 2 + 8) + (2 + 3 + 8) + 3
        );
    }

    #[test]
    fn from_extracts_sender_election_messages() {
        use crate::election::LogEntry;
        assert_eq!(Message::HubClaim { from: 3, epoch: 2 }.from(), 3);
        assert_eq!(
            Message::LogSnapshot {
                from: 4,
                entries: vec![LogEntry::Down { node: 1, inc: 0 }]
            }
            .from(),
            4
        );
    }

    #[test]
    fn election_wire_sizes() {
        use crate::election::LogEntry;
        assert_eq!(Message::HubClaim { from: 0, epoch: 0 }.wire_size(), 17);
        let empty = Message::LogSnapshot {
            from: 0,
            entries: vec![],
        };
        let two = Message::LogSnapshot {
            from: 0,
            entries: vec![
                LogEntry::Join { node: 0, epoch: 0 },
                LogEntry::Repair { a: 1, b: 2 },
            ],
        };
        assert_eq!(empty.wire_size(), 13);
        assert_eq!(two.wire_size() - empty.wire_size(), 2 * 17);
    }

    #[test]
    fn shard_result_sender_and_wire_size() {
        let msg = Message::ShardResult {
            from: 9,
            shard: 4,
            length: 321,
            order: (0..25).collect(),
        };
        assert_eq!(msg.from(), 9);
        // tag + from + shard + length + count + 25 cities.
        assert_eq!(msg.wire_size(), 1 + 8 + 4 + 8 + 4 + 4 * 25);
    }

    #[test]
    fn job_frames_sender_and_wire_size() {
        let submit = Message::JobSubmit {
            from: 0,
            job: job_id(7, 3),
            client: 7,
            seed: 42,
            kicks: 100,
            deadline_ms: 5_000,
            target: i64::MIN,
            payload_kind: 1,
            payload: b"NAME: t\n".to_vec(),
            checkpoint: vec![],
        };
        assert_eq!(submit.from(), 0);
        // Fixed header + kind byte + two length-prefixed sections.
        assert_eq!(submit.wire_size(), 1 + 7 * 8 + 1 + 4 + 8 + 4);
        assert_eq!(
            Message::JobAccept {
                from: 2,
                job: 1,
                worker: 2
            }
            .from(),
            2
        );
        assert_eq!(
            Message::JobAccept {
                from: 2,
                job: 1,
                worker: 2
            }
            .wire_size(),
            25
        );
        let improved = Message::JobImproved {
            from: 3,
            job: job_id(7, 3),
            length: 99,
            order: (0..12).collect(),
        };
        assert_eq!(improved.from(), 3);
        assert_eq!(improved.wire_size(), 1 + 8 + 8 + 8 + 4 + 4 * 12);
        let done = Message::JobDone {
            from: 3,
            job: 1,
            reason: 2,
            length: 99,
            order: (0..12).collect(),
        };
        assert_eq!(done.from(), 3);
        // JobDone = JobImproved + the reason byte.
        assert_eq!(done.wire_size(), improved.wire_size() + 1);
        let cancel = Message::JobCancel {
            from: 0,
            job: 1,
            reason: 3,
        };
        assert_eq!(cancel.from(), 0);
        assert_eq!(cancel.wire_size(), 18);
    }

    #[test]
    fn job_id_recovers_client() {
        let id = job_id(9, 41);
        assert_eq!(id >> 32, 9);
        assert_eq!(id & 0xffff_ffff, 41);
        assert_ne!(job_id(9, 41), job_id(41, 9));
    }

    #[test]
    fn broadcast_id_recovers_origin() {
        let id = broadcast_id(5, 17);
        assert_eq!(id >> 32, 5);
        assert_eq!(id & 0xffff_ffff, 17);
        assert_ne!(broadcast_id(5, 17), broadcast_id(17, 5));
    }

    #[test]
    fn wire_size_scales_with_tour() {
        let small = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 10],
        };
        let big = Message::TourFound {
            from: 0,
            id: 0,
            length: 0,
            order: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), 4 * 990);
    }
}
