//! Property tests for the networking substrate: the codec must
//! round-trip every well-formed message and must never panic on
//! arbitrary bytes (it parses data from the network).

use p2p::codec::{decode, encode, read_frame, write_frame};
use p2p::{LogEntry, Message};
use proptest::prelude::*;

fn arb_log_entry() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(node, epoch)| LogEntry::Join {
            node: node as usize,
            epoch,
        }),
        (any::<u16>(), any::<u64>()).prop_map(|(node, inc)| LogEntry::Down {
            node: node as usize,
            inc,
        }),
        (any::<u16>(), any::<u64>()).prop_map(|(node, inc)| LogEntry::Rejoin {
            node: node as usize,
            inc,
        }),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| LogEntry::Repair {
            a: a as usize,
            b: b as usize,
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u16>(),
            any::<u64>(),
            any::<i64>(),
            prop::collection::vec(any::<u32>(), 0..500)
        )
            .prop_map(|(from, id, length, order)| Message::TourFound {
                from: from as usize,
                id,
                length,
                order,
            }),
        (any::<u16>(), any::<i64>()).prop_map(|(from, length)| Message::OptimumFound {
            from: from as usize,
            length,
        }),
        any::<u16>().prop_map(|from| Message::Leave { from: from as usize }),
        any::<u16>().prop_map(|from| Message::Ping { from: from as usize }),
        (any::<u16>(), any::<u64>()).prop_map(|(from, t_ns)| Message::Pong {
            from: from as usize,
            t_ns,
        }),
        any::<u16>().prop_map(|from| Message::BestRequest { from: from as usize }),
        (
            any::<u16>(),
            any::<u64>(),
            any::<i64>(),
            prop::collection::vec(any::<u32>(), 0..500)
        )
            .prop_map(|(from, id, length, order)| Message::BestReply {
                from: from as usize,
                id,
                length,
                order,
            }),
        (any::<u16>(), any::<u64>()).prop_map(|(from, epoch)| Message::HubClaim {
            from: from as usize,
            epoch,
        }),
        (any::<u16>(), prop::collection::vec(arb_log_entry(), 0..64)).prop_map(
            |(from, entries)| Message::LogSnapshot {
                from: from as usize,
                entries,
            }
        ),
        arb_telemetry(),
        arb_job_message(),
    ]
}

/// Generators for the job-service frames (tags 12–16). Enum-like
/// fields stay in their wire-legal ranges (`payload_kind` ∈ {1, 2},
/// reason ≤ 3) — the codec rejects everything else, which the
/// dedicated rejection tests below pin.
fn arb_job_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            (any::<u16>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<i64>(), 1u8..=2),
            prop::collection::vec(any::<u8>(), 0..512),
            prop::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(
                |(
                    (from, job, client, seed),
                    (kicks, deadline_ms, target, payload_kind),
                    payload,
                    checkpoint,
                )| Message::JobSubmit {
                    from: from as usize,
                    job,
                    client,
                    seed,
                    kicks,
                    deadline_ms,
                    target,
                    payload_kind,
                    payload,
                    checkpoint,
                }
            ),
        (any::<u16>(), any::<u64>(), any::<u64>()).prop_map(|(from, job, worker)| {
            Message::JobAccept {
                from: from as usize,
                job,
                worker,
            }
        }),
        (
            any::<u16>(),
            any::<u64>(),
            any::<i64>(),
            prop::collection::vec(any::<u32>(), 0..500)
        )
            .prop_map(|(from, job, length, order)| Message::JobImproved {
                from: from as usize,
                job,
                length,
                order,
            }),
        (
            any::<u16>(),
            any::<u64>(),
            0u8..=3,
            any::<i64>(),
            prop::collection::vec(any::<u32>(), 0..500)
        )
            .prop_map(|(from, job, reason, length, order)| Message::JobDone {
                from: from as usize,
                job,
                reason,
                length,
                order,
            }),
        (any::<u16>(), any::<u64>(), 0u8..=3).prop_map(|(from, job, reason)| {
            Message::JobCancel {
                from: from as usize,
                job,
                reason,
            }
        }),
    ]
}

/// Metric names on the wire: short ASCII dotted paths (UTF-8 by
/// construction, under the codec's length cap).
fn arb_metric_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..38, 1..24).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b {
                0..=25 => (b'a' + b) as char,
                26..=35 => (b'0' + b - 26) as char,
                36 => '.',
                _ => '_',
            })
            .collect()
    })
}

fn arb_telemetry() -> impl Strategy<Value = Message> {
    (
        (any::<u16>(), any::<u64>(), any::<u64>()),
        (any::<i64>(), any::<u64>(), any::<bool>()),
        prop::collection::vec((arb_metric_name(), any::<u64>()), 0..12),
        prop::collection::vec((arb_metric_name(), any::<i64>()), 0..12),
        prop::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(
            |(
                (from, t_ns, rtt_ns),
                (best_len, clk_calls, stalled),
                counters,
                gauges,
                events_jsonl,
            )| {
                Message::Telemetry {
                    from: from as usize,
                    t_ns,
                    rtt_ns,
                    best_len,
                    clk_calls,
                    stalled,
                    counters,
                    gauges,
                    events_jsonl,
                }
            },
        )
}

/// Killing nodes one at a time never disconnects the survivors, in any
/// topology; rejoin restores a connected graph too.
#[test]
fn membership_repairs_preserve_connectivity() {
    use p2p::{Membership, Topology};
    for n in [4usize, 6, 8, 11, 16] {
        for t in [
            Topology::Hypercube,
            Topology::Ring,
            Topology::Complete,
            Topology::Star,
        ] {
            let mut m = Membership::new(t, n);
            // Kill in a fixed pseudo-random order, leaving 2 alive.
            let mut order: Vec<usize> = (0..n).collect();
            order.rotate_left(n / 3 + 1);
            for &dead in order.iter().take(n - 2) {
                m.fail(dead);
                assert!(m.alive_connected(), "{t:?} n={n} after killing {dead}");
            }
            // Everyone comes back; graph must stay connected throughout.
            for &back in order.iter().take(n - 2) {
                m.rejoin(back);
                assert!(m.alive_connected(), "{t:?} n={n} after rejoin {back}");
            }
        }
    }
}

proptest! {
    /// encode → decode is the identity for every message.
    #[test]
    fn codec_roundtrip(msg in arb_message()) {
        let frame = encode(&msg);
        let (len_prefix, payload) = frame.split_at(4);
        let len = u32::from_le_bytes(len_prefix.try_into().unwrap()) as usize;
        prop_assert_eq!(len, payload.len());
        let back = decode(payload).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// decode never panics on arbitrary payloads — it returns an error
    /// or a valid message (the payload comes off the wire).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode(&bytes);
    }

    /// A stream of frames survives concatenation and sequential reads.
    #[test]
    fn framed_stream_roundtrip(msgs in prop::collection::vec(arb_message(), 0..8)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(&got, m);
        }
    }

    /// read_frame rejects corrupted length prefixes without panicking.
    #[test]
    fn read_frame_survives_corruption(
        msg in arb_message(),
        flip_byte in 0usize..4,
        xor in 1u8..255,
    ) {
        let frame = encode(&msg).to_vec();
        let mut corrupted = frame.clone();
        corrupted[flip_byte] ^= xor;
        let mut cursor = std::io::Cursor::new(corrupted);
        // Either an error, or (if the corrupted length happens to be
        // valid) some decode result — never a panic.
        let _ = read_frame(&mut cursor);
    }

    /// A frame truncated anywhere — mid-prefix or mid-payload — is an
    /// error, never a panic and never a bogus message.
    #[test]
    fn truncated_frames_error(msg in arb_message(), cut in any::<u64>()) {
        let frame = encode(&msg).to_vec();
        // Cut strictly inside the frame (a zero-length frame cannot
        // happen: every message has at least a tag byte).
        let keep = (cut % frame.len() as u64) as usize;
        let mut cursor = std::io::Cursor::new(frame[..keep].to_vec());
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Corruption anywhere in the frame — prefix or payload — never
    /// panics the framed reader (the wire parser handles every byte of
    /// attacker/fault-controlled input).
    #[test]
    fn read_frame_survives_payload_corruption(
        msg in arb_message(),
        flip in any::<u64>(),
        xor in 1u8..255,
    ) {
        let mut frame = encode(&msg).to_vec();
        let at = (flip % frame.len() as u64) as usize;
        frame[at] ^= xor;
        let mut cursor = std::io::Cursor::new(frame);
        let _ = read_frame(&mut cursor);
    }

    /// decode is total on truncations of valid payloads: every prefix
    /// of a well-formed payload either errors or (for the full length)
    /// round-trips — no panic on any split point.
    #[test]
    fn decode_total_on_payload_prefixes(msg in arb_message(), cut in any::<u64>()) {
        let frame = encode(&msg).to_vec();
        let payload = &frame[4..];
        let keep = (cut % (payload.len() as u64 + 1)) as usize;
        match decode(&payload[..keep]) {
            Ok(back) => prop_assert_eq!(back, msg),
            Err(_) => prop_assert!(keep < payload.len()),
        }
    }

    /// Every job-service frame (tags 12–16) round-trips exactly — the
    /// dedicated coverage the multi-tenant service leans on, matching
    /// the tag-11 `ShardResult` discipline.
    #[test]
    fn job_frames_roundtrip(msg in arb_job_message()) {
        let frame = encode(&msg);
        let back = decode(&frame[4..]).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Every strict truncation of a job frame's payload is rejected:
    /// all five frames demand exact consumption, so a cut anywhere —
    /// mid-header, mid-payload, mid-checkpoint — errors cleanly.
    #[test]
    fn job_frames_reject_truncation(msg in arb_job_message(), cut in any::<u64>()) {
        let frame = encode(&msg).to_vec();
        let payload = &frame[4..];
        let keep = (cut % payload.len() as u64) as usize;
        prop_assert!(decode(&payload[..keep]).is_err());
    }

    /// Corrupting the enum-like wire fields past their legal ranges is
    /// rejected: `payload_kind` ∉ {1, 2} in `JobSubmit`, and a
    /// `reason` above `MAX_JOB_REASON` in `JobDone`/`JobCancel`.
    #[test]
    fn job_frames_reject_bad_enum_bytes(msg in arb_job_message(), bump in 1u8..=200) {
        let mut payload = encode(&msg).to_vec().split_off(4);
        // Offset of the validated byte within the decoded payload:
        // JobSubmit carries payload_kind after tag + 7 fixed u64/i64
        // fields; JobDone/JobCancel carry reason after tag + 2.
        let at = match msg {
            Message::JobSubmit { .. } => Some(1 + 7 * 8),
            Message::JobDone { .. } | Message::JobCancel { .. } => Some(1 + 2 * 8),
            _ => None,
        };
        if let Some(at) = at {
            // Push the byte out of range (kind > 2, reason > 3; 200+
            // headroom keeps the addition from wrapping back legal).
            payload[at] = payload[at].saturating_add(3).saturating_add(bump);
            prop_assert!(decode(&payload).is_err());
        }
    }
}

fn memory_pair() -> (p2p::memory::MemoryEndpoint, p2p::memory::MemoryEndpoint) {
    use p2p::{InMemoryNetwork, Topology};
    let (mut eps, _) = InMemoryNetwork::build(2, Topology::Ring);
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    (a, b)
}

fn arb_election_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(f, e)| Message::HubClaim {
            from: f as usize,
            epoch: e,
        }),
        (any::<u16>(), prop::collection::vec(arb_log_entry(), 0..16)).prop_map(
            |(f, entries)| Message::LogSnapshot {
                from: f as usize,
                entries,
            }
        ),
    ]
}

proptest! {
    /// Election frames (`HubClaim`, `LogSnapshot`) delivered through a
    /// fault-free decorator arrive intact and in order — the decorator
    /// adds no serialization artifacts of its own.
    #[test]
    fn election_frames_pass_faultfree_transport(
        msgs in prop::collection::vec(arb_election_message(), 0..16),
        seed in any::<u64>(),
    ) {
        use p2p::{FaultConfig, FaultyTransport, Transport};
        let (mut a, b) = memory_pair();
        let mut b = FaultyTransport::new(b, FaultConfig::none(seed));
        for m in &msgs {
            a.send(1, m.clone()).unwrap();
        }
        prop_assert_eq!(b.drain(), msgs);
    }

    /// Wire-level corruption of election frames is either caught by
    /// the codec (frame discarded) or survives as a structurally valid
    /// message — never a panic, and every frame is accounted for.
    #[test]
    fn corrupt_election_frames_are_rejected_or_valid(
        snapshots in prop::collection::vec(
            prop::collection::vec(arb_log_entry(), 0..16),
            1..20,
        ),
        seed in any::<u64>(),
    ) {
        use p2p::{FaultConfig, FaultyTransport, Transport};
        let (mut a, b) = memory_pair();
        let mut b = FaultyTransport::new(b, FaultConfig::corrupt_rate(1.0, seed));
        let sent = snapshots.len() as u64;
        for entries in snapshots {
            a.send(1, Message::LogSnapshot { from: 0, entries }).unwrap();
        }
        let got = b.drain();
        let s = b.stats();
        prop_assert_eq!(got.len() as u64, s.corrupted_delivered);
        prop_assert_eq!(s.corrupted_delivered + s.corrupted_discarded, sent);
    }
}

/// Topology neighbor lists are always symmetric and self-loop-free.
#[test]
fn topology_properties() {
    use p2p::Topology;
    for n in 2..=17usize {
        for t in [
            Topology::Hypercube,
            Topology::Ring,
            Topology::Complete,
            Topology::Star,
        ] {
            for v in 0..n {
                let nb = t.neighbors(v, n);
                assert!(!nb.contains(&v), "{t:?} self-loop at n={n}");
                let unique: std::collections::HashSet<_> = nb.iter().collect();
                assert_eq!(unique.len(), nb.len(), "{t:?} duplicate edge at n={n}");
                for m in nb {
                    assert!(
                        t.neighbors(m, n).contains(&v),
                        "{t:?} asymmetric {v}-{m} at n={n}"
                    );
                }
            }
        }
    }
}
