//! Conformance tests for the deterministic hub election (DESIGN.md §9
//! "hub migration"): replicas that saw the same membership facts must
//! name the same winner, epoch fencing must reject every stale claim,
//! and concurrent candidates must converge — on every seed.

use p2p::{LogEntry, Replica, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Gossip closure at the replica level: apply `entries` everywhere
/// (delivery order across nodes is irrelevant — `apply` is a CRDT-ish
/// idempotent fold, covered by its own unit tests).
fn gossip_all(replicas: &mut [Replica], entries: &[LogEntry]) {
    for r in replicas.iter_mut() {
        r.apply(entries);
    }
}

/// Kill `dead` as one alive reporter would: record locally, gossip the
/// resulting Down + Repair entries to every replica.
fn kill(replicas: &mut [Replica], reporter: usize, dead: usize) {
    let entries = replicas[reporter].note_down(dead);
    assert!(!entries.is_empty(), "kill of {dead} produced no entries");
    gossip_all(replicas, &entries);
}

/// Ten seeded churn patterns: after any sequence of deaths (always
/// including the bootstrap hub, node 0, so an election is actually
/// required), every replica names the same winner — the minimum alive
/// id — and a flooded claim from that winner is accepted everywhere.
#[test]
fn every_node_observes_the_same_winner_across_ten_seeds() {
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2 * rng.gen_range(2..=6usize); // 4..=12 nodes
        let mut replicas: Vec<Replica> =
            (0..n).map(|_| Replica::bootstrap(Topology::Hypercube, n)).collect();

        // Kill the hub plus up to n-3 seeded extras (≥ 2 survivors).
        let extra = rng.gen_range(0..=(n - 3));
        let mut dead = vec![0usize];
        while dead.len() < 1 + extra {
            let d = rng.gen_range(1..n);
            if !dead.contains(&d) {
                dead.push(d);
            }
        }
        for &d in &dead {
            let reporter = (0..n).find(|v| !dead.contains(v)).unwrap();
            kill(&mut replicas, reporter, d);
        }

        let expected = (0..n).find(|v| !dead.contains(v)).unwrap();
        for (v, r) in replicas.iter().enumerate() {
            if dead.contains(&v) {
                continue;
            }
            assert!(!r.hub_alive(), "seed {seed}: node {v} still trusts a dead hub");
            assert_eq!(
                r.winner(),
                Some(expected),
                "seed {seed}: node {v} elected a different winner"
            );
        }

        // The winner claims; the flood is accepted by every survivor.
        let epoch = replicas[expected].epoch() + 1;
        for (v, r) in replicas.iter_mut().enumerate() {
            if dead.contains(&v) {
                continue;
            }
            assert!(
                r.observe_claim(expected, epoch),
                "seed {seed}: node {v} rejected the winner's claim"
            );
            assert_eq!(r.hub(), Some(expected));
            assert_eq!(r.epoch(), epoch);
        }
    }
}

/// Epoch fencing: once a claim at epoch `e` is in force, re-delivery
/// of the same claim and anything older is rejected on every replica —
/// the claim epidemic terminates.
#[test]
fn stale_claim_epochs_are_rejected_everywhere() {
    let n = 8;
    let mut replicas: Vec<Replica> =
        (0..n).map(|_| Replica::bootstrap(Topology::Hypercube, n)).collect();
    kill(&mut replicas, 1, 0);

    for r in replicas.iter_mut().skip(1) {
        assert!(r.observe_claim(1, 2));
    }
    for (v, r) in replicas.iter_mut().enumerate().skip(1) {
        assert!(!r.observe_claim(1, 2), "node {v} re-accepted the claim");
        assert!(!r.observe_claim(1, 1), "node {v} accepted an older epoch");
        assert!(!r.observe_claim(3, 2), "node {v} accepted a same-epoch higher id");
        assert!(!r.observe_claim(3, 0), "node {v} accepted the stale bootstrap claim");
        assert_eq!((r.hub(), r.epoch()), (Some(1), 2));
    }
}

/// Two candidates claim the same epoch concurrently (each believed
/// itself the winner under a partial view). Whatever order the two
/// floods arrive in, every replica settles on the lower candidate id —
/// and the loser itself accepts the winner's claim.
#[test]
fn concurrent_candidates_converge_to_the_lower_id() {
    let n = 8;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut replicas: Vec<Replica> =
            (0..n).map(|_| Replica::bootstrap(Topology::Hypercube, n)).collect();
        kill(&mut replicas, 1, 0);

        // Nodes 1 and 2 both claim epoch 1; per-replica arrival order
        // is seeded.
        for (v, r) in replicas.iter_mut().enumerate().skip(1) {
            let claims = if rng.gen_bool(0.5) { [(1, 1), (2, 1)] } else { [(2, 1), (1, 1)] };
            for (claimer, epoch) in claims {
                r.observe_claim(claimer, epoch);
            }
            assert_eq!(
                (r.hub(), r.epoch()),
                (Some(1), 1),
                "seed {seed}: node {v} did not converge on the lower candidate"
            );
        }
    }
}

proptest! {
    /// For any subset of deaths that leaves at least one survivor,
    /// every surviving replica elects the minimum alive id.
    #[test]
    fn any_alive_subset_elects_the_minimum_alive_id(
        n in 2..16usize,
        mask in prop::collection::vec(any::<bool>(), 16..17),
    ) {
        let mut dead: Vec<usize> = (0..n).filter(|&v| mask[v]).collect();
        if dead.len() == n {
            // Leave at least one survivor to hold an election at all.
            dead.pop();
        }
        let mut replicas: Vec<Replica> =
            (0..n).map(|_| Replica::bootstrap(Topology::Hypercube, n)).collect();
        for &d in &dead {
            let reporter = (0..n).find(|v| !dead.contains(v)).unwrap();
            kill(&mut replicas, reporter, d);
        }
        let expected = (0..n).find(|v| !dead.contains(v));
        for (v, r) in replicas.iter().enumerate() {
            if dead.contains(&v) {
                continue;
            }
            prop_assert_eq!(r.winner(), expected, "node {}", v);
        }
    }
}
