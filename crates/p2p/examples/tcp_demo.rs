//! End-to-end demo of the TCP transport on localhost: bind two
//! observability-instrumented endpoints, exchange tours over real
//! sockets, show that connecting to a dead address fails within the
//! configured deadline, and that shutdown returns promptly with all
//! threads joined. Finishes by dumping each node's wire metrics and
//! the merged structured event log as JSONL — the same artifacts the
//! `profile` bench experiment renders.
//!
//! ```text
//! cargo run -p p2p --example tcp_demo
//! ```

use std::time::{Duration, Instant};

use obs_api::Obs;
use p2p::tcp::{TcpConfig, TcpEndpoint};
use p2p::{Message, Transport};

fn recv_blocking(ep: &mut TcpEndpoint, deadline: Duration) -> Option<Message> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Some(m) = ep.try_recv() {
            return Some(m);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    None
}

fn main() {
    // 1. Two endpoints on ephemeral localhost ports, one connect call.
    //    Each carries a live obs handle recording wire metrics/events.
    let obs_a = Obs::for_node(0);
    let obs_b = Obs::for_node(1);
    let mut a = TcpEndpoint::bind_with_obs(0, "127.0.0.1:0", TcpConfig::default(), obs_a.clone())
        .expect("bind a");
    let mut b = TcpEndpoint::bind_with_obs(1, "127.0.0.1:0", TcpConfig::default(), obs_b.clone())
        .expect("bind b");
    a.connect_to(1, b.listen_addr()).expect("connect a->b");
    println!("connected: node 0 @ {} <-> node 1 @ {}", a.listen_addr(), b.listen_addr());

    // 2. A tour each way over the wire.
    a.send(
        1,
        Message::TourFound {
            from: 0,
            id: p2p::broadcast_id(0, 1),
            length: 4242,
            order: (0..32).collect(),
        },
    )
    .expect("send a->b");
    match recv_blocking(&mut b, Duration::from_secs(2)) {
        Some(Message::TourFound { from, id, length, order }) => {
            println!(
                "node 1 received tour: from={from} id={id:#x} length={length} cities={}",
                order.len()
            );
        }
        other => panic!("node 1 expected a tour, got {other:?}"),
    }
    b.send(0, Message::OptimumFound { from: 1, length: 4242 }).expect("send b->a");
    match recv_blocking(&mut a, Duration::from_secs(2)) {
        Some(Message::OptimumFound { from, length }) => {
            println!("node 0 received optimum notice: from={from} length={length}");
        }
        other => panic!("node 0 expected an optimum notice, got {other:?}"),
    }

    // 3. Dead address: retries + backoff must stay within the deadline
    //    budget instead of hanging — and each retry is counted.
    let cfg = TcpConfig::fast_fail();
    let obs_dead = Obs::for_node(7);
    let dead = TcpEndpoint::bind_with_obs(7, "127.0.0.1:0", cfg.clone(), obs_dead.clone())
        .expect("bind dead-dialer");
    let start = Instant::now();
    let err = dead
        .connect_to(8, "127.0.0.1:9".parse().unwrap())
        .expect_err("connecting to a dead address must fail");
    let elapsed = start.elapsed();
    let budget = (cfg.connect_timeout + cfg.backoff_max) * (cfg.connect_retries + 1);
    println!(
        "dead-address connect failed in {elapsed:.2?} (budget {budget:.2?}, retries counted: {}): {err}",
        obs_dead.snapshot().counter("tcp.retries")
    );
    assert!(elapsed <= budget, "retry loop exceeded its deadline budget");

    // 4. Shutdown joins reader threads in bounded time.
    let start = Instant::now();
    a.shutdown();
    b.shutdown();
    println!("both endpoints shut down in {:.2?}", start.elapsed());
    assert!(start.elapsed() < Duration::from_secs(5), "shutdown not bounded");

    // 5. The observability artifacts: per-node wire metrics in
    //    Prometheus text format, then the merged event timeline as
    //    JSONL (empty when built with the obs feature disabled).
    println!("\n--- node 0 metrics ---\n{}", obs_a.prometheus_text());
    println!("--- node 1 metrics ---\n{}", obs_b.prometheus_text());
    println!("--- event log (jsonl) ---");
    let timeline = obs_api::merge_timelines(&[obs_a.events(), obs_b.events()]);
    let mut out = Vec::new();
    obs_api::write_jsonl(&mut out, &timeline).expect("serialize events");
    print!("{}", String::from_utf8(out).expect("jsonl is utf-8"));
    println!("ok");
}
