//! Property-based tests on the core data structures.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tsp_core::{generate, Instance, NeighborLists, Tour};

/// Strategy: a permutation of 0..n encoded as a seed + size.
fn tour_strategy() -> impl Strategy<Value = Tour> {
    (8usize..64, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        Tour::random(n, &mut rng)
    })
}

proptest! {
    /// Any sequence of reversals keeps the permutation invariant.
    #[test]
    fn reversals_preserve_validity(
        mut tour in tour_strategy(),
        ops in prop::collection::vec((0usize..64, 0usize..64), 0..40),
    ) {
        let n = tour.len();
        for (a, b) in ops {
            tour.reverse_segment(a % n, b % n);
            prop_assert!(tour.is_valid());
        }
    }

    /// Double-bridge moves keep the permutation invariant and change at
    /// most 4 edges.
    #[test]
    fn double_bridge_preserves_validity(
        mut tour in tour_strategy(),
        seeds in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        for s in seeds {
            let mut rng = SmallRng::seed_from_u64(s);
            let before: std::collections::HashSet<(usize, usize)> = tour
                .edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            tour.random_double_bridge(&mut rng);
            prop_assert!(tour.is_valid());
            let after: std::collections::HashSet<(usize, usize)> = tour
                .edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            prop_assert!(before.difference(&after).count() <= 4);
        }
    }

    /// Tour length is invariant under rotation of the order and reversal
    /// of the whole tour (symmetric TSP).
    #[test]
    fn length_is_cycle_invariant(n in 8usize..40, seed in any::<u64>()) {
        let inst = generate::uniform(n, 1000.0, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        let tour = Tour::random(n, &mut rng);
        let len = tour.length(&inst);

        // Rotate.
        let mut rotated: Vec<u32> = tour.order().to_vec();
        rotated.rotate_left(n / 3);
        prop_assert_eq!(Tour::from_order(rotated).length(&inst), len);

        // Reverse.
        let mut reversed: Vec<u32> = tour.order().to_vec();
        reversed.reverse();
        prop_assert_eq!(Tour::from_order(reversed).length(&inst), len);
    }

    /// next/prev are inverse bijections.
    #[test]
    fn next_prev_inverse(tour in tour_strategy()) {
        for c in 0..tour.len() {
            prop_assert_eq!(tour.prev(tour.next(c)), c);
            prop_assert_eq!(tour.next(tour.prev(c)), c);
        }
    }

    /// between(a, b, c) matches a brute-force walk.
    #[test]
    fn between_matches_walk(tour in tour_strategy(), picks in any::<u64>()) {
        let n = tour.len();
        let mut rng = SmallRng::seed_from_u64(picks);
        use rand::Rng;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        // Walk forward from a; does b appear strictly before c?
        let mut walk_says = false;
        let mut cur = tour.next(a);
        while cur != c && cur != a {
            if cur == b {
                walk_says = true;
                break;
            }
            cur = tour.next(cur);
        }
        if a == b || b == c || a == c {
            // Degenerate triples: between() is false for pa==pb or pb==pc.
            if b == a || b == c {
                walk_says = false;
            }
        }
        prop_assert_eq!(tour.between(a, b, c), walk_says && a != c);
    }

    /// Neighbor lists never contain the city itself and are sorted by
    /// metric distance.
    #[test]
    fn neighbor_lists_well_formed(n in 10usize..80, seed in any::<u64>(), k in 2usize..8) {
        let inst = generate::uniform(n, 10_000.0, seed);
        let nl = NeighborLists::build(&inst, k);
        for c in 0..n {
            let list = nl.of(c);
            prop_assert!(!list.contains(&(c as u32)));
            let ds: Vec<f64> = list.iter()
                .map(|&o| inst.point(o as usize).sq_dist(&inst.point(c)))
                .collect();
            for w in ds.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// TSPLIB round-trip preserves distances.
    #[test]
    fn tsplib_roundtrip(n in 4usize..30, seed in any::<u64>()) {
        let inst = generate::uniform(n, 1000.0, seed);
        let text = tsp_core::tsplib::write_instance(&inst);
        let back = tsp_core::tsplib::parse_instance(&text).unwrap();
        prop_assert_eq!(back.len(), inst.len());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    /// Or-opt moves preserve the permutation.
    #[test]
    fn or_opt_preserves_validity(
        n in 10usize..50,
        seed in any::<u64>(),
        seg_len in 1usize..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tour = Tour::random(n, &mut rng);
        use rand::Rng;
        let s = rng.gen_range(0..n);
        // Pick a destination outside the segment.
        let mut seg = vec![s];
        let mut c = s;
        for _ in 1..seg_len {
            c = tour.next(c);
            seg.push(c);
        }
        let dest_candidates: Vec<usize> = (0..n).filter(|d| !seg.contains(d)).collect();
        let dest = dest_candidates[rng.gen_range(0..dest_candidates.len())];
        let reversed = rng.gen_bool(0.5);
        tour.or_opt_move(s, seg_len, dest, reversed);
        prop_assert!(tour.is_valid());
        prop_assert_eq!(tour.next(dest), if reversed { seg[seg_len - 1] } else { s });
    }
}

/// Explicit-matrix instances behave like their geometric counterparts.
#[test]
fn explicit_matches_geometric() {
    let geo = generate::uniform(25, 1000.0, 5);
    let n = geo.len();
    let mut m = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = geo.dist(i, j);
        }
    }
    let exp = Instance::explicit("as-matrix", m, n);
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..10 {
        let tour = Tour::random(n, &mut rng);
        assert_eq!(tour.length(&geo), tour.length(&exp));
    }
}
