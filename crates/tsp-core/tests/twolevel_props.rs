//! Property tests for the two-level tour list: under arbitrary flip
//! sequences it stays a valid permutation, agrees with its own
//! flattened form on every query, and each flip matches the array
//! reference applied in the list's own orientation.

use proptest::prelude::*;
use tsp_core::{Tour, TwoLevelList};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flip_sequences_preserve_all_invariants(
        n in 10usize..150,
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 1..40),
    ) {
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for (ra, rb) in ops {
            let a = ra as usize % n;
            let b = rb as usize % n;
            if a == b {
                continue;
            }
            // Reference: flatten, flip with the array implementation in
            // the SAME orientation, compare undirected cycles.
            let mut reference = tl.to_tour();
            reference.reverse_segment(reference.position(a), reference.position(b));
            tl.flip(a, b);
            prop_assert!(tl.check_invariants());
            let want: std::collections::HashSet<(usize, usize)> = reference
                .edges().map(|(x, y)| (x.min(y), x.max(y))).collect();
            let got: std::collections::HashSet<(usize, usize)> = tl
                .to_tour().edges().map(|(x, y)| (x.min(y), x.max(y))).collect();
            prop_assert_eq!(want, got);
        }
        // Still a permutation of 0..n.
        let mut order = tl.to_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn queries_agree_with_flattened_tour(
        n in 10usize..120,
        ops in prop::collection::vec((any::<u32>(), any::<u32>()), 0..25),
        probes in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..40),
    ) {
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for (ra, rb) in ops {
            let a = ra as usize % n;
            let b = rb as usize % n;
            if a != b {
                tl.flip(a, b);
            }
        }
        let flat: Tour = tl.to_tour();
        for c in 0..n {
            prop_assert_eq!(tl.next(c), flat.next(c));
            prop_assert_eq!(tl.prev(c), flat.prev(c));
        }
        for (x, y, z) in probes {
            let (a, b, c) = (x as usize % n, y as usize % n, z as usize % n);
            prop_assert_eq!(tl.between(a, b, c), flat.between(a, b, c));
        }
    }
}

/// Conversion round-trips for every construction size.
#[test]
fn conversion_roundtrips() {
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(9);
    for n in [3usize, 4, 8, 9, 64, 1000, 4097] {
        let t = Tour::random(n, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        assert!(tl.check_invariants(), "n={n}");
        assert_eq!(tl.to_order(), t.order(), "n={n}");
    }
}
