//! Two-level doubly-linked tour representation.
//!
//! Concorde's `linkern` uses a two-level list for large instances: the
//! tour is split into ~√n *segments*; each segment stores its cities in
//! an array plus a `reversed` flag. `next`/`prev`/`between` stay O(1)
//! while a 2-opt flip becomes O(√n) (split at the two cut cities, then
//! reverse a *run of segment handles* instead of the cities
//! themselves). The array representation of [`crate::tour::Tour`]
//! reverses O(n) cities per flip, which dominates the runtime on the
//! paper's largest instances (pla33810/pla85900-class); this structure
//! is the substrate that removes that bottleneck.
//!
//! The structure maintains:
//!
//! - `segments`: arena of segments (stable ids),
//! - `order`: segment ids in tour order,
//! - `seg_pos[id]`: position of segment `id` in `order`,
//! - `city_seg[c]` / `city_off[c]`: segment id and *physical* offset of
//!   city `c` inside that segment.
//!
//! Invariant: walking `order`, expanding each segment in logical
//! direction (`reversed` flips the physical array), yields the tour.

use crate::tour::Tour;

/// Target number of cities per segment, as a function of n.
fn target_seg_len(n: usize) -> usize {
    ((n as f64).sqrt() as usize).clamp(4, 4096)
}

#[derive(Debug, Clone)]
struct Segment {
    cities: Vec<u32>,
    reversed: bool,
}

impl Segment {
    #[inline]
    fn len(&self) -> usize {
        self.cities.len()
    }

    /// Logical index of physical offset `off`.
    #[inline]
    fn logical(&self, off: usize) -> usize {
        if self.reversed {
            self.len() - 1 - off
        } else {
            off
        }
    }

    /// Physical offset of logical index `idx`.
    #[inline]
    fn physical(&self, idx: usize) -> usize {
        if self.reversed {
            self.len() - 1 - idx
        } else {
            idx
        }
    }

    /// City at logical index `idx`.
    #[inline]
    fn at(&self, idx: usize) -> u32 {
        self.cities[self.physical(idx)]
    }
}

/// A two-level doubly-linked tour over cities `0..n`.
#[derive(Debug, Clone)]
pub struct TwoLevelList {
    segments: Vec<Segment>,
    /// Segment ids in tour order.
    order: Vec<u32>,
    /// Position of each segment id in `order` (`u32::MAX` for retired ids).
    seg_pos: Vec<u32>,
    city_seg: Vec<u32>,
    city_off: Vec<u32>,
    n: usize,
    /// Rebuild threshold: when `order.len()` exceeds this, group sizes
    /// have degenerated (too many splits) and the structure re-groups.
    max_segments: usize,
}

impl TwoLevelList {
    /// Build from a tour.
    pub fn from_tour(tour: &Tour) -> Self {
        Self::from_order_slice(tour.order())
    }

    /// Build from a visiting order.
    pub fn from_order_slice(order_slice: &[u32]) -> Self {
        let n = order_slice.len();
        assert!(n >= 3, "a tour needs at least 3 cities");
        let seg_len = target_seg_len(n);
        let nsegs = n.div_ceil(seg_len);
        let mut tl = TwoLevelList {
            segments: Vec::with_capacity(nsegs * 2),
            order: Vec::with_capacity(nsegs * 2),
            seg_pos: Vec::new(),
            city_seg: vec![0; n],
            city_off: vec![0; n],
            n,
            max_segments: 4 * nsegs + 8,
        };
        for chunk in order_slice.chunks(seg_len) {
            let id = tl.segments.len() as u32;
            for (off, &c) in chunk.iter().enumerate() {
                tl.city_seg[c as usize] = id;
                tl.city_off[c as usize] = off as u32;
            }
            tl.segments.push(Segment {
                cities: chunk.to_vec(),
                reversed: false,
            });
            tl.order.push(id);
        }
        tl.seg_pos = vec![u32::MAX; tl.segments.len()];
        for (pos, &id) in tl.order.iter().enumerate() {
            tl.seg_pos[id as usize] = pos as u32;
        }
        tl
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Tours are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current number of segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.order.len()
    }

    #[inline]
    fn seg(&self, id: u32) -> &Segment {
        &self.segments[id as usize]
    }

    /// Global logical coordinates of a city: `(segment position in
    /// order, logical index in segment)`.
    #[inline]
    fn coords(&self, c: usize) -> (usize, usize) {
        let id = self.city_seg[c];
        let seg = self.seg(id);
        (
            self.seg_pos[id as usize] as usize,
            seg.logical(self.city_off[c] as usize),
        )
    }

    /// Successor of city `c` in tour direction.
    pub fn next(&self, c: usize) -> usize {
        let id = self.city_seg[c];
        let seg = self.seg(id);
        let idx = seg.logical(self.city_off[c] as usize);
        if idx + 1 < seg.len() {
            seg.at(idx + 1) as usize
        } else {
            let pos = self.seg_pos[id as usize] as usize;
            let next_id = self.order[(pos + 1) % self.order.len()];
            self.seg(next_id).at(0) as usize
        }
    }

    /// Predecessor of city `c` in tour direction.
    pub fn prev(&self, c: usize) -> usize {
        let id = self.city_seg[c];
        let seg = self.seg(id);
        let idx = seg.logical(self.city_off[c] as usize);
        if idx > 0 {
            seg.at(idx - 1) as usize
        } else {
            let pos = self.seg_pos[id as usize] as usize;
            let prev_id = self.order[(pos + self.order.len() - 1) % self.order.len()];
            let pseg = self.seg(prev_id);
            pseg.at(pseg.len() - 1) as usize
        }
    }

    /// Whether walking forward from `a` meets `b` strictly before `c`
    /// (same semantics as [`Tour::between`]).
    pub fn between(&self, a: usize, b: usize, c: usize) -> bool {
        let pa = self.coords(a);
        let pb = self.coords(b);
        let pc = self.coords(c);
        if pa <= pc {
            pa < pb && pb < pc
        } else {
            pb > pa || pb < pc
        }
    }

    /// Split the segment containing `c` so that `c` becomes the
    /// *logical first* city of its segment. No-op if it already is.
    fn split_before(&mut self, c: usize) {
        let id = self.city_seg[c];
        let idx = {
            let seg = self.seg(id);
            seg.logical(self.city_off[c] as usize)
        };
        if idx == 0 {
            return;
        }
        // Detach the logical prefix [0, idx) into a new segment placed
        // *before* this one; keep the suffix (starting at c) in place.
        let (prefix_cities, reversed) = {
            let seg = &mut self.segments[id as usize];
            if seg.reversed {
                // Physical suffix is the logical prefix.
                let cut = seg.len() - idx;
                let suffix: Vec<u32> = seg.cities.split_off(cut);
                (suffix, true)
            } else {
                let mut rest = seg.cities.split_off(idx);
                // Keep the suffix (starting at c) as this segment's
                // cities; hand the prefix to the new segment.
                std::mem::swap(&mut rest, &mut seg.cities);
                (rest, false)
            }
        };
        let new_id = self.segments.len() as u32;
        // Fix metadata of the cities that moved into the new segment and
        // of the ones whose physical offsets shifted.
        for (off, &city) in prefix_cities.iter().enumerate() {
            self.city_seg[city as usize] = new_id;
            self.city_off[city as usize] = off as u32;
        }
        {
            let seg = &self.segments[id as usize];
            for (off, &city) in seg.cities.iter().enumerate() {
                self.city_off[city as usize] = off as u32;
            }
        }
        self.segments.push(Segment {
            cities: prefix_cities,
            reversed,
        });
        let pos = self.seg_pos[id as usize] as usize;
        self.order.insert(pos, new_id);
        self.seg_pos.push(pos as u32);
        for p in pos..self.order.len() {
            self.seg_pos[self.order[p] as usize] = p as u32;
        }
    }

    /// Reverse the logical path from city `a` to city `b` (inclusive,
    /// walking forward). Chooses the representation-cheaper side like
    /// [`Tour::reverse_segment`]; as an undirected cycle the result is
    /// identical either way.
    pub fn flip(&mut self, a: usize, b: usize) {
        // Make a the head of its segment and next(b) the head of the
        // following segment (i.e. b a segment tail).
        self.split_before(a);
        let after_b = self.next(b);
        if after_b != a {
            self.split_before(after_b);
        }
        let pa = self.seg_pos[self.city_seg[a] as usize] as usize;
        let pb = self.seg_pos[self.city_seg[b] as usize] as usize;
        let m = self.order.len();
        // Run from pa to pb (cyclic). If it wraps, flip the complement
        // instead (same undirected cycle).
        let (start, count) = if pa <= pb {
            (pa, pb - pa + 1)
        } else {
            // Complement: pb+1 ..= pa-1.
            (pb + 1, (pa + m - pb - 1) % m)
        };
        if count == 0 || count == m {
            return;
        }
        // Reverse the run of segment handles and toggle their flags.
        let (mut i, mut j) = (start, start + count - 1);
        while i < j {
            self.order.swap(i % m, j % m);
            i += 1;
            j -= 1;
        }
        for p in start..start + count {
            let id = self.order[p % m];
            self.seg_pos[id as usize] = (p % m) as u32;
            self.segments[id as usize].reversed = !self.segments[id as usize].reversed;
        }
        if self.order.len() > self.max_segments {
            self.rebuild();
        }
    }

    /// Re-group into balanced segments (amortizes split cost).
    fn rebuild(&mut self) {
        let flat = self.to_order();
        *self = TwoLevelList::from_order_slice(&flat);
    }

    /// Flatten to a visiting order.
    pub fn to_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n);
        for &id in &self.order {
            let seg = self.seg(id);
            if seg.reversed {
                out.extend(seg.cities.iter().rev());
            } else {
                out.extend(seg.cities.iter());
            }
        }
        out
    }

    /// Convert to an array tour.
    pub fn to_tour(&self) -> Tour {
        Tour::from_order(self.to_order())
    }

    /// Validate every internal invariant (tests / debug).
    pub fn check_invariants(&self) -> bool {
        if self.order.len() != self.order.iter().collect::<std::collections::HashSet<_>>().len() {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut total = 0usize;
        for (pos, &id) in self.order.iter().enumerate() {
            if self.seg_pos[id as usize] as usize != pos {
                return false;
            }
            let seg = self.seg(id);
            if seg.cities.is_empty() {
                return false;
            }
            total += seg.len();
            for (off, &c) in seg.cities.iter().enumerate() {
                if seen[c as usize] {
                    return false;
                }
                seen[c as usize] = true;
                if self.city_seg[c as usize] != id || self.city_off[c as usize] as usize != off {
                    return false;
                }
            }
        }
        total == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn roundtrip(order: &[u32]) -> TwoLevelList {
        let tl = TwoLevelList::from_order_slice(order);
        assert!(tl.check_invariants());
        assert_eq!(tl.to_order(), order);
        tl
    }

    #[test]
    fn construction_roundtrip() {
        roundtrip(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Tour::random(137, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        assert_eq!(tl.to_order(), t.order());
        assert!(tl.check_invariants());
    }

    #[test]
    fn next_prev_match_array_tour() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = Tour::random(200, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        for c in 0..200 {
            assert_eq!(tl.next(c), t.next(c), "next({c})");
            assert_eq!(tl.prev(c), t.prev(c), "prev({c})");
        }
    }

    #[test]
    fn between_matches_array_tour() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = Tour::random(80, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        for _ in 0..500 {
            let a = rng.gen_range(0..80);
            let b = rng.gen_range(0..80);
            let c = rng.gen_range(0..80);
            assert_eq!(
                tl.between(a, b, c),
                t.between(a, b, c),
                "between({a},{b},{c})"
            );
        }
    }

    #[test]
    fn split_preserves_tour() {
        let mut tl = roundtrip(&(0..50u32).collect::<Vec<_>>());
        for c in [0usize, 7, 24, 49, 13] {
            tl.split_before(c);
            assert!(tl.check_invariants(), "after split_before({c})");
            assert_eq!(tl.to_order().len(), 50);
        }
        // Order as a cycle unchanged: normalize rotation.
        let order = tl.to_order();
        let zero = order.iter().position(|&c| c == 0).unwrap();
        let rotated: Vec<u32> = order[zero..].iter().chain(&order[..zero]).copied().collect();
        assert_eq!(rotated, (0..50u32).collect::<Vec<_>>());
    }

    /// Every flip reverses exactly the arc a→b of the list's *own*
    /// current orientation (flip is inherently orientation-dependent:
    /// both this structure and the array tour may flip orientation via
    /// shorter-side complement reversal, so the reference is re-derived
    /// from the list before each operation).
    #[test]
    fn flips_match_array_reference() {
        let n = 120usize;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for step in 0..300 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            // Reference: the list's own cycle, flipped in its own
            // orientation by the array implementation.
            let mut reference = tl.to_tour();
            reference.reverse_segment(reference.position(a), reference.position(b));
            tl.flip(a, b);
            assert!(tl.check_invariants(), "step {step}");
            let want: std::collections::HashSet<(usize, usize)> = reference
                .edges()
                .map(|(x, y)| (x.min(y), x.max(y)))
                .collect();
            let got: std::collections::HashSet<(usize, usize)> = tl
                .to_tour()
                .edges()
                .map(|(x, y)| (x.min(y), x.max(y)))
                .collect();
            assert_eq!(want, got, "cycle diverged at step {step} (flip {a},{b})");
        }
    }

    /// next/prev/between stay consistent with the flattened order after
    /// long flip sequences.
    #[test]
    fn queries_consistent_after_flips() {
        let n = 90usize;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for _ in 0..120 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            tl.flip(a, b);
        }
        let flat = tl.to_tour();
        for c in 0..n {
            assert_eq!(tl.next(c), flat.next(c), "next({c})");
            assert_eq!(tl.prev(c), flat.prev(c), "prev({c})");
        }
        for _ in 0..300 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            assert_eq!(tl.between(a, b, c), flat.between(a, b, c));
        }
    }

    #[test]
    fn rebuild_keeps_cycle() {
        let n = 64usize;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        // Force many splits to trigger a rebuild.
        for _ in 0..200 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            tl.flip(a, b);
        }
        assert!(tl.check_invariants());
        assert!(
            tl.segment_count() <= tl.max_segments,
            "rebuild never triggered: {} segments",
            tl.segment_count()
        );
        // Still a permutation.
        let mut order = tl.to_order();
        order.sort_unstable();
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn segment_count_scales_with_sqrt_n() {
        let n = 10_000usize;
        let tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        let s = tl.segment_count();
        assert!((50..=200).contains(&s), "unexpected segment count {s}");
    }
}
