//! Two-level doubly-linked tour representation.
//!
//! Concorde's `linkern` uses a two-level list for large instances: the
//! tour is split into ~√n *segments*; each segment stores its cities in
//! an array plus a `reversed` flag. `next`/`prev`/`between` stay O(1)
//! while a 2-opt flip becomes O(√n) (split at the two cut cities, then
//! reverse a *run of segment handles* instead of the cities
//! themselves). The array representation of [`crate::tour::Tour`]
//! reverses O(n) cities per flip, which dominates the runtime on the
//! paper's largest instances (pla33810/pla85900-class); this structure
//! is the substrate that removes that bottleneck.
//!
//! The structure maintains:
//!
//! - `segments`: arena of segments (stable ids),
//! - `order`: segment ids in tour order,
//! - `seg_pos[id]`: position of segment `id` in `order`,
//! - `city_seg[c]` / `city_off[c]`: segment id and *physical* offset of
//!   city `c` inside that segment.
//!
//! Invariant: walking `order`, expanding each segment in logical
//! direction (`reversed` flips the physical array), yields the tour.

use crate::tour::Tour;

/// Target number of cities per segment, as a function of n.
fn target_seg_len(n: usize) -> usize {
    (2 * (n as f64).sqrt() as usize).clamp(4, 4096)
}

/// Reduce a tour index into `[0, n)`; `x` is always `< 2n`.
#[inline]
fn wrap_pos(x: u32, n: usize) -> u32 {
    if x >= n as u32 {
        x - n as u32
    } else {
        x
    }
}

#[derive(Debug, Clone)]
struct Segment {
    cities: Vec<u32>,
    reversed: bool,
}

impl Segment {
    #[inline]
    fn len(&self) -> usize {
        self.cities.len()
    }

    /// Logical index of physical offset `off`.
    #[inline]
    fn logical(&self, off: usize) -> usize {
        if self.reversed {
            self.len() - 1 - off
        } else {
            off
        }
    }
}

/// A two-level doubly-linked tour over cities `0..n`.
#[derive(Debug, Clone)]
pub struct TwoLevelList {
    segments: Vec<Segment>,
    /// Segment ids in tour order.
    order: Vec<u32>,
    /// Position of each segment id in `order` (`u32::MAX` for retired ids).
    seg_pos: Vec<u32>,
    /// Tour index (mod n, arbitrary but consistent origin) of each
    /// segment's logical first city: walking `order`, each segment's
    /// start is the previous start plus the previous length (mod n).
    /// Gives O(1) city counts between two segment heads, which is how
    /// [`Self::flip`] picks the shorter side without walking segments.
    seg_start: Vec<u32>,
    city_seg: Vec<u32>,
    city_off: Vec<u32>,
    n: usize,
    /// Rebuild threshold: when `order.len()` exceeds this, group sizes
    /// have degenerated (too many splits) and the structure re-groups.
    max_segments: usize,
    /// Largest segment a neighbor merge may produce (2x the build-time
    /// target length).
    merge_cap: usize,
}

impl TwoLevelList {
    /// Build from a tour.
    pub fn from_tour(tour: &Tour) -> Self {
        Self::from_order_slice(tour.order())
    }

    /// Build from a visiting order.
    pub fn from_order_slice(order_slice: &[u32]) -> Self {
        let n = order_slice.len();
        assert!(n >= 3, "a tour needs at least 3 cities");
        let seg_len = target_seg_len(n);
        let nsegs = n.div_ceil(seg_len);
        let mut tl = TwoLevelList {
            segments: Vec::with_capacity(nsegs * 2),
            order: Vec::with_capacity(nsegs * 2),
            seg_pos: Vec::new(),
            seg_start: Vec::with_capacity(nsegs * 2),
            city_seg: vec![0; n],
            city_off: vec![0; n],
            n,
            // Rebuilds are O(n); with the in-place flip fast path the
            // directory grows slowly, so a roomy threshold (16x) trades
            // slightly longer handle runs for far fewer rebuilds —
            // measured fastest on 100k-200k first passes (8x and 32x
            // are both slower).
            max_segments: 16 * nsegs + 8,
            merge_cap: 2 * seg_len,
        };
        let mut start = 0u32;
        for chunk in order_slice.chunks(seg_len) {
            let id = tl.segments.len() as u32;
            for (off, &c) in chunk.iter().enumerate() {
                tl.city_seg[c as usize] = id;
                tl.city_off[c as usize] = off as u32;
            }
            tl.segments.push(Segment {
                cities: chunk.to_vec(),
                reversed: false,
            });
            tl.order.push(id);
            tl.seg_start.push(start);
            start += chunk.len() as u32;
        }
        tl.seg_pos = vec![u32::MAX; tl.segments.len()];
        for (pos, &id) in tl.order.iter().enumerate() {
            tl.seg_pos[id as usize] = pos as u32;
        }
        tl
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Tours are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current number of segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.order.len()
    }

    #[inline]
    fn seg(&self, id: u32) -> &Segment {
        &self.segments[id as usize]
    }

    /// Global logical coordinates of a city: `(segment position in
    /// order, logical index in segment)`.
    #[inline]
    fn coords(&self, c: usize) -> (usize, usize) {
        let id = self.city_seg[c];
        let seg = self.seg(id);
        (
            self.seg_pos[id as usize] as usize,
            seg.logical(self.city_off[c] as usize),
        )
    }

    /// Successor of city `c` in tour direction.
    ///
    /// Works in *physical* offsets: within a segment the successor is
    /// the adjacent array slot (direction given by `reversed`), so the
    /// common case is one branch and one load past the metadata lookups
    /// — this is the hottest operation in candidate scans.
    #[inline]
    pub fn next(&self, c: usize) -> usize {
        let id = self.city_seg[c] as usize;
        let seg = &self.segments[id];
        let off = self.city_off[c] as usize;
        if seg.reversed {
            if off > 0 {
                return seg.cities[off - 1] as usize;
            }
        } else if off + 1 < seg.cities.len() {
            return seg.cities[off + 1] as usize;
        }
        // Segment boundary: logical first city of the following segment.
        let pos = self.seg_pos[id] as usize + 1;
        let pos = if pos == self.order.len() { 0 } else { pos };
        let nseg = &self.segments[self.order[pos] as usize];
        let first = if nseg.reversed { nseg.cities.len() - 1 } else { 0 };
        nseg.cities[first] as usize
    }

    /// Predecessor of city `c` in tour direction.
    #[inline]
    pub fn prev(&self, c: usize) -> usize {
        let id = self.city_seg[c] as usize;
        let seg = &self.segments[id];
        let off = self.city_off[c] as usize;
        if seg.reversed {
            if off + 1 < seg.cities.len() {
                return seg.cities[off + 1] as usize;
            }
        } else if off > 0 {
            return seg.cities[off - 1] as usize;
        }
        // Segment boundary: logical last city of the preceding segment.
        let pos = self.seg_pos[id] as usize;
        let pos = if pos == 0 { self.order.len() - 1 } else { pos - 1 };
        let pseg = &self.segments[self.order[pos] as usize];
        let last = if pseg.reversed { 0 } else { pseg.cities.len() - 1 };
        pseg.cities[last] as usize
    }

    /// Whether walking forward from `a` meets `b` strictly before `c`
    /// (same semantics as [`Tour::between`]).
    #[inline]
    pub fn between(&self, a: usize, b: usize, c: usize) -> bool {
        let pa = self.coords(a);
        let pb = self.coords(b);
        let pc = self.coords(c);
        if pa <= pc {
            pa < pb && pb < pc
        } else {
            pb > pa || pb < pc
        }
    }

    /// Split the segment containing `c` so that `c` becomes the
    /// *logical first* city of its segment. No-op if it already is.
    ///
    /// Always detaches the *physical suffix* of the segment: the kept
    /// cities never move, so only the detached cities need metadata
    /// fixups (one loop, no offset re-shuffle of the kept side). For a
    /// forward segment the suffix is the logical run starting at `c`
    /// (new segment goes after); for a reversed one it is the logical
    /// prefix ending before `c` (new segment goes before).
    fn split_before(&mut self, c: usize) {
        self.split_before_protected(c, None);
    }

    /// [`Self::split_before`], refusing to merge the detached run into
    /// segment `protect`: a prepend-merge makes the run's first city the
    /// new logical head of the target, which would silently demote
    /// `protect`'s current head — and `flip` needs the head it
    /// established with the *first* split to stay put.
    fn split_before_protected(&mut self, c: usize, protect: Option<u32>) {
        let id = self.city_seg[c] as usize;
        let seg = &self.segments[id];
        let off = self.city_off[c] as usize;
        let (cut, before) = if seg.reversed {
            if off + 1 == seg.cities.len() {
                return; // already logical first
            }
            (off + 1, true)
        } else {
            if off == 0 {
                return;
            }
            (off, false)
        };
        let moved_len = self.segments[id].cities.len() - cut;
        let old_start = self.seg_start[id];
        let m = self.order.len();
        let pos_id = self.seg_pos[id] as usize;

        // Absorb the detached run into the logically adjacent neighbor
        // when orientations line up: in both directions the run lands at
        // the neighbor's *physical tail* in reverse physical order — an
        // O(|moved|) extend with no new segment, which keeps the segment
        // count (and thus flip's handle-run length) flat between
        // rebuilds.
        if m >= 2 {
            let npos = if before {
                if pos_id == 0 {
                    m - 1
                } else {
                    pos_id - 1
                }
            } else if pos_id + 1 == m {
                0
            } else {
                pos_id + 1
            };
            let nid = self.order[npos] as usize;
            let nseg = &self.segments[nid];
            // before → neighbor precedes and must be forward; otherwise
            // neighbor follows and must be reversed.
            let oriented = nseg.reversed != before;
            // A protected head must stay a segment head. A `before`
            // merge moves this segment's logical prefix — whose first
            // city is its head — into the neighbor's tail; the other
            // direction prepends the detached run ahead of the
            // neighbor's head. Either way the named segment's head
            // would stop being one.
            let safe = protect != Some(if before { id } else { nid } as u32);
            if oriented && safe && nseg.cities.len() + moved_len <= self.merge_cap {
                let TwoLevelList {
                    segments,
                    city_seg,
                    city_off,
                    ..
                } = self;
                let (i, j) = (id.min(nid), id.max(nid));
                let (lo, hi) = segments.split_at_mut(j);
                let (seg_ref, nseg_ref) = if id < nid {
                    (&mut lo[i], &mut hi[0])
                } else {
                    (&mut hi[0], &mut lo[i])
                };
                let base = nseg_ref.cities.len();
                nseg_ref.cities.extend(seg_ref.cities[cut..].iter().rev());
                seg_ref.cities.truncate(cut);
                for (k, &city) in nseg_ref.cities[base..].iter().enumerate() {
                    city_seg[city as usize] = nid as u32;
                    city_off[city as usize] = (base + k) as u32;
                }
                if before {
                    self.seg_start[id] = wrap_pos(old_start + moved_len as u32, self.n);
                } else {
                    self.seg_start[nid] = wrap_pos(old_start + cut as u32, self.n);
                }
                return;
            }
        }

        let moved = self.segments[id].cities.split_off(cut);
        let new_id = self.segments.len() as u32;
        for (o, &city) in moved.iter().enumerate() {
            self.city_seg[city as usize] = new_id;
            self.city_off[city as usize] = o as u32;
        }
        let reversed = self.segments[id].reversed;
        let new_start = if before {
            // New segment is the logical prefix: it takes the old start
            // and the old segment begins after it.
            self.seg_start[id] = wrap_pos(old_start + moved.len() as u32, self.n);
            old_start
        } else {
            // New segment is the logical suffix: it starts after the
            // kept cities.
            wrap_pos(old_start + cut as u32, self.n)
        };
        self.segments.push(Segment {
            cities: moved,
            reversed,
        });
        self.seg_start.push(new_start);
        let pos = self.seg_pos[id] as usize + usize::from(!before);
        self.order.insert(pos, new_id);
        self.seg_pos.push(pos as u32);
        for p in pos..self.order.len() {
            self.seg_pos[self.order[p] as usize] = p as u32;
        }
    }

    /// Reverse the logical path from city `a` to city `b` (inclusive,
    /// walking forward). Reverses whichever side of the cycle holds
    /// fewer *cities* (ties go to the forward path), the same rule as
    /// [`Tour::reverse_segment`] — so a sequence of identical flips
    /// keeps both representations in directed-orientation lockstep, not
    /// merely equal as undirected cycles.
    pub fn flip(&mut self, a: usize, b: usize) {
        // Fast path: the whole forward path a..b lies inside one
        // segment and is the smaller side of the cycle. Reverse the
        // cities in place (O(path), like the array tour but bounded by
        // the segment length) — no splits, no directory growth, so the
        // common short LK flips never force a rebuild.
        let id = self.city_seg[a] as usize;
        if id == self.city_seg[b] as usize {
            let seg = &self.segments[id];
            let (oa, ob) = (self.city_off[a] as usize, self.city_off[b] as usize);
            let (la, lb) = (seg.logical(oa), seg.logical(ob));
            if la <= lb && 2 * (lb - la + 1) <= self.n {
                let (plo, phi) = if seg.reversed { (ob, oa) } else { (oa, ob) };
                let seg = &mut self.segments[id];
                seg.cities[plo..=phi].reverse();
                for (k, &city) in seg.cities[plo..=phi].iter().enumerate() {
                    self.city_off[city as usize] = (plo + k) as u32;
                }
                return;
            }
        }
        // Make a the head of its segment and next(b) the head of the
        // following segment (i.e. b a segment tail).
        self.split_before(a);
        let after_b = self.next(b);
        if after_b == a {
            // Whole-tour flip: the array rule reverses the empty
            // complement, i.e. a no-op.
            return;
        }
        self.split_before_protected(after_b, Some(self.city_seg[a]));
        let pa = self.seg_pos[self.city_seg[a] as usize] as usize;
        let pb = self.seg_pos[self.city_seg[b] as usize] as usize;
        let m = self.order.len();
        // Run of segment handles covering the path a..b (cyclic, may
        // wrap). Both `a` and `after_b` are segment heads, so the city
        // count of the path a..b is the seg_start difference — O(1), no
        // walk over the run.
        let run = (pb + m - pa) % m + 1;
        let sa = self.seg_start[self.order[pa] as usize];
        let sab = self.seg_start[self.city_seg[after_b] as usize];
        let cities = wrap_pos(sab + self.n as u32 - sa, self.n) as usize;
        debug_assert!(cities > 0);
        let (start, count) = if cities * 2 <= self.n {
            (pa, run)
        } else {
            // Complement: pb+1 ..= pa-1.
            ((pb + 1) % m, m - run)
        };
        if count == 0 {
            return;
        }
        // Reverse the run of segment handles, toggle their flags, and
        // re-derive seg_pos/seg_start cumulatively from the run's first
        // tour index (unchanged by the reversal).
        let mut cum = self.seg_start[self.order[start] as usize];
        let (mut i, mut j) = (start, start + count - 1);
        while i < j {
            self.order.swap(i % m, j % m);
            i += 1;
            j -= 1;
        }
        for p in start..start + count {
            let p = p % m;
            let id = self.order[p] as usize;
            self.seg_pos[id] = p as u32;
            self.seg_start[id] = cum;
            cum = wrap_pos(cum + self.segments[id].cities.len() as u32, self.n);
            self.segments[id].reversed = !self.segments[id].reversed;
        }
        if self.order.len() > self.max_segments {
            self.rebuild();
        }
    }

    /// Re-group into balanced segments (amortizes split cost).
    fn rebuild(&mut self) {
        let flat = self.to_order();
        *self = TwoLevelList::from_order_slice(&flat);
    }

    /// Flatten to a visiting order.
    pub fn to_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n);
        for &id in &self.order {
            let seg = self.seg(id);
            if seg.reversed {
                out.extend(seg.cities.iter().rev());
            } else {
                out.extend(seg.cities.iter());
            }
        }
        out
    }

    /// Convert to an array tour.
    pub fn to_tour(&self) -> Tour {
        Tour::from_order(self.to_order())
    }

    /// Validate every internal invariant (tests / debug).
    pub fn check_invariants(&self) -> bool {
        if self.order.len() != self.order.iter().collect::<std::collections::HashSet<_>>().len() {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut total = 0usize;
        // seg_start must be cumulative (mod n) along `order`.
        let mut cum = self.seg_start[self.order[0] as usize];
        for (pos, &id) in self.order.iter().enumerate() {
            if self.seg_pos[id as usize] as usize != pos {
                return false;
            }
            if self.seg_start[id as usize] != cum {
                return false;
            }
            cum = wrap_pos(cum + self.seg(id).len() as u32, self.n);
            let seg = self.seg(id);
            if seg.cities.is_empty() {
                return false;
            }
            total += seg.len();
            for (off, &c) in seg.cities.iter().enumerate() {
                if seen[c as usize] {
                    return false;
                }
                seen[c as usize] = true;
                if self.city_seg[c as usize] != id || self.city_off[c as usize] as usize != off {
                    return false;
                }
            }
        }
        total == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn roundtrip(order: &[u32]) -> TwoLevelList {
        let tl = TwoLevelList::from_order_slice(order);
        assert!(tl.check_invariants());
        assert_eq!(tl.to_order(), order);
        tl
    }

    #[test]
    fn construction_roundtrip() {
        roundtrip(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Tour::random(137, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        assert_eq!(tl.to_order(), t.order());
        assert!(tl.check_invariants());
    }

    #[test]
    fn next_prev_match_array_tour() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = Tour::random(200, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        for c in 0..200 {
            assert_eq!(tl.next(c), t.next(c), "next({c})");
            assert_eq!(tl.prev(c), t.prev(c), "prev({c})");
        }
    }

    #[test]
    fn between_matches_array_tour() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = Tour::random(80, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        for _ in 0..500 {
            let a = rng.gen_range(0..80);
            let b = rng.gen_range(0..80);
            let c = rng.gen_range(0..80);
            assert_eq!(
                tl.between(a, b, c),
                t.between(a, b, c),
                "between({a},{b},{c})"
            );
        }
    }

    #[test]
    fn split_preserves_tour() {
        let mut tl = roundtrip(&(0..50u32).collect::<Vec<_>>());
        for c in [0usize, 7, 24, 49, 13] {
            tl.split_before(c);
            assert!(tl.check_invariants(), "after split_before({c})");
            assert_eq!(tl.to_order().len(), 50);
        }
        // Order as a cycle unchanged: normalize rotation.
        let order = tl.to_order();
        let zero = order.iter().position(|&c| c == 0).unwrap();
        let rotated: Vec<u32> = order[zero..].iter().chain(&order[..zero]).copied().collect();
        assert_eq!(rotated, (0..50u32).collect::<Vec<_>>());
    }

    /// Every flip reverses exactly the arc a→b of the list's *own*
    /// current orientation (flip is inherently orientation-dependent:
    /// both this structure and the array tour may flip orientation via
    /// shorter-side complement reversal, so the reference is re-derived
    /// from the list before each operation).
    #[test]
    fn flips_match_array_reference() {
        let n = 120usize;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for step in 0..300 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            // Reference: the list's own cycle, flipped in its own
            // orientation by the array implementation.
            let mut reference = tl.to_tour();
            reference.reverse_segment(reference.position(a), reference.position(b));
            tl.flip(a, b);
            assert!(tl.check_invariants(), "step {step}");
            let want: std::collections::HashSet<(usize, usize)> = reference
                .edges()
                .map(|(x, y)| (x.min(y), x.max(y)))
                .collect();
            let got: std::collections::HashSet<(usize, usize)> = tl
                .to_tour()
                .edges()
                .map(|(x, y)| (x.min(y), x.max(y)))
                .collect();
            assert_eq!(want, got, "cycle diverged at step {step} (flip {a},{b})");
        }
    }

    /// next/prev/between stay consistent with the flattened order after
    /// long flip sequences.
    #[test]
    fn queries_consistent_after_flips() {
        let n = 90usize;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        for _ in 0..120 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            tl.flip(a, b);
        }
        let flat = tl.to_tour();
        for c in 0..n {
            assert_eq!(tl.next(c), flat.next(c), "next({c})");
            assert_eq!(tl.prev(c), flat.prev(c), "prev({c})");
        }
        for _ in 0..300 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            assert_eq!(tl.between(a, b, c), flat.between(a, b, c));
        }
    }

    #[test]
    fn rebuild_keeps_cycle() {
        let n = 64usize;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        // Force many splits to trigger a rebuild.
        for _ in 0..200 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            tl.flip(a, b);
        }
        assert!(tl.check_invariants());
        assert!(
            tl.segment_count() <= tl.max_segments,
            "rebuild never triggered: {} segments",
            tl.segment_count()
        );
        // Still a permutation.
        let mut order = tl.to_order();
        order.sort_unstable();
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn segment_count_scales_with_sqrt_n() {
        let n = 10_000usize;
        let tl = TwoLevelList::from_order_slice(&(0..n as u32).collect::<Vec<_>>());
        let s = tl.segment_count();
        assert!((50..=200).contains(&s), "unexpected segment count {s}");
    }
}
