//! TSP instances: a named set of cities plus an edge-weight function.

use serde::{Deserialize, Serialize};

use crate::metric::Metric;

/// A city location in the plane (or a DDD.MM lat/lon pair for `GEO`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other` (unrounded, for spatial
    /// index comparisons only — never for tour lengths).
    #[inline(always)]
    pub fn sq_dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A symmetric TSP instance.
///
/// Cities are identified by dense indices `0..n`. Construction validates
/// nothing beyond basic shape; distance semantics come from the
/// [`Metric`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    name: String,
    points: Vec<Point>,
    metric: Metric,
    /// Length of a known optimal tour, when one exists (from TSPLIB
    /// `COMMENT` conventions, from generator construction, or recorded
    /// as a surrogate from a calibration run).
    known_optimum: Option<i64>,
}

impl Instance {
    /// Create a geometric instance from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is [`Metric::Explicit`] (use
    /// [`Instance::explicit`]) or if fewer than 3 cities are given.
    pub fn new(name: impl Into<String>, points: Vec<Point>, metric: Metric) -> Self {
        assert!(
            metric.is_geometric(),
            "use Instance::explicit for matrix instances"
        );
        assert!(points.len() >= 3, "a TSP instance needs at least 3 cities");
        Instance {
            name: name.into(),
            points,
            metric,
            known_optimum: None,
        }
    }

    /// Create an instance from an explicit full symmetric matrix
    /// (row-major, `n * n` entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n * n` with `n >= 3`, or asymmetric.
    pub fn explicit(name: impl Into<String>, matrix: Vec<i64>, n: usize) -> Self {
        assert!(n >= 3, "a TSP instance needs at least 3 cities");
        assert_eq!(matrix.len(), n * n, "matrix must be n*n row-major");
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(
                    matrix[i * n + j],
                    matrix[j * n + i],
                    "explicit matrix must be symmetric"
                );
            }
        }
        // Placeholder coordinates keep geometric code paths (spatial
        // indexes) from being used accidentally: is_geometric() is false.
        Instance {
            name: name.into(),
            points: vec![Point::default(); n],
            metric: Metric::Explicit(matrix, n),
            known_optimum: None,
        }
    }

    /// Instance name (TSPLIB `NAME` or generator-assigned).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cities `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the instance is empty (never true for valid instances).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The coordinates of city `i`.
    #[inline(always)]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// All coordinates.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The edge-weight function.
    #[inline]
    pub fn metric(&self) -> &Metric {
        &self.metric
    }

    /// Distance between cities `i` and `j`.
    #[inline(always)]
    pub fn dist(&self, i: usize, j: usize) -> i64 {
        match &self.metric {
            Metric::Explicit(m, n) => m[i * n + j],
            m => m.distance(self.points[i], self.points[j]),
        }
    }

    /// Known (or surrogate best-known) optimal tour length, if recorded.
    #[inline]
    pub fn known_optimum(&self) -> Option<i64> {
        self.known_optimum
    }

    /// Record a known optimal tour length (builder style).
    pub fn with_known_optimum(mut self, opt: i64) -> Self {
        self.known_optimum = Some(opt);
        self
    }

    /// Record a known optimal tour length in place.
    pub fn set_known_optimum(&mut self, opt: i64) {
        self.known_optimum = Some(opt);
    }

    /// Excess of `length` over the known optimum as a fraction
    /// (e.g. `0.001` = 0.1 % above optimum). `None` when no optimum is
    /// recorded.
    pub fn excess(&self, length: i64) -> Option<f64> {
        self.known_optimum
            .map(|opt| (length - opt) as f64 / opt as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        Instance::new(
            "tiny",
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(3.0, 4.0),
            ],
            Metric::Euc2d,
        )
    }

    #[test]
    fn basic_accessors() {
        let inst = tiny();
        assert_eq!(inst.name(), "tiny");
        assert_eq!(inst.len(), 3);
        assert!(!inst.is_empty());
        assert_eq!(inst.dist(0, 1), 3);
        assert_eq!(inst.dist(1, 2), 4);
        assert_eq!(inst.dist(0, 2), 5);
        assert_eq!(inst.dist(2, 0), 5);
    }

    #[test]
    fn known_optimum_and_excess() {
        let inst = tiny().with_known_optimum(12);
        assert_eq!(inst.known_optimum(), Some(12));
        let e = inst.excess(15).unwrap();
        assert!((e - 0.25).abs() < 1e-12);
        assert_eq!(inst.excess(12), Some(0.0));
    }

    #[test]
    fn explicit_instance() {
        #[rustfmt::skip]
        let m = vec![
            0, 1, 2,
            1, 0, 3,
            2, 3, 0,
        ];
        let inst = Instance::explicit("m3", m, 3);
        assert_eq!(inst.dist(0, 2), 2);
        assert_eq!(inst.dist(2, 1), 3);
        assert!(!inst.metric().is_geometric());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let m = vec![0, 1, 9, 2, 0, 3, 2, 3, 0];
        Instance::explicit("bad", m, 3);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_small_rejected() {
        Instance::new("p2", vec![Point::default(); 2], Metric::Euc2d);
    }

    #[test]
    fn sq_dist() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.sq_dist(&b), 25.0);
    }
}
