//! TSPLIB 95 file format support.
//!
//! Parses the subset of the format needed for symmetric instances:
//! `NODE_COORD_SECTION` with the geometric edge-weight types
//! (`EUC_2D`, `CEIL_2D`, `ATT`, `GEO`, `MAX_2D`, `MAN_2D`) and
//! `EDGE_WEIGHT_SECTION` with the common explicit layouts
//! (`FULL_MATRIX`, `UPPER_ROW`, `LOWER_ROW`, `UPPER_DIAG_ROW`,
//! `LOWER_DIAG_ROW`). Also reads and writes `.tour` files.
//!
//! With this parser the real paper testbed (fl1577, pr2392, …,
//! pla85900) drops into every experiment unchanged whenever the files
//! are available; the synthetic generators of [`crate::generate`] are
//! only the offline stand-ins.

use std::fmt::Write as _;
use std::path::Path;

use crate::instance::{Instance, Point};
use crate::metric::Metric;
use crate::tour::Tour;
use crate::{Error, Result};

/// Parse a TSPLIB instance from a string.
pub fn parse_instance(text: &str) -> Result<Instance> {
    let mut name = String::from("unnamed");
    let mut dimension: Option<usize> = None;
    let mut edge_weight_type: Option<String> = None;
    let mut edge_weight_format: Option<String> = None;
    let mut coords: Vec<(usize, Point)> = Vec::new();
    let mut weights: Vec<i64> = Vec::new();
    let mut known_optimum: Option<i64> = None;

    #[derive(PartialEq)]
    enum Section {
        Header,
        NodeCoords,
        EdgeWeights,
        Done,
    }
    let mut section = Section::Header;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        // Section keywords can appear after data sections too.
        let upper = line.to_ascii_uppercase();
        if upper == "EOF" {
            section = Section::Done;
            continue;
        }
        if upper.starts_with("NODE_COORD_SECTION") {
            section = Section::NodeCoords;
            continue;
        }
        if upper.starts_with("EDGE_WEIGHT_SECTION") {
            section = Section::EdgeWeights;
            continue;
        }
        if upper.starts_with("DISPLAY_DATA_SECTION") || upper.starts_with("FIXED_EDGES_SECTION") {
            // Skip these sections entirely by flipping to Header mode and
            // relying on the key:value check below to ignore bare numbers.
            section = Section::Done;
            continue;
        }
        match section {
            Section::Header => {
                let (key, value) = match line.split_once(':') {
                    Some((k, v)) => (k.trim().to_ascii_uppercase(), v.trim().to_string()),
                    None => (upper.clone(), String::new()),
                };
                match key.as_str() {
                    "NAME" => name = value,
                    "TYPE" if !value.to_ascii_uppercase().starts_with("TSP") => {
                        return Err(Error::Parse(
                            format!("unsupported TYPE {value:?} (only symmetric TSP)"),
                            Some(lineno),
                        ));
                    }
                    "TYPE" => {}
                    "DIMENSION" => {
                        dimension = Some(value.parse().map_err(|_| {
                            Error::Parse(format!("bad DIMENSION {value:?}"), Some(lineno))
                        })?)
                    }
                    "EDGE_WEIGHT_TYPE" => edge_weight_type = Some(value.to_ascii_uppercase()),
                    "EDGE_WEIGHT_FORMAT" => edge_weight_format = Some(value.to_ascii_uppercase()),
                    "COMMENT" => {
                        // Convention: "COMMENT : optimum 12345" records a
                        // known optimal length.
                        let lower = value.to_ascii_lowercase();
                        if let Some(rest) = lower.strip_prefix("optimum") {
                            if let Ok(v) = rest.trim().parse::<i64>() {
                                known_optimum = Some(v);
                            }
                        }
                    }
                    "CAPACITY" | "NODE_COORD_TYPE" | "DISPLAY_DATA_TYPE" => {}
                    _ => {}
                }
            }
            Section::NodeCoords => {
                let mut it = line.split_whitespace();
                let idx: usize = it
                    .next()
                    .ok_or_else(|| Error::Parse("missing node index".into(), Some(lineno)))?
                    .parse()
                    .map_err(|_| Error::Parse("bad node index".into(), Some(lineno)))?;
                let x: f64 = it
                    .next()
                    .ok_or_else(|| Error::Parse("missing x".into(), Some(lineno)))?
                    .parse()
                    .map_err(|_| Error::Parse("bad x coordinate".into(), Some(lineno)))?;
                let y: f64 = it
                    .next()
                    .ok_or_else(|| Error::Parse("missing y".into(), Some(lineno)))?
                    .parse()
                    .map_err(|_| Error::Parse("bad y coordinate".into(), Some(lineno)))?;
                coords.push((idx, Point::new(x, y)));
            }
            Section::EdgeWeights => {
                for tok in line.split_whitespace() {
                    weights.push(tok.parse().map_err(|_| {
                        Error::Parse(format!("bad weight {tok:?}"), Some(lineno))
                    })?);
                }
            }
            Section::Done => {}
        }
    }

    let n = dimension.ok_or_else(|| Error::Parse("missing DIMENSION".into(), None))?;
    let ewt = edge_weight_type.unwrap_or_else(|| "EUC_2D".into());

    let mut inst = if ewt == "EXPLICIT" {
        let fmt = edge_weight_format
            .ok_or_else(|| Error::Parse("EXPLICIT requires EDGE_WEIGHT_FORMAT".into(), None))?;
        let matrix = expand_matrix(&fmt, &weights, n)?;
        Instance::explicit(name, matrix, n)
    } else {
        if coords.len() != n {
            return Err(Error::Parse(
                format!("DIMENSION {n} but {} coordinate lines", coords.len()),
                None,
            ));
        }
        // TSPLIB indices are 1-based but some files are 0-based; order by
        // the given index to be safe.
        let mut pts = vec![Point::default(); n];
        let base = coords.iter().map(|&(i, _)| i).min().unwrap_or(1);
        for (i, p) in coords {
            let slot = i - base;
            if slot >= n {
                return Err(Error::Parse(format!("node index {i} out of range"), None));
            }
            pts[slot] = p;
        }
        let metric = match ewt.as_str() {
            "EUC_2D" => Metric::Euc2d,
            "CEIL_2D" => Metric::Ceil2d,
            "ATT" => Metric::Att,
            "GEO" => Metric::Geo,
            "MAX_2D" => Metric::Max2d,
            "MAN_2D" => Metric::Man2d,
            other => {
                return Err(Error::Parse(
                    format!("unsupported EDGE_WEIGHT_TYPE {other}"),
                    None,
                ))
            }
        };
        Instance::new(name, pts, metric)
    };
    if let Some(opt) = known_optimum {
        inst.set_known_optimum(opt);
    }
    Ok(inst)
}

/// Expand a packed TSPLIB weight list into a full row-major matrix.
fn expand_matrix(fmt: &str, w: &[i64], n: usize) -> Result<Vec<i64>> {
    let mut m = vec![0i64; n * n];
    let expect = |want: usize| -> Result<()> {
        if w.len() != want {
            Err(Error::Parse(
                format!("{fmt}: expected {want} weights, got {}", w.len()),
                None,
            ))
        } else {
            Ok(())
        }
    };
    match fmt {
        "FULL_MATRIX" => {
            expect(n * n)?;
            m.copy_from_slice(w);
        }
        "UPPER_ROW" => {
            // Row i lists d(i, i+1..n), no diagonal.
            expect(n * (n - 1) / 2)?;
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    m[i * n + j] = w[k];
                    m[j * n + i] = w[k];
                    k += 1;
                }
            }
        }
        "LOWER_ROW" => {
            expect(n * (n - 1) / 2)?;
            let mut k = 0;
            for i in 1..n {
                for j in 0..i {
                    m[i * n + j] = w[k];
                    m[j * n + i] = w[k];
                    k += 1;
                }
            }
        }
        "UPPER_DIAG_ROW" => {
            expect(n * (n + 1) / 2)?;
            let mut k = 0;
            for i in 0..n {
                for j in i..n {
                    m[i * n + j] = w[k];
                    m[j * n + i] = w[k];
                    k += 1;
                }
            }
        }
        "LOWER_DIAG_ROW" => {
            expect(n * (n + 1) / 2)?;
            let mut k = 0;
            for i in 0..n {
                for j in 0..=i {
                    m[i * n + j] = w[k];
                    m[j * n + i] = w[k];
                    k += 1;
                }
            }
        }
        other => {
            return Err(Error::Parse(
                format!("unsupported EDGE_WEIGHT_FORMAT {other}"),
                None,
            ))
        }
    }
    Ok(m)
}

/// Read an instance from a `.tsp` file.
pub fn read_instance(path: impl AsRef<Path>) -> Result<Instance> {
    parse_instance(&std::fs::read_to_string(path)?)
}

/// Serialize a geometric instance to TSPLIB format.
pub fn write_instance(inst: &Instance) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "NAME : {}", inst.name());
    let _ = writeln!(s, "TYPE : TSP");
    if let Some(opt) = inst.known_optimum() {
        let _ = writeln!(s, "COMMENT : optimum {opt}");
    }
    let _ = writeln!(s, "DIMENSION : {}", inst.len());
    let _ = writeln!(s, "EDGE_WEIGHT_TYPE : {}", inst.metric().tsplib_name());
    match inst.metric() {
        Metric::Explicit(m, n) => {
            let _ = writeln!(s, "EDGE_WEIGHT_FORMAT : FULL_MATRIX");
            let _ = writeln!(s, "EDGE_WEIGHT_SECTION");
            for i in 0..*n {
                let row: Vec<String> =
                    (0..*n).map(|j| m[i * n + j].to_string()).collect();
                let _ = writeln!(s, "{}", row.join(" "));
            }
        }
        _ => {
            let _ = writeln!(s, "NODE_COORD_SECTION");
            for (i, p) in inst.points().iter().enumerate() {
                let _ = writeln!(s, "{} {} {}", i + 1, p.x, p.y);
            }
        }
    }
    s.push_str("EOF\n");
    s
}

/// Parse a TSPLIB `.tour` file (1-based city indices, `-1` terminator).
pub fn parse_tour(text: &str, n: usize) -> Result<Tour> {
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut in_section = false;
    for line in text.lines() {
        let line = line.trim();
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("TOUR_SECTION") {
            in_section = true;
            continue;
        }
        if !in_section || line.is_empty() {
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| Error::Parse(format!("bad tour entry {tok:?}"), None))?;
            if v == -1 {
                in_section = false;
                break;
            }
            if v < 1 || v as usize > n {
                return Err(Error::Parse(format!("tour entry {v} out of 1..={n}"), None));
            }
            order.push((v - 1) as u32);
        }
    }
    if order.len() != n {
        return Err(Error::Parse(
            format!("tour has {} cities, expected {n}", order.len()),
            None,
        ));
    }
    Ok(Tour::from_order(order))
}

/// Serialize a tour to TSPLIB `.tour` format.
pub fn write_tour(name: &str, tour: &Tour) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "NAME : {name}");
    let _ = writeln!(s, "TYPE : TOUR");
    let _ = writeln!(s, "DIMENSION : {}", tour.len());
    let _ = writeln!(s, "TOUR_SECTION");
    for &c in tour.order() {
        let _ = writeln!(s, "{}", c + 1);
    }
    s.push_str("-1\nEOF\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
NAME : demo5
COMMENT : optimum 40
TYPE : TSP
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 10.0 0.0
3 10.0 10.0
4 0.0 10.0
EOF
";

    #[test]
    fn parse_geometric() {
        let inst = parse_instance(SAMPLE).unwrap();
        assert_eq!(inst.name(), "demo5");
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.dist(0, 1), 10);
        assert_eq!(inst.dist(0, 2), 14);
        assert_eq!(inst.known_optimum(), Some(40));
    }

    #[test]
    fn roundtrip_geometric() {
        let inst = parse_instance(SAMPLE).unwrap();
        let text = write_instance(&inst);
        let again = parse_instance(&text).unwrap();
        assert_eq!(again.len(), inst.len());
        assert_eq!(again.dist(1, 3), inst.dist(1, 3));
        assert_eq!(again.known_optimum(), Some(40));
    }

    #[test]
    fn parse_explicit_full_matrix() {
        let text = "\
NAME : m3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : FULL_MATRIX
EDGE_WEIGHT_SECTION
0 1 2
1 0 3
2 3 0
EOF
";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.dist(0, 2), 2);
        assert_eq!(inst.dist(1, 2), 3);
    }

    #[test]
    fn parse_upper_row() {
        let text = "\
NAME : u3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : UPPER_ROW
EDGE_WEIGHT_SECTION
1 2
3
EOF
";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.dist(0, 1), 1);
        assert_eq!(inst.dist(0, 2), 2);
        assert_eq!(inst.dist(1, 2), 3);
        assert_eq!(inst.dist(2, 1), 3);
    }

    #[test]
    fn parse_lower_diag_row() {
        let text = "\
NAME : l3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
4 0
5 6 0
EOF
";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.dist(1, 0), 4);
        assert_eq!(inst.dist(2, 0), 5);
        assert_eq!(inst.dist(2, 1), 6);
    }

    #[test]
    fn missing_dimension_errors() {
        let err = parse_instance("NAME : x\nTYPE : TSP\nEOF\n").unwrap_err();
        assert!(matches!(err, Error::Parse(..)));
    }

    #[test]
    fn atsp_rejected() {
        let err = parse_instance("NAME : x\nTYPE : ATSP\nDIMENSION : 3\nEOF\n").unwrap_err();
        assert!(err.to_string().contains("unsupported TYPE"));
    }

    #[test]
    fn wrong_coord_count_errors() {
        let text = "\
DIMENSION : 5
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0 0
2 1 1
EOF
";
        assert!(parse_instance(text).is_err());
    }

    #[test]
    fn tour_roundtrip() {
        let t = Tour::from_order(vec![2, 0, 3, 1]);
        let text = write_tour("t4", &t);
        let back = parse_tour(&text, 4).unwrap();
        assert_eq!(back.order(), t.order());
    }

    #[test]
    fn tour_out_of_range_errors() {
        let text = "TOUR_SECTION\n1\n2\n9\n-1\n";
        assert!(parse_tour(text, 3).is_err());
    }

    #[test]
    fn tour_wrong_length_errors() {
        let text = "TOUR_SECTION\n1\n2\n-1\n";
        assert!(parse_tour(text, 3).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tsp_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.tsp");
        std::fs::write(&path, SAMPLE).unwrap();
        let inst = read_instance(&path).unwrap();
        assert_eq!(inst.len(), 4);
        std::fs::remove_file(&path).ok();
    }
}
