//! A 2-D k-d tree over city coordinates.
//!
//! Used for nearest-neighbor queries on non-uniform instances (clustered
//! `C`-style and drill-plate `fl`-style data) where the uniform grid of
//! [`crate::grid`] degenerates, and by the Quick-Borůvka and greedy tour
//! constructions which need *filtered* nearest-neighbor queries
//! ("nearest city that still has tour degree < 2").
//!
//! The tree is built once over index arrays (no per-node allocation,
//! perf-book idiom) and is immutable; deletions needed by constructions
//! are handled by caller-supplied `skip` predicates.

use crate::instance::{Instance, Point};

/// Flat k-d tree node. Leaves hold a range of the permuted index array.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Splitting coordinate value.
    split: f64,
    /// Splitting axis: 0 = x, 1 = y. Leaves use `u8::MAX`.
    axis: u8,
    /// Left/lo child index in `nodes`, or start of leaf range.
    lo: u32,
    /// Right/hi child index in `nodes`, or end of leaf range.
    hi: u32,
}

const LEAF: u8 = u8::MAX;
const LEAF_SIZE: usize = 8;

/// An immutable 2-D k-d tree over the cities of a geometric instance.
#[derive(Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Permutation of city indices; leaves reference contiguous ranges.
    idx: Vec<u32>,
    pts: Vec<Point>,
}

impl KdTree {
    /// Build the tree over all cities.
    ///
    /// # Panics
    ///
    /// Panics if the instance metric is not geometric.
    pub fn build(inst: &Instance) -> Self {
        assert!(
            inst.metric().is_geometric(),
            "k-d tree requires coordinates"
        );
        let pts: Vec<Point> = inst.points().to_vec();
        let mut idx: Vec<u32> = (0..pts.len() as u32).collect();
        let mut nodes = Vec::with_capacity(2 * pts.len() / LEAF_SIZE + 2);
        let n = pts.len();
        Self::build_rec(&pts, &mut idx, 0, n, &mut nodes);
        KdTree { nodes, idx, pts }
    }

    fn build_rec(pts: &[Point], idx: &mut [u32], start: usize, end: usize, nodes: &mut Vec<Node>) -> u32 {
        let me = nodes.len() as u32;
        if end - start <= LEAF_SIZE {
            nodes.push(Node {
                split: 0.0,
                axis: LEAF,
                lo: start as u32,
                hi: end as u32,
            });
            return me;
        }
        // Split on the wider axis at the median.
        let slice = &mut idx[start..end];
        let (mut min_x, mut max_x, mut min_y, mut max_y) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for &i in slice.iter() {
            let p = pts[i as usize];
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let axis = if max_x - min_x >= max_y - min_y { 0u8 } else { 1u8 };
        let mid = slice.len() / 2;
        let key = |i: u32| -> f64 {
            let p = pts[i as usize];
            if axis == 0 {
                p.x
            } else {
                p.y
            }
        };
        slice.select_nth_unstable_by(mid, |&a, &b| key(a).partial_cmp(&key(b)).unwrap());
        let split = key(slice[mid]);
        nodes.push(Node {
            split,
            axis,
            lo: 0,
            hi: 0,
        });
        let lo = Self::build_rec(pts, idx, start, start + mid, nodes);
        let hi = Self::build_rec(pts, idx, start + mid, end, nodes);
        nodes[me as usize].lo = lo;
        nodes[me as usize].hi = hi;
        me
    }

    /// The nearest city to `q` for which `skip` returns `false`
    /// (squared-Euclidean metric). Returns `None` when every city is
    /// skipped.
    ///
    /// Typical uses: `skip = |c| c == query` for plain NN, or
    /// `skip = |c| degree[c] >= 2 || c == query` inside Quick-Borůvka.
    pub fn nearest_filtered<F: FnMut(usize) -> bool>(&self, q: Point, mut skip: F) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        self.search(0, q, &mut best, &mut skip);
        best.map(|(_, c)| c)
    }

    /// The nearest city to the point `q` excluding city `exclude`.
    pub fn nearest_excluding(&self, q: Point, exclude: usize) -> Option<usize> {
        self.nearest_filtered(q, |c| c == exclude)
    }

    fn search<F: FnMut(usize) -> bool>(
        &self,
        node: u32,
        q: Point,
        best: &mut Option<(f64, usize)>,
        skip: &mut F,
    ) {
        let n = self.nodes[node as usize];
        if n.axis == LEAF {
            for &c in &self.idx[n.lo as usize..n.hi as usize] {
                let c = c as usize;
                if skip(c) {
                    continue;
                }
                let d = self.pts[c].sq_dist(&q);
                if best.is_none_or(|(bd, _)| d < bd) {
                    *best = Some((d, c));
                }
            }
            return;
        }
        let qv = if n.axis == 0 { q.x } else { q.y };
        let (near, far) = if qv <= n.split { (n.lo, n.hi) } else { (n.hi, n.lo) };
        self.search(near, q, best, skip);
        let plane = qv - n.split;
        if best.is_none_or(|(bd, _)| plane * plane < bd) {
            self.search(far, q, best, skip);
        }
    }

    /// The `k` nearest cities to city `query` (excluding itself),
    /// closest first. Exact, with ties broken by city id: the result is
    /// the first `k` entries of all cities sorted by `(distance, id)` —
    /// the same order every candidate-list builder uses, so fixed-seed
    /// runs do not depend on which spatial index built the lists.
    pub fn k_nearest(&self, query: usize, k: usize) -> Vec<u32> {
        let q = self.pts[query];
        // Max-heap of (dist, city) capped at k.
        let mut heap: std::collections::BinaryHeap<(OrdF64, u32)> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        self.knn_search(0, q, query, k, &mut heap);
        let mut out: Vec<(OrdF64, u32)> = heap.into_vec();
        out.sort();
        out.into_iter().map(|(_, c)| c).collect()
    }

    fn knn_search(
        &self,
        node: u32,
        q: Point,
        query: usize,
        k: usize,
        heap: &mut std::collections::BinaryHeap<(OrdF64, u32)>,
    ) {
        let n = self.nodes[node as usize];
        if n.axis == LEAF {
            for &c in &self.idx[n.lo as usize..n.hi as usize] {
                if c as usize == query {
                    continue;
                }
                let d = self.pts[c as usize].sq_dist(&q);
                let cand = (OrdF64(d), c);
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(&top) = heap.peek() {
                    // Full-tuple comparison: at equal distance the lower
                    // id wins, independent of traversal order.
                    if cand < top {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            return;
        }
        let qv = if n.axis == 0 { q.x } else { q.y };
        let (near, far) = if qv <= n.split { (n.lo, n.hi) } else { (n.hi, n.lo) };
        self.knn_search(near, q, query, k, heap);
        let plane = qv - n.split;
        // `<=`: a far-side city at exactly the current worst distance can
        // still displace it on id, so equality must not prune.
        let need_far = heap.len() < k
            || heap
                .peek()
                .is_none_or(|&(OrdF64(worst), _)| plane * plane <= worst);
        if need_far {
            self.knn_search(far, q, query, k, heap);
        }
    }
}

/// Total-ordered f64 wrapper for heap use (distances are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("distance is never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Instance::new("rand", pts, Metric::Euc2d)
    }

    #[test]
    fn nearest_matches_brute_force() {
        let inst = random_instance(300, 11);
        let tree = KdTree::build(&inst);
        for q in [0usize, 13, 150, 299] {
            let got = tree.nearest_excluding(inst.point(q), q).unwrap();
            let qp = inst.point(q);
            let brute = (0..300)
                .filter(|&c| c != q)
                .min_by(|&a, &b| {
                    inst.point(a)
                        .sq_dist(&qp)
                        .partial_cmp(&inst.point(b).sq_dist(&qp))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(
                inst.point(got).sq_dist(&qp),
                inst.point(brute).sq_dist(&qp),
                "query {q}"
            );
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let inst = random_instance(250, 22);
        let tree = KdTree::build(&inst);
        for q in [0usize, 42, 249] {
            let got = tree.k_nearest(q, 10);
            let qp = inst.point(q);
            let mut brute: Vec<u32> = (0..250u32).filter(|&c| c as usize != q).collect();
            brute.sort_by(|&a, &b| {
                inst.point(a as usize)
                    .sq_dist(&qp)
                    .partial_cmp(&inst.point(b as usize).sq_dist(&qp))
                    .unwrap()
            });
            brute.truncate(10);
            let gd: Vec<f64> = got.iter().map(|&c| inst.point(c as usize).sq_dist(&qp)).collect();
            let bd: Vec<f64> = brute.iter().map(|&c| inst.point(c as usize).sq_dist(&qp)).collect();
            assert_eq!(gd, bd, "query {q}");
        }
    }

    #[test]
    fn knn_ties_broken_by_city_id() {
        // A lattice has massive distance ties (4 cities at d, 4 at d√2,
        // ...); the ids returned must be exactly the (dist, id)-sorted
        // prefix, not whatever order the tree traversal happened to
        // find them in.
        let mut pts = Vec::new();
        for y in 0..12 {
            for x in 0..12 {
                pts.push(Point::new(x as f64 * 10.0, y as f64 * 10.0));
            }
        }
        let inst = Instance::new("lattice", pts, Metric::Euc2d);
        let tree = KdTree::build(&inst);
        for q in 0..144usize {
            let qp = inst.point(q);
            let mut brute: Vec<u32> = (0..144u32).filter(|&c| c as usize != q).collect();
            brute.sort_by(|&a, &b| {
                inst.point(a as usize)
                    .sq_dist(&qp)
                    .partial_cmp(&inst.point(b as usize).sq_dist(&qp))
                    .unwrap()
                    .then(a.cmp(&b))
            });
            brute.truncate(6);
            assert_eq!(tree.k_nearest(q, 6), brute, "query {q}");
        }
    }

    #[test]
    fn filtered_search_skips() {
        let inst = random_instance(100, 3);
        let tree = KdTree::build(&inst);
        let q = inst.point(0);
        let first = tree.nearest_excluding(q, 0).unwrap();
        let second = tree.nearest_filtered(q, |c| c == 0 || c == first).unwrap();
        assert_ne!(first, second);
        let qd1 = inst.point(first).sq_dist(&q);
        let qd2 = inst.point(second).sq_dist(&q);
        assert!(qd2 >= qd1);
    }

    #[test]
    fn all_skipped_returns_none() {
        let inst = random_instance(50, 4);
        let tree = KdTree::build(&inst);
        assert!(tree.nearest_filtered(inst.point(0), |_| true).is_none());
    }

    #[test]
    fn clustered_data() {
        // Two tight clusters far apart; nearest neighbors stay in-cluster.
        let mut pts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            pts.push(Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)));
        }
        for _ in 0..50 {
            pts.push(Point::new(
                rng.gen_range(10_000.0..10_010.0),
                rng.gen_range(0.0..10.0),
            ));
        }
        let inst = Instance::new("two-clusters", pts, Metric::Euc2d);
        let tree = KdTree::build(&inst);
        for q in 0..50 {
            for c in tree.k_nearest(q, 5) {
                assert!((c as usize) < 50, "neighbor of cluster-0 city in cluster 1");
            }
        }
    }
}
