//! Representation-independent tour operations.
//!
//! [`TourOps`] is the hot-path interface shared by the array [`Tour`]
//! and the [`TwoLevelList`]: O(1)-ish `next`/`prev`/`between` queries
//! plus `flip`, the single mutation primitive that every
//! 2-opt-decomposable move (LK steps, Or-opt reinsertion, the
//! double-bridge kick) reduces to. Local search written against this
//! trait runs unchanged on either structure; the driver picks the
//! representation by instance size (array flips are O(n), two-level
//! flips O(√n)).
//!
//! Both implementations choose the reversed side of a `flip` by the
//! same city-count rule (reverse the side with fewer cities, ties to
//! the forward path). That makes identical move traces keep the two
//! structures in *directed-orientation lockstep* — not merely equal as
//! undirected cycles — which is what the cross-representation property
//! tests in `crates/lk` assert.

use crate::instance::Instance;
use crate::tour::Tour;
use crate::twolevel::TwoLevelList;

/// Hot-path tour operations, implemented by [`Tour`] and
/// [`TwoLevelList`].
pub trait TourOps {
    /// Number of cities.
    fn len(&self) -> usize;

    /// Tours are never empty (both representations require n >= 3).
    fn is_empty(&self) -> bool {
        false
    }

    /// Successor of city `c` in tour direction.
    fn next(&self, c: usize) -> usize;

    /// Predecessor of city `c` in tour direction.
    fn prev(&self, c: usize) -> usize;

    /// Whether walking forward from `a` meets `b` strictly before `c`.
    fn between(&self, a: usize, b: usize, c: usize) -> bool;

    /// Reverse the directed path `a … b` (inclusive, walking forward).
    ///
    /// Implementations reverse whichever side of the cycle holds fewer
    /// cities, with ties going to the forward path — exactly the rule
    /// of [`Tour::reverse_segment`] — so that identical flip sequences
    /// keep every implementation on the same directed cycle.
    fn flip(&mut self, a: usize, b: usize);

    /// Flatten to a visiting order, canonically: the walk starts at
    /// city 0 and follows `next`. Canonicalization makes the output
    /// depend only on the directed cycle, never on an implementation's
    /// internal linearization, so orders from different representations
    /// of the same tour compare equal.
    fn to_order(&self) -> Vec<u32> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let mut c = 0usize;
        for _ in 0..n {
            out.push(c as u32);
            c = self.next(c);
        }
        out
    }

    /// Whether the undirected edge `(a, b)` is on the tour.
    #[inline]
    fn has_edge(&self, a: usize, b: usize) -> bool {
        self.next(a) == b || self.prev(a) == b
    }

    /// Exact tour length under the instance metric, by walking
    /// successor links once around the cycle.
    fn tour_length(&self, inst: &Instance) -> i64 {
        assert_eq!(inst.len(), self.len(), "instance/tour size mismatch");
        let mut total = 0i64;
        let mut c = 0usize;
        loop {
            let d = self.next(c);
            total += inst.dist(c, d);
            c = d;
            if c == 0 {
                return total;
            }
        }
    }
}

/// A [`TourOps`] implementation that can be constructed from and
/// converted back to a plain visiting order — what the Chained-LK
/// driver needs to move tours across the representation boundary.
pub trait TourRep: TourOps + Clone {
    /// Short human-readable name ("array" / "twolevel"), used by the
    /// perf experiment and diagnostics.
    const NAME: &'static str;

    /// Build from a visiting order (must be a permutation of `0..n`).
    fn from_order_slice(order: &[u32]) -> Self;

    /// Build from an array tour.
    fn from_tour(tour: &Tour) -> Self {
        Self::from_order_slice(tour.order())
    }

    /// Convert to an array tour (canonical rotation, like
    /// [`TourOps::to_order`]).
    fn to_tour(&self) -> Tour {
        Tour::from_order(self.to_order())
    }
}

impl TourOps for Tour {
    #[inline(always)]
    fn len(&self) -> usize {
        Tour::len(self)
    }

    #[inline(always)]
    fn next(&self, c: usize) -> usize {
        Tour::next(self, c)
    }

    #[inline(always)]
    fn prev(&self, c: usize) -> usize {
        Tour::prev(self, c)
    }

    #[inline]
    fn between(&self, a: usize, b: usize, c: usize) -> bool {
        Tour::between(self, a, b, c)
    }

    #[inline]
    fn flip(&mut self, a: usize, b: usize) {
        let (pa, pb) = (self.position(a), self.position(b));
        self.reverse_segment(pa, pb);
    }

    fn to_order(&self) -> Vec<u32> {
        // Same canonical rotation as the default, but via two slice
        // copies instead of n successor chases.
        let p = self.position(0);
        let o = self.order();
        let mut out = Vec::with_capacity(o.len());
        out.extend_from_slice(&o[p..]);
        out.extend_from_slice(&o[..p]);
        out
    }

    #[inline]
    fn has_edge(&self, a: usize, b: usize) -> bool {
        Tour::has_edge(self, a, b)
    }

    fn tour_length(&self, inst: &Instance) -> i64 {
        self.length(inst)
    }
}

impl TourRep for Tour {
    const NAME: &'static str = "array";

    fn from_order_slice(order: &[u32]) -> Self {
        Tour::from_order(order.to_vec())
    }
}

impl TourOps for TwoLevelList {
    #[inline(always)]
    fn len(&self) -> usize {
        TwoLevelList::len(self)
    }

    #[inline(always)]
    fn next(&self, c: usize) -> usize {
        TwoLevelList::next(self, c)
    }

    #[inline(always)]
    fn prev(&self, c: usize) -> usize {
        TwoLevelList::prev(self, c)
    }

    #[inline]
    fn between(&self, a: usize, b: usize, c: usize) -> bool {
        TwoLevelList::between(self, a, b, c)
    }

    #[inline]
    fn flip(&mut self, a: usize, b: usize) {
        TwoLevelList::flip(self, a, b)
    }
}

impl TourRep for TwoLevelList {
    const NAME: &'static str = "twolevel";

    fn from_order_slice(order: &[u32]) -> Self {
        TwoLevelList::from_order_slice(order)
    }

    fn from_tour(tour: &Tour) -> Self {
        TwoLevelList::from_tour(tour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// The lockstep guarantee: identical flip traces keep both
    /// representations on the same *directed* cycle (same order vector,
    /// up to the array's fixed position frame).
    #[test]
    fn flip_traces_stay_in_directed_lockstep() {
        let n = 150usize;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut t = Tour::random(n, &mut rng);
        let mut tl = TwoLevelList::from_tour(&t);
        for step in 0..400 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            TourOps::flip(&mut t, a, b);
            TourOps::flip(&mut tl, a, b);
            // Compare directed successor of every city, which pins the
            // orientation, not just the undirected edge set.
            for c in 0..n {
                assert_eq!(
                    TourOps::next(&tl, c),
                    TourOps::next(&t, c),
                    "directed divergence at step {step} (flip {a},{b}), city {c}"
                );
            }
        }
    }

    #[test]
    fn trait_queries_agree_with_inherent() {
        let mut rng = SmallRng::seed_from_u64(12);
        let t = Tour::random(40, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        for c in 0..40 {
            assert_eq!(TourOps::next(&t, c), TourOps::next(&tl, c));
            assert_eq!(TourOps::prev(&t, c), TourOps::prev(&tl, c));
        }
        assert_eq!(TourOps::to_order(&t), TourOps::to_order(&tl));
        assert!(TourOps::has_edge(&tl, t.city_at(0), t.city_at(1)));
    }

    #[test]
    fn tour_length_walk_matches_array_length() {
        use crate::generate;
        let inst = generate::uniform(60, 1_000.0, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let t = Tour::random(60, &mut rng);
        let tl = TwoLevelList::from_tour(&t);
        assert_eq!(TourOps::tour_length(&tl, &inst), t.length(&inst));
        assert_eq!(TourOps::tour_length(&t, &inst), t.length(&inst));
    }

    #[test]
    fn rep_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(9);
        let t = Tour::random(33, &mut rng);
        let tl = <TwoLevelList as TourRep>::from_tour(&t);
        // Canonical conversions agree between representations ...
        assert_eq!(TourRep::to_tour(&tl).order(), TourOps::to_order(&t));
        assert_eq!(TourRep::to_tour(&t).order(), TourOps::to_order(&t));
        // ... and canonicalization preserves the directed cycle.
        let back = TourRep::to_tour(&tl);
        for c in 0..33 {
            assert_eq!(back.next(c), t.next(c));
        }
        let t2 = <Tour as TourRep>::from_order_slice(t.order());
        assert_eq!(t2, t);
        assert_eq!(<Tour as TourRep>::NAME, "array");
        assert_eq!(<TwoLevelList as TourRep>::NAME, "twolevel");
    }
}
