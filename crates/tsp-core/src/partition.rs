//! Spatial sharding: balanced k-d partition of an instance into regions
//! plus sub-instance views with global↔local city id maps.
//!
//! This is the data layer of the divide-and-optimize pipeline (DualOpt
//! style): [`Partition::build`] recursively splits the city set on the
//! wider axis into `shards` balanced regions, recording the split planes
//! in a merge tree so the stitcher can reconnect sub-tours bottom-up
//! along the same geometry that separated them. [`SubInstance::extract`]
//! then materializes one region as a real [`Instance`] a full
//! `ClkEngine` can run on, with dense local ids and a `globals` map
//! back to parent city ids.
//!
//! Determinism contract: splits compare `(coordinate, city id)` — not
//! the bare float — so the partition is a pure function of the instance
//! and the shard count, independent of platform `select_nth_unstable_by`
//! tie behavior. The same instance and shard count always produce the
//! same regions in the same order.

use crate::instance::{Instance, Point};

/// Regions get no smaller than this; [`Partition::build`] clamps the
/// requested shard count so every shard can still host a real
/// sub-instance (`Instance::new` needs ≥ 3 cities; LK wants headroom).
pub const MIN_SHARD_CITIES: usize = 8;

/// One node of the partition's merge tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionNode {
    /// A leaf region: index into [`Partition::shards`].
    Leaf { shard: u32 },
    /// An internal split: children `lo`/`hi` are node indices; `lo`
    /// holds the cities on the small side of `value` along `axis`
    /// (0 = x, 1 = y).
    Split { axis: u8, lo: u32, hi: u32 },
}

/// A balanced spatial partition of an instance into shards, plus the
/// binary merge tree of split planes that produced it.
#[derive(Debug, Clone)]
pub struct Partition {
    shards: Vec<Vec<u32>>,
    nodes: Vec<PartitionNode>,
    /// Split coordinate per node (unused for leaves; kept parallel to
    /// `nodes` so `PartitionNode` stays `Copy` without an f64 Eq issue).
    split_values: Vec<f64>,
    root: u32,
}

impl Partition {
    /// Partition `inst` into (at most) `shards` balanced regions.
    ///
    /// The effective shard count is clamped to
    /// `max(1, min(shards, n / MIN_SHARD_CITIES))`; callers should use
    /// [`Partition::shard_count`] rather than assume their request was
    /// honored verbatim.
    ///
    /// # Panics
    ///
    /// Panics if the instance metric is not geometric (matrix instances
    /// have no coordinates to split on).
    pub fn build(inst: &Instance, shards: usize) -> Self {
        assert!(
            inst.metric().is_geometric(),
            "spatial partition requires coordinates"
        );
        let n = inst.len();
        let want = shards.clamp(1, (n / MIN_SHARD_CITIES).max(1));
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut part = Partition {
            shards: Vec::with_capacity(want),
            nodes: Vec::with_capacity(2 * want),
            split_values: Vec::with_capacity(2 * want),
            root: 0,
        };
        let root = part.build_rec(inst.points(), &mut ids, want);
        part.root = root;
        part
    }

    fn build_rec(&mut self, pts: &[Point], ids: &mut [u32], want: usize) -> u32 {
        if want <= 1 {
            let shard = self.shards.len() as u32;
            let mut members = ids.to_vec();
            members.sort_unstable();
            self.shards.push(members);
            let me = self.nodes.len() as u32;
            self.nodes.push(PartitionNode::Leaf { shard });
            self.split_values.push(0.0);
            return me;
        }
        // Proportional split: the lo side gets ⌈want/2⌉ of the shards
        // and the matching fraction of the cities, so uneven shard
        // counts still come out balanced.
        let lo_want = want.div_ceil(2);
        let mid = ids.len() * lo_want / want;
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &i in ids.iter() {
            let p = pts[i as usize];
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let axis = if max_x - min_x >= max_y - min_y { 0u8 } else { 1u8 };
        // (coordinate, id) keys: bitwise-deterministic even under
        // massive coordinate ties (lattices), unlike the bare float.
        let key = |i: u32| -> (f64, u32) {
            let p = pts[i as usize];
            (if axis == 0 { p.x } else { p.y }, i)
        };
        ids.select_nth_unstable_by(mid, |&a, &b| {
            let (ka, kb) = (key(a), key(b));
            ka.0.partial_cmp(&kb.0).unwrap().then(ka.1.cmp(&kb.1))
        });
        let split = key(ids[mid]).0;
        let me = self.nodes.len() as u32;
        self.nodes.push(PartitionNode::Split { axis, lo: 0, hi: 0 });
        self.split_values.push(split);
        let (lo_ids, hi_ids) = ids.split_at_mut(mid);
        let lo = self.build_rec(pts, lo_ids, lo_want);
        let hi = self.build_rec(pts, hi_ids, want - lo_want);
        if let PartitionNode::Split { lo: l, hi: h, .. } = &mut self.nodes[me as usize] {
            *l = lo;
            *h = hi;
        }
        me
    }

    /// Number of regions actually produced (after clamping).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Member city ids of shard `s`, sorted ascending.
    #[inline]
    pub fn shard(&self, s: usize) -> &[u32] {
        &self.shards[s]
    }

    /// All shards, in deterministic build order.
    #[inline]
    pub fn shards(&self) -> &[Vec<u32>] {
        &self.shards
    }

    /// Size of the largest shard — the per-node working-set bound.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Root node index of the merge tree.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Merge-tree node `i`.
    #[inline]
    pub fn node(&self, i: u32) -> PartitionNode {
        self.nodes[i as usize]
    }

    /// Split coordinate of internal node `i` (0.0 for leaves).
    #[inline]
    pub fn split_value(&self, i: u32) -> f64 {
        self.split_values[i as usize]
    }
}

/// One region of a parent instance, materialized as a standalone
/// [`Instance`] with dense local ids `0..m` and a map back to the
/// parent's city ids.
///
/// The local metric is the parent metric over the same coordinates, so
/// a local edge `(i, j)` has exactly the parent weight
/// `parent.dist(globals[i], globals[j])` — sub-tour lengths transfer to
/// the global tour without re-rounding.
#[derive(Debug, Clone)]
pub struct SubInstance {
    instance: Instance,
    globals: Vec<u32>,
}

impl SubInstance {
    /// Extract the cities `globals` (sorted ascending, unique) of
    /// `parent` as a standalone instance named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not geometric, `globals` is not strictly
    /// ascending, or fewer than 3 cities are given.
    pub fn extract(parent: &Instance, globals: &[u32], name: impl Into<String>) -> Self {
        assert!(
            parent.metric().is_geometric(),
            "sub-instance extraction requires coordinates"
        );
        assert!(
            globals.windows(2).all(|w| w[0] < w[1]),
            "sub-instance members must be sorted and unique"
        );
        let pts: Vec<Point> = globals.iter().map(|&g| parent.point(g as usize)).collect();
        SubInstance {
            instance: Instance::new(name, pts, parent.metric().clone()),
            globals: globals.to_vec(),
        }
    }

    /// The standalone instance over local ids `0..len`.
    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of cities in the region.
    #[inline]
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Whether the region is empty (never true for valid extractions).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Parent city ids, index = local id.
    #[inline]
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }

    /// Parent id of local city `local`.
    #[inline]
    pub fn global_of(&self, local: usize) -> u32 {
        self.globals[local]
    }

    /// Local id of parent city `global`, if it is in this region.
    pub fn local_of(&self, global: u32) -> Option<usize> {
        self.globals.binary_search(&global).ok()
    }

    /// Translate a local tour order to parent city ids.
    pub fn to_global_order(&self, local_order: &[u32]) -> Vec<u32> {
        local_order.iter().map(|&l| self.globals[l as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform;
    use crate::metric::Metric;

    #[test]
    fn covers_all_cities_exactly_once() {
        let inst = uniform(500, 1000.0, 7);
        for shards in [1, 2, 3, 5, 8, 16] {
            let part = Partition::build(&inst, shards);
            assert_eq!(part.shard_count(), shards);
            let mut seen = vec![false; inst.len()];
            for s in part.shards() {
                assert!(s.windows(2).all(|w| w[0] < w[1]), "members sorted");
                for &c in s {
                    assert!(!seen[c as usize], "city {c} in two shards");
                    seen[c as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "city missing from partition");
        }
    }

    #[test]
    fn shards_are_balanced() {
        let inst = uniform(1000, 1000.0, 9);
        for shards in [4, 7, 16] {
            let part = Partition::build(&inst, shards);
            let min = part.shards().iter().map(Vec::len).min().unwrap();
            let max = part.max_shard_len();
            // Proportional splits keep shard sizes within one of each
            // other up to rounding per level.
            assert!(
                max - min <= shards,
                "shards={shards}: sizes spread {min}..{max}"
            );
        }
    }

    #[test]
    fn deterministic_even_on_lattices() {
        // Lattices maximize coordinate ties; the (coord, id) key must
        // give the same partition every time.
        let mut pts = Vec::new();
        for y in 0..20 {
            for x in 0..20 {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        let inst = Instance::new("lattice", pts, Metric::Euc2d);
        let a = Partition::build(&inst, 8);
        let b = Partition::build(&inst, 8);
        assert_eq!(a.shards(), b.shards());
    }

    #[test]
    fn shard_count_clamped_for_tiny_instances() {
        let inst = uniform(20, 100.0, 1);
        let part = Partition::build(&inst, 64);
        assert_eq!(part.shard_count(), 20 / MIN_SHARD_CITIES);
        assert!(part.shards().iter().all(|s| s.len() >= 3));
    }

    #[test]
    fn merge_tree_spans_all_shards() {
        let inst = uniform(300, 1000.0, 3);
        let part = Partition::build(&inst, 6);
        // Walk the tree and collect leaves; every shard appears once.
        let mut leaves = Vec::new();
        let mut stack = vec![part.root()];
        while let Some(i) = stack.pop() {
            match part.node(i) {
                PartitionNode::Leaf { shard } => leaves.push(shard),
                PartitionNode::Split { lo, hi, .. } => {
                    stack.push(lo);
                    stack.push(hi);
                }
            }
        }
        leaves.sort_unstable();
        assert_eq!(leaves, (0..6u32).collect::<Vec<_>>());
    }

    #[test]
    fn split_separates_sides_geometrically() {
        let inst = uniform(400, 1000.0, 5);
        let part = Partition::build(&inst, 2);
        let (axis, lo, hi) = match part.node(part.root()) {
            PartitionNode::Split { axis, lo, hi } => (axis, lo, hi),
            _ => panic!("root of a 2-shard partition must split"),
        };
        let value = part.split_value(part.root());
        let coord = |c: u32| {
            let p = inst.point(c as usize);
            if axis == 0 { p.x } else { p.y }
        };
        let (lo_shard, hi_shard) = match (part.node(lo), part.node(hi)) {
            (PartitionNode::Leaf { shard: a }, PartitionNode::Leaf { shard: b }) => (a, b),
            _ => panic!("2-shard tree has leaf children"),
        };
        for &c in part.shard(lo_shard as usize) {
            assert!(coord(c) <= value);
        }
        for &c in part.shard(hi_shard as usize) {
            assert!(coord(c) >= value);
        }
    }

    #[test]
    fn sub_instance_maps_round_trip() {
        let inst = uniform(200, 500.0, 11);
        let part = Partition::build(&inst, 4);
        for s in 0..part.shard_count() {
            let sub = SubInstance::extract(&inst, part.shard(s), "sub");
            assert_eq!(sub.len(), part.shard(s).len());
            for local in 0..sub.len() {
                let g = sub.global_of(local);
                assert_eq!(sub.local_of(g), Some(local));
                assert_eq!(sub.instance().point(local), inst.point(g as usize));
            }
            // Distances transfer exactly.
            let m = sub.len();
            for (i, j) in [(0, 1), (0, m - 1), (m / 2, m - 1)] {
                assert_eq!(
                    sub.instance().dist(i, j),
                    inst.dist(sub.global_of(i) as usize, sub.global_of(j) as usize)
                );
            }
            // Order translation.
            let local_order: Vec<u32> = (0..m as u32).rev().collect();
            let global_order = sub.to_global_order(&local_order);
            assert_eq!(global_order.len(), m);
            assert_eq!(global_order[0], sub.global_of(m - 1));
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_members_rejected() {
        let inst = uniform(10, 100.0, 2);
        SubInstance::extract(&inst, &[3, 1, 2], "bad");
    }
}
