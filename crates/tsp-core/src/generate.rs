//! Deterministic synthetic instance generators.
//!
//! The paper's testbed (TSPLIB, DIMACS random instances, national TSPs)
//! is not redistributable here, so these generators produce instances
//! with the same *structure* (see DESIGN.md §3):
//!
//! - [`uniform`] — DIMACS `E…` recipe: cities uniform in a square.
//! - [`clustered`] — DIMACS `C…` recipe: cities normally distributed
//!   around 10 cluster centers.
//! - [`grid_known_optimum`] — rectangular unit grid whose optimal tour
//!   length is provably `w*h` (boustrophedon cycle), enabling exact
//!   "found the optimum" counting as in the paper's Table 3.
//! - [`drill_plate`] — `fl…`-style drilling instances: points along part
//!   outlines with large empty regions, the structure that traps plain
//!   CLK in deep local optima (fl1577, fl3795).
//! - [`road_like`] — national-TSP-style: towns scattered along a sparse
//!   web of "roads" between population centers (fi10639, sw24978 analog).
//!
//! All generators take an explicit seed and are fully reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, Point};
use crate::metric::Metric;

/// Standard normal sample via Box-Muller (avoids a distribution dep).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform random instance: `n` cities i.i.d. uniform in a
/// `side × side` square (the DIMACS `E<n>.k` recipe; the challenge used
/// side `1_000_000` with `EUC_2D`).
pub fn uniform(n: usize, side: f64, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    Instance::new(format!("E{n}.s{seed}"), pts, Metric::Euc2d)
}

/// Clustered random instance: `n` cities normally distributed around
/// `clusters` uniformly placed centers (DIMACS `C<n>.k` uses 10 clusters
/// in a `1_000_000` square with std-dev `side / (clusters * 3.16...)`;
/// we expose the std-dev directly).
pub fn clustered(n: usize, side: f64, clusters: usize, stddev: f64, seed: u64) -> Instance {
    assert!(clusters >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let pts = (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..clusters)];
            Point::new(c.x + stddev * normal(&mut rng), c.y + stddev * normal(&mut rng))
        })
        .collect();
    Instance::new(format!("C{n}.s{seed}"), pts, Metric::Euc2d)
}

/// Clustered instance with the DIMACS defaults (10 clusters, std-dev
/// side/31.62).
pub fn clustered_dimacs(n: usize, seed: u64) -> Instance {
    let side = 1_000_000.0;
    clustered(n, side, 10, side / 31.622, seed)
}

/// Rectangular unit grid with **provably known optimum**.
///
/// Cities sit at integer coordinates `(i, j)` for `0 ≤ i < w`,
/// `0 ≤ j < h`, scaled by `spacing`. When `w*h` is even (and both
/// dimensions ≥ 2) the grid graph is Hamiltonian via a boustrophedon
/// cycle in which every step has length `spacing`, and since each of the
/// `w*h` tour edges must have length ≥ `spacing`, the optimal tour
/// length is exactly `w*h*spacing` — recorded via
/// [`Instance::known_optimum`].
///
/// # Panics
///
/// Panics unless `w ≥ 2`, `h ≥ 2`, and `w*h` is even.
pub fn grid_known_optimum(w: usize, h: usize, spacing: f64) -> Instance {
    assert!(w >= 2 && h >= 2, "grid must be at least 2x2");
    assert!((w * h).is_multiple_of(2), "odd grids have no unit-step Hamiltonian cycle");
    let mut pts = Vec::with_capacity(w * h);
    for j in 0..h {
        for i in 0..w {
            pts.push(Point::new(i as f64 * spacing, j as f64 * spacing));
        }
    }
    let opt = (w * h) as i64 * spacing.round() as i64;
    Instance::new(format!("grid{}x{}", w, h), pts, Metric::Euc2d).with_known_optimum(opt)
}

/// The boustrophedon optimal tour of a [`grid_known_optimum`] instance
/// (useful for tests and for seeding "stuck at optimum" scenarios).
///
/// Requires `w` even *or* `h` even; the construction snakes along rows
/// and returns along the first column.
pub fn grid_optimal_tour(w: usize, h: usize) -> crate::tour::Tour {
    assert!(w >= 2 && h >= 2 && (w.is_multiple_of(2) || h.is_multiple_of(2)));
    let idx = |i: usize, j: usize| (j * w + i) as u32;
    let mut order = Vec::with_capacity(w * h);
    if h.is_multiple_of(2) {
        // Snake over columns 1..w within each row pair, return down column 0.
        for j in 0..h {
            if j % 2 == 0 {
                for i in 1..w {
                    order.push(idx(i, j));
                }
            } else {
                for i in (1..w).rev() {
                    order.push(idx(i, j));
                }
            }
        }
        for j in (0..h).rev() {
            order.push(idx(0, j));
        }
    } else {
        // w must be even: snake over rows within each column, return along row 0.
        for i in 0..w {
            if i % 2 == 0 {
                for j in 1..h {
                    order.push(idx(i, j));
                }
            } else {
                for j in (1..h).rev() {
                    order.push(idx(i, j));
                }
            }
        }
        for i in (0..w).rev() {
            order.push(idx(i, 0));
        }
    }
    crate::tour::Tour::from_order(order)
}

/// Drill-plate instance (`fl…`-style): points are laid out along the
/// outlines of rectangular "parts" placed on a board, with a few dense
/// hole fields, leaving large empty regions between parts. This is the
/// geometry of the TSPLIB `fl1577`/`fl3795` drilling problems, whose
/// clustered-but-collinear structure creates the deep local optima that
/// plain CLK cannot escape (paper §4.1).
pub fn drill_plate(n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = 100_000.0;
    // Place parts until we have n points.
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    while pts.len() < n {
        let cx = rng.gen_range(0.05 * side..0.95 * side);
        let cy = rng.gen_range(0.05 * side..0.95 * side);
        let w = rng.gen_range(0.02 * side..0.12 * side);
        let h = rng.gen_range(0.02 * side..0.12 * side);
        if rng.gen_bool(0.3) {
            // Dense hole field: a small grid of drill points.
            let gw = rng.gen_range(3..10usize);
            let gh = rng.gen_range(3..10usize);
            for j in 0..gh {
                for i in 0..gw {
                    if pts.len() >= n {
                        break;
                    }
                    pts.push(Point::new(
                        cx + i as f64 * w / gw as f64,
                        cy + j as f64 * h / gh as f64,
                    ));
                }
            }
        } else {
            // Part outline: points along the rectangle perimeter.
            let per_side = rng.gen_range(2..12usize);
            let step_x = w / per_side as f64;
            let step_y = h / per_side as f64;
            for i in 0..per_side {
                if pts.len() + 4 > n {
                    break;
                }
                pts.push(Point::new(cx + i as f64 * step_x, cy));
                pts.push(Point::new(cx + i as f64 * step_x, cy + h));
                pts.push(Point::new(cx, cy + i as f64 * step_y));
                pts.push(Point::new(cx + w, cy + i as f64 * step_y));
            }
        }
    }
    pts.truncate(n);
    Instance::new(format!("fl{n}.s{seed}"), pts, Metric::Euc2d)
}

/// Road-network-like instance (national-TSP-style): a handful of large
/// population centers connected by noisy "roads" along which most towns
/// lie, plus scattered rural towns. Mimics the elongated, corridor-heavy
/// structure of fi10639/sw24978.
pub fn road_like(n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = 1_000_000.0;
    let ncenters = 8.max(n / 500).min(24);
    let centers: Vec<Point> = (0..ncenters)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.1 * side..0.9 * side)))
        .collect();
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    // 25% of towns cluster at centers, 55% along roads between random
    // center pairs, 20% rural scatter.
    let n_center = n / 4;
    let n_road = n * 55 / 100;
    for _ in 0..n_center {
        let c = centers[rng.gen_range(0..ncenters)];
        pts.push(Point::new(
            c.x + 0.01 * side * normal(&mut rng),
            c.y + 0.01 * side * normal(&mut rng),
        ));
    }
    for _ in 0..n_road {
        let a = centers[rng.gen_range(0..ncenters)];
        let b = centers[rng.gen_range(0..ncenters)];
        let t: f64 = rng.gen_range(0.0..1.0);
        pts.push(Point::new(
            a.x + t * (b.x - a.x) + 0.005 * side * normal(&mut rng),
            a.y + t * (b.y - a.y) + 0.005 * side * normal(&mut rng),
        ));
    }
    while pts.len() < n {
        pts.push(Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)));
    }
    pts.truncate(n);
    Instance::new(format!("road{n}.s{seed}"), pts, Metric::Euc2d)
}

/// The paper's testbed, scaled: returns the stand-in instance for a
/// TSPLIB/DIMACS name at a reduced size suitable for second-scale
/// experiments (see DESIGN.md §3). Unknown names fall back to a uniform
/// instance of the requested size.
pub fn testbed_instance(paper_name: &str, size: usize, seed: u64) -> Instance {
    match paper_name {
        name if name.starts_with("E") => uniform(size, 1_000_000.0, seed),
        name if name.starts_with("C") => clustered_dimacs(size, seed),
        name if name.starts_with("fl") => drill_plate(size, seed),
        name if name.starts_with("pcb") || name.starts_with("pr") || name.starts_with("pla") => {
            // Printed-circuit-board style: semi-regular rows with jitter.
            pcb_like(size, seed)
        }
        name if name.starts_with("fi") || name.starts_with("sw") || name.starts_with("usa") => {
            road_like(size, seed)
        }
        name if name.starts_with("fnl") => uniform(size, 1_000_000.0, seed),
        _ => uniform(size, 1_000_000.0, seed),
    }
}

/// PCB-drilling style instance: points on semi-regular rows/columns with
/// jitter and gaps (pr2392/pcb3038/pla* analog).
pub fn pcb_like(n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cols = (n as f64).sqrt().ceil() as usize;
    let spacing = 1000.0;
    let mut pts = Vec::with_capacity(n);
    let mut placed = 0usize;
    let mut row = 0usize;
    while placed < n {
        for i in 0..cols {
            if placed >= n {
                break;
            }
            // Leave gaps like unpopulated board regions.
            if rng.gen_bool(0.15) {
                continue;
            }
            let jitter_x = rng.gen_range(-0.2..0.2) * spacing;
            let jitter_y = rng.gen_range(-0.05..0.05) * spacing;
            pts.push(Point::new(
                i as f64 * spacing + jitter_x,
                row as f64 * spacing + jitter_y,
            ));
            placed += 1;
        }
        row += 1;
    }
    Instance::new(format!("pcb{n}.s{seed}"), pts, Metric::Euc2d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_reproducible() {
        let a = uniform(50, 1000.0, 7);
        let b = uniform(50, 1000.0, 7);
        let c = uniform(50, 1000.0, 8);
        assert_eq!(a.points(), b.points());
        assert_ne!(a.points(), c.points());
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn uniform_in_bounds() {
        let inst = uniform(200, 500.0, 1);
        for p in inst.points() {
            assert!(p.x >= 0.0 && p.x < 500.0);
            assert!(p.y >= 0.0 && p.y < 500.0);
        }
    }

    #[test]
    fn clustered_has_structure() {
        // Mean pairwise distance in a clustered instance is much smaller
        // than in a uniform instance of the same extent when measured to
        // the nearest neighbor.
        let cl = clustered(300, 1_000_000.0, 10, 10_000.0, 3);
        let un = uniform(300, 1_000_000.0, 3);
        let mean_nn = |inst: &Instance| -> f64 {
            let tree = crate::kdtree::KdTree::build(inst);
            (0..inst.len())
                .map(|c| {
                    let nn = tree.nearest_excluding(inst.point(c), c).unwrap();
                    inst.point(c).sq_dist(&inst.point(nn)).sqrt()
                })
                .sum::<f64>()
                / inst.len() as f64
        };
        assert!(mean_nn(&cl) < mean_nn(&un) * 0.8);
    }

    #[test]
    fn grid_optimum_is_achieved_by_boustrophedon() {
        for (w, h) in [(4, 4), (6, 3), (3, 6), (5, 4), (4, 5), (10, 8)] {
            let inst = grid_known_optimum(w, h, 100.0);
            let tour = grid_optimal_tour(w, h);
            assert!(tour.is_valid(), "{w}x{h}");
            assert_eq!(
                tour.length(&inst),
                inst.known_optimum().unwrap(),
                "boustrophedon not optimal-length on {w}x{h}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd grids")]
    fn odd_grid_rejected() {
        grid_known_optimum(3, 5, 1.0);
    }

    #[test]
    fn drill_plate_exact_size() {
        let inst = drill_plate(500, 11);
        assert_eq!(inst.len(), 500);
    }

    #[test]
    fn road_like_exact_size_and_reproducible() {
        let a = road_like(400, 2);
        let b = road_like(400, 2);
        assert_eq!(a.len(), 400);
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn pcb_like_exact_size() {
        let inst = pcb_like(333, 5);
        assert_eq!(inst.len(), 333);
    }

    #[test]
    fn testbed_dispatch() {
        assert!(testbed_instance("E1k.1", 100, 1).name().starts_with('E'));
        assert!(testbed_instance("C1k.1", 100, 1).name().starts_with('C'));
        assert!(testbed_instance("fl1577", 100, 1).name().starts_with("fl"));
        assert!(testbed_instance("sw24978", 100, 1).name().starts_with("road"));
        assert!(testbed_instance("pr2392", 100, 1).name().starts_with("pcb"));
        assert_eq!(testbed_instance("unknown", 64, 1).len(), 64);
    }
}
