//! Array-based tour representation.
//!
//! A [`Tour`] is a cyclic permutation of the cities `0..n`, stored as
//!
//! - `order[p]` — the city at position `p`, and
//! - `pos[c]` — the position of city `c`,
//!
//! with the invariant `order[pos[c]] == c` for every city. This is the
//! classic "array + position index" structure used by Concorde's
//! `linkern` for mid-size instances: `next`/`prev`/`between` are O(1),
//! and a 2-opt reconnection is a segment reversal of the shorter side
//! (≤ n/2 swaps).

use rand::Rng;

use crate::instance::Instance;

/// A cyclic permutation of cities with O(1) position queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tour {
    order: Vec<u32>,
    pos: Vec<u32>,
}

impl Tour {
    /// The identity tour `0, 1, …, n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `n > u32::MAX as usize`.
    pub fn identity(n: usize) -> Self {
        assert!(n >= 3, "a tour needs at least 3 cities");
        assert!(n <= u32::MAX as usize, "city indices must fit in u32");
        let order: Vec<u32> = (0..n as u32).collect();
        let pos = order.clone();
        Tour { order, pos }
    }

    /// Build a tour from an explicit visiting order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<u32>) -> Self {
        match Self::try_from_order(order) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build a tour from an explicit visiting order, returning an
    /// error instead of panicking when `order` is not a permutation of
    /// `0..order.len()` — the entry point for orders received from the
    /// network, which must never be able to crash a node.
    pub fn try_from_order(order: Vec<u32>) -> Result<Self, String> {
        let n = order.len();
        if n < 3 {
            return Err(format!("a tour needs at least 3 cities, got {n}"));
        }
        let mut pos = vec![u32::MAX; n];
        for (p, &c) in order.iter().enumerate() {
            let c = c as usize;
            if c >= n {
                return Err(format!("city {c} out of range 0..{n}"));
            }
            if pos[c] != u32::MAX {
                return Err(format!("city {c} appears twice"));
            }
            pos[c] = p as u32;
        }
        Ok(Tour { order, pos })
    }

    /// A uniformly random tour.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut t = Tour::identity(n);
        // Fisher-Yates over the order array, keeping pos in sync at the end.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            t.order.swap(i, j);
        }
        for (p, &c) in t.order.iter().enumerate() {
            t.pos[c as usize] = p as u32;
        }
        t
    }

    /// Number of cities.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Tours are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The visiting order as a slice (`order[p]` = city at position `p`).
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Position of city `c` in the tour.
    #[inline(always)]
    pub fn position(&self, c: usize) -> usize {
        self.pos[c] as usize
    }

    /// City at position `p`.
    #[inline(always)]
    pub fn city_at(&self, p: usize) -> usize {
        self.order[p] as usize
    }

    /// Successor of city `c` in tour direction.
    #[inline(always)]
    pub fn next(&self, c: usize) -> usize {
        let p = self.pos[c] as usize;
        let p1 = if p + 1 == self.order.len() { 0 } else { p + 1 };
        self.order[p1] as usize
    }

    /// Predecessor of city `c` in tour direction.
    #[inline(always)]
    pub fn prev(&self, c: usize) -> usize {
        let p = self.pos[c] as usize;
        let p1 = if p == 0 { self.order.len() - 1 } else { p - 1 };
        self.order[p1] as usize
    }

    /// Whether city `b` lies on the directed path from `a` to `c`
    /// (exclusive of `a`, inclusive of nothing special at `c`): true iff
    /// walking forward from `a` meets `b` strictly before `c`.
    #[inline]
    pub fn between(&self, a: usize, b: usize, c: usize) -> bool {
        let (pa, pb, pc) = (self.pos[a], self.pos[b], self.pos[c]);
        if pa <= pc {
            pa < pb && pb < pc
        } else {
            pb > pa || pb < pc
        }
    }

    /// Exact tour length under the instance metric.
    ///
    /// # Panics
    ///
    /// Panics if the instance dimension differs from the tour length.
    pub fn length(&self, inst: &Instance) -> i64 {
        assert_eq!(inst.len(), self.len(), "instance/tour size mismatch");
        let n = self.order.len();
        let mut total = 0i64;
        for p in 0..n {
            let a = self.order[p] as usize;
            let b = self.order[if p + 1 == n { 0 } else { p + 1 }] as usize;
            total += inst.dist(a, b);
        }
        total
    }

    /// Check the permutation invariant `order[pos[c]] == c` for all `c`.
    pub fn is_valid(&self) -> bool {
        self.order.len() == self.pos.len()
            && self
                .pos
                .iter()
                .enumerate()
                .all(|(c, &p)| (p as usize) < self.order.len() && self.order[p as usize] == c as u32)
    }

    /// Number of forward positions from `a` to `b` (cyclic distance in
    /// tour direction; 0 iff `a == b`).
    #[inline]
    fn forward_gap(&self, pa: usize, pb: usize) -> usize {
        let n = self.order.len();
        if pb >= pa {
            pb - pa
        } else {
            pb + n - pa
        }
    }

    /// Reverse the cyclic segment of positions from `from` to `to`
    /// (inclusive, walking forward). Always reverses the *shorter* side
    /// of the cycle, which yields the same undirected tour in at most
    /// `n/2` swaps.
    pub fn reverse_segment(&mut self, from: usize, to: usize) {
        let n = self.order.len();
        debug_assert!(from < n && to < n);
        let inner = self.forward_gap(from, to) + 1;
        let (mut i, mut j, mut m) = if inner * 2 <= n {
            (from, to, inner / 2)
        } else {
            // Reverse the complementary segment instead: same cycle.
            ((to + 1) % n, (from + n - 1) % n, (n - inner) / 2)
        };
        while m > 0 {
            let (ci, cj) = (self.order[i], self.order[j]);
            self.order[i] = cj;
            self.order[j] = ci;
            self.pos[cj as usize] = i as u32;
            self.pos[ci as usize] = j as u32;
            i = if i + 1 == n { 0 } else { i + 1 };
            j = if j == 0 { n - 1 } else { j - 1 };
            m -= 1;
        }
    }

    /// Perform the 2-opt reconnection that removes edges
    /// `(a, next(a))` and `(b, next(b))` and adds `(a, b)` and
    /// `(next(a), next(b))`, by reversing the path `next(a) … b`.
    ///
    /// Callers are responsible for having computed the gain; this method
    /// only mutates the permutation.
    ///
    /// # Panics
    ///
    /// Debug-panics if `a == b` or `b == next(a)` (degenerate moves).
    pub fn two_opt_move(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b, "degenerate 2-opt");
        debug_assert_ne!(self.next(a), b, "2-opt over adjacent edge is a no-op");
        let from = (self.pos[a] as usize + 1) % self.order.len();
        let to = self.pos[b] as usize;
        self.reverse_segment(from, to);
    }

    /// Move the segment of `seg_len` cities starting at city `s`
    /// (walking forward) so that it follows city `dest` instead (Or-opt
    /// move), optionally reversed.
    ///
    /// `dest` must not lie inside the segment nor be the city immediately
    /// preceding it (which would be a no-op in the unreversed case).
    pub fn or_opt_move(&mut self, s: usize, seg_len: usize, dest: usize, reversed: bool) {
        let n = self.order.len();
        debug_assert!(seg_len >= 1 && seg_len < n - 1);
        // Extract the segment cities.
        let mut seg = Vec::with_capacity(seg_len);
        let mut c = s;
        for _ in 0..seg_len {
            seg.push(c as u32);
            c = self.next(c);
        }
        debug_assert!(
            !seg.contains(&(dest as u32)),
            "destination inside moved segment"
        );
        if reversed {
            seg.reverse();
        }
        // Rebuild the order: walk from the city after the segment all the
        // way around, inserting the segment right after `dest`.
        let start = self.next(seg[if reversed { 0 } else { seg_len - 1 }] as usize);
        // `start` is the first city after the segment in the original tour.
        let mut new_order = Vec::with_capacity(n);
        let mut c = start;
        loop {
            new_order.push(c as u32);
            if c == dest {
                new_order.extend_from_slice(&seg);
            }
            c = self.next(c);
            if c == s {
                break;
            }
        }
        debug_assert_eq!(new_order.len(), n);
        self.order = new_order;
        for (p, &city) in self.order.iter().enumerate() {
            self.pos[city as usize] = p as u32;
        }
    }

    /// Double-bridge move: cut the tour at four positions and reconnect
    /// the quarters `A B C D` as `A C B D`. This is the 4-exchange kick
    /// of Martin, Otto & Felten used by Chained LK; it cannot be undone
    /// by any single 2-opt move and requires no segment reversal.
    ///
    /// `cuts` are tour *positions*; they are sorted internally and must
    /// be pairwise distinct.
    pub fn double_bridge_at(&mut self, mut cuts: [usize; 4]) {
        let n = self.order.len();
        cuts.sort_unstable();
        let [a, b, c, d] = cuts;
        assert!(a < b && b < c && c < d && d < n, "cuts must be distinct positions");
        // Segments (by position, inclusive of the left cut's successor):
        //   S1 = (a+1..=b), S2 = (b+1..=c), S3 = (c+1..=d), S4 = (d+1..=a)
        // New order: S4 S2 S1 S3 rotated — equivalently the standard
        // A C B D reconnection of the quarters between cuts.
        let mut new_order = Vec::with_capacity(n);
        new_order.extend_from_slice(&self.order[..=a]);
        new_order.extend_from_slice(&self.order[c + 1..=d]);
        new_order.extend_from_slice(&self.order[b + 1..=c]);
        new_order.extend_from_slice(&self.order[a + 1..=b]);
        new_order.extend_from_slice(&self.order[d + 1..]);
        debug_assert_eq!(new_order.len(), n);
        self.order = new_order;
        for (p, &city) in self.order.iter().enumerate() {
            self.pos[city as usize] = p as u32;
        }
    }

    /// Apply one uniformly random double-bridge move.
    pub fn random_double_bridge<R: Rng>(&mut self, rng: &mut R) {
        let n = self.len();
        if n < 8 {
            // Too small for a meaningful 4-exchange; rotate instead.
            return;
        }
        loop {
            let mut cuts = [0usize; 4];
            for c in cuts.iter_mut() {
                *c = rng.gen_range(0..n);
            }
            let mut sorted = cuts;
            sorted.sort_unstable();
            if sorted[0] < sorted[1] && sorted[1] < sorted[2] && sorted[2] < sorted[3] {
                self.double_bridge_at(sorted);
                return;
            }
        }
    }

    /// The two tour neighbors of city `c`, `(prev, next)`.
    #[inline]
    pub fn tour_neighbors(&self, c: usize) -> (usize, usize) {
        (self.prev(c), self.next(c))
    }

    /// Whether the undirected edge `(a, b)` is on the tour.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.next(a) == b || self.prev(a) == b
    }

    /// Iterate the undirected tour edges `(city, next_city)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.order.len();
        (0..n).map(move |p| {
            (
                self.order[p] as usize,
                self.order[if p + 1 == n { 0 } else { p + 1 }] as usize,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Point;
    use crate::metric::Metric;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn square() -> Instance {
        Instance::new(
            "square4",
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            Metric::Euc2d,
        )
    }

    #[test]
    fn identity_and_accessors() {
        let t = Tour::identity(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.city_at(3), 3);
        assert_eq!(t.position(3), 3);
        assert_eq!(t.next(4), 0);
        assert_eq!(t.prev(0), 4);
        assert!(t.is_valid());
        assert!(!t.is_empty());
    }

    #[test]
    fn from_order_validates() {
        let t = Tour::from_order(vec![2, 0, 1, 3]);
        assert_eq!(t.position(2), 0);
        assert_eq!(t.next(3), 2);
        assert!(t.is_valid());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_city_rejected() {
        Tour::from_order(vec![0, 1, 1, 2]);
    }

    #[test]
    fn try_from_order_errors_instead_of_panicking() {
        assert!(Tour::try_from_order(vec![0, 1]).is_err());
        assert!(Tour::try_from_order(vec![0, 1, 1, 2]).is_err());
        assert!(Tour::try_from_order(vec![0, 1, 7, 2]).is_err());
        let t = Tour::try_from_order(vec![2, 0, 1, 3]).unwrap();
        assert!(t.is_valid());
    }

    #[test]
    fn length_square() {
        let inst = square();
        let t = Tour::identity(4);
        assert_eq!(t.length(&inst), 40);
        // Crossing tour 0-2-1-3 is longer: two diagonals (14each) + two sides
        let crossing = Tour::from_order(vec![0, 2, 1, 3]);
        assert_eq!(crossing.length(&inst), 14 + 10 + 14 + 10);
    }

    #[test]
    fn between_wraps() {
        let t = Tour::from_order(vec![0, 1, 2, 3, 4, 5]);
        assert!(t.between(1, 3, 5));
        assert!(!t.between(1, 5, 3));
        // Wrapping: from 4 forward, 0 comes before 2.
        assert!(t.between(4, 0, 2));
        assert!(!t.between(4, 2, 0));
    }

    #[test]
    fn reverse_segment_simple() {
        let mut t = Tour::from_order(vec![0, 1, 2, 3, 4, 5]);
        t.reverse_segment(1, 3); // reverse cities 1,2,3
        assert_eq!(t.order(), &[0, 3, 2, 1, 4, 5]);
        assert!(t.is_valid());
    }

    #[test]
    fn reverse_segment_wrapping_uses_short_side() {
        let mut t = Tour::from_order(vec![0, 1, 2, 3, 4, 5]);
        // Segment from position 4 to position 1 (cities 4,5,0,1) is length
        // 4 > 6/2, so the complement (2,3) is reversed instead; the cycle
        // is unchanged as an undirected tour.
        t.reverse_segment(4, 1);
        assert_eq!(t.order(), &[0, 1, 3, 2, 4, 5]);
        assert!(t.is_valid());
    }

    #[test]
    fn two_opt_uncrosses_square() {
        let inst = square();
        let mut t = Tour::from_order(vec![0, 2, 1, 3]);
        let before = t.length(&inst);
        // Remove (0,2) and (1,3), add (0,1) and (2,3).
        t.two_opt_move(0, 1);
        assert!(t.is_valid());
        let after = t.length(&inst);
        assert_eq!(after, 40);
        assert!(after < before);
    }

    #[test]
    fn double_bridge_keeps_permutation() {
        let mut t = Tour::identity(12);
        t.double_bridge_at([2, 5, 7, 10]);
        assert!(t.is_valid());
        // A double bridge changes exactly 4 edges.
        let orig = Tour::identity(12);
        let orig_edges: std::collections::HashSet<(usize, usize)> = orig
            .edges()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let new_edges: std::collections::HashSet<(usize, usize)> =
            t.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
        let removed = orig_edges.difference(&new_edges).count();
        assert_eq!(removed, 4);
    }

    #[test]
    fn random_double_bridge_valid() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut t = Tour::identity(50);
        for _ in 0..100 {
            t.random_double_bridge(&mut rng);
            assert!(t.is_valid());
        }
    }

    #[test]
    fn random_double_bridge_small_tour_noop() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut t = Tour::identity(5);
        t.random_double_bridge(&mut rng);
        assert_eq!(t.order(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn or_opt_moves_segment() {
        let mut t = Tour::from_order(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Move segment [1,2] to follow 5.
        t.or_opt_move(1, 2, 5, false);
        assert!(t.is_valid());
        let p0 = t.position(0);
        // After 0 should now come 3.
        assert_eq!(t.city_at((p0 + 1) % 8), 3);
        assert_eq!(t.next(5), 1);
        assert_eq!(t.next(1), 2);
    }

    #[test]
    fn or_opt_reversed_segment() {
        let mut t = Tour::from_order(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        t.or_opt_move(1, 3, 6, true);
        assert!(t.is_valid());
        assert_eq!(t.next(6), 3);
        assert_eq!(t.next(3), 2);
        assert_eq!(t.next(2), 1);
        assert_eq!(t.next(0), 4);
    }

    #[test]
    fn random_tour_is_valid() {
        let mut rng = SmallRng::seed_from_u64(123);
        for _ in 0..20 {
            let t = Tour::random(64, &mut rng);
            assert!(t.is_valid());
        }
    }

    #[test]
    fn has_edge_and_neighbors() {
        let t = Tour::from_order(vec![3, 1, 4, 0, 2]);
        assert!(t.has_edge(3, 1));
        assert!(t.has_edge(1, 3));
        assert!(t.has_edge(2, 3)); // wrap
        assert!(!t.has_edge(3, 0));
        assert_eq!(t.tour_neighbors(4), (1, 0));
    }

    #[test]
    fn edges_cover_all_cities_twice() {
        let t = Tour::random(30, &mut SmallRng::seed_from_u64(5));
        let mut deg = vec![0usize; 30];
        for (a, b) in t.edges() {
            deg[a] += 1;
            deg[b] += 1;
        }
        assert!(deg.iter().all(|&d| d == 2));
    }
}
