//! TSPLIB edge-weight functions.
//!
//! All metrics produce integral distances (`i64`) following the rounding
//! rules in Reinelt's TSPLIB 95 specification, so tour lengths are exact
//! integers, portable across platforms, and free of floating-point
//! accumulation drift — which matters because the distributed algorithm
//! compares tour lengths received over the network against locally
//! computed ones.

use serde::{Deserialize, Serialize};

use crate::instance::Point;

/// Mean earth radius used by TSPLIB's `GEO` metric (kilometres).
const GEO_EARTH_RADIUS: f64 = 6378.388;

/// Edge-weight function of an instance.
///
/// The variants mirror TSPLIB's `EDGE_WEIGHT_TYPE` values that occur in
/// the paper's testbed, plus `Explicit` for matrix-specified instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// Euclidean distance rounded to the nearest integer (`EUC_2D`).
    Euc2d,
    /// Euclidean distance rounded *up* (`CEIL_2D`), used by the `pla*`
    /// instances (pla33810, pla85900).
    Ceil2d,
    /// Pseudo-Euclidean distance (`ATT`), used by att-series instances.
    Att,
    /// Geographical distance on the earth sphere (`GEO`): coordinates are
    /// DDD.MM degree/minute latitude/longitude pairs.
    Geo,
    /// Explicit full symmetric distance matrix, stored row-major.
    ///
    /// The second field is the dimension `n`; the vector holds `n * n`
    /// entries.
    Explicit(Vec<i64>, usize),
    /// Maximum-coordinate-difference distance (`MAX_2D`).
    Max2d,
    /// Manhattan distance rounded to the nearest integer (`MAN_2D`).
    Man2d,
}

impl Metric {
    /// TSPLIB keyword naming this metric, as written in
    /// `EDGE_WEIGHT_TYPE`.
    pub fn tsplib_name(&self) -> &'static str {
        match self {
            Metric::Euc2d => "EUC_2D",
            Metric::Ceil2d => "CEIL_2D",
            Metric::Att => "ATT",
            Metric::Geo => "GEO",
            Metric::Explicit(..) => "EXPLICIT",
            Metric::Max2d => "MAX_2D",
            Metric::Man2d => "MAN_2D",
        }
    }

    /// Distance between two points under this metric.
    ///
    /// For [`Metric::Explicit`] the *indices* must be supplied via
    /// [`Metric::explicit_distance`]; this method panics if called on an
    /// explicit metric because the coordinates carry no information.
    #[inline]
    pub fn distance(&self, a: Point, b: Point) -> i64 {
        match self {
            Metric::Euc2d => euc_2d(a, b),
            Metric::Ceil2d => ceil_2d(a, b),
            Metric::Att => att(a, b),
            Metric::Geo => geo(a, b),
            Metric::Max2d => max_2d(a, b),
            Metric::Man2d => man_2d(a, b),
            Metric::Explicit(..) => {
                panic!("explicit metric requires index-based lookup, not coordinates")
            }
        }
    }

    /// Distance between two cities of an explicit-matrix metric.
    #[inline]
    pub fn explicit_distance(&self, i: usize, j: usize) -> i64 {
        match self {
            Metric::Explicit(m, n) => m[i * n + j],
            _ => panic!("explicit_distance called on coordinate metric"),
        }
    }

    /// Whether distances are derived from 2-D coordinates (true for all
    /// variants except [`Metric::Explicit`]).
    pub fn is_geometric(&self) -> bool {
        !matches!(self, Metric::Explicit(..))
    }
}

/// TSPLIB `nint`: round half away from zero.
///
/// Every input in this module is a nonnegative distance, where
/// `floor(x + 0.5)` equals truncation — and `as i64` is a single
/// `cvttsd2si` where `floor` is a libm call on baseline x86-64, which
/// makes this the difference between a rounding instruction and a
/// function call on the engine's hottest path.
#[inline(always)]
fn nint(x: f64) -> i64 {
    debug_assert!(x >= 0.0, "nint is truncation-based, nonnegative only");
    (x + 0.5) as i64
}

/// `EUC_2D`: Euclidean distance rounded to nearest integer.
#[inline(always)]
pub fn euc_2d(a: Point, b: Point) -> i64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    nint((dx * dx + dy * dy).sqrt())
}

/// `CEIL_2D`: Euclidean distance rounded up.
#[inline(always)]
pub fn ceil_2d(a: Point, b: Point) -> i64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    (dx * dx + dy * dy).sqrt().ceil() as i64
}

/// `MAX_2D`: Chebyshev (L∞) distance.
#[inline(always)]
pub fn max_2d(a: Point, b: Point) -> i64 {
    let dx = nint((a.x - b.x).abs());
    let dy = nint((a.y - b.y).abs());
    dx.max(dy)
}

/// `MAN_2D`: Manhattan (L1) distance rounded to nearest integer.
#[inline(always)]
pub fn man_2d(a: Point, b: Point) -> i64 {
    nint((a.x - b.x).abs() + (a.y - b.y).abs())
}

/// `ATT`: the pseudo-Euclidean metric of TSPLIB (att48, att532).
#[inline(always)]
pub fn att(a: Point, b: Point) -> i64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    let r = ((dx * dx + dy * dy) / 10.0).sqrt();
    let t = nint(r);
    if (t as f64) < r {
        t + 1
    } else {
        t
    }
}

/// Convert a TSPLIB DDD.MM coordinate to radians per the GEO rules.
#[inline]
fn geo_radians(coord: f64) -> f64 {
    let deg = coord.trunc();
    let min = coord - deg;
    std::f64::consts::PI * (deg + 5.0 * min / 3.0) / 180.0
}

/// `GEO`: geographical distance in kilometres on the idealized sphere.
#[inline]
pub fn geo(a: Point, b: Point) -> i64 {
    let lat_a = geo_radians(a.x);
    let lon_a = geo_radians(a.y);
    let lat_b = geo_radians(b.x);
    let lon_b = geo_radians(b.y);
    let q1 = (lon_a - lon_b).cos();
    let q2 = (lat_a - lat_b).cos();
    let q3 = (lat_a + lat_b).cos();
    (GEO_EARTH_RADIUS * (0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)).acos() + 1.0) as i64
}

/// Structure-of-arrays coordinate block for batched distance kernels.
///
/// Candidate-list construction evaluates millions of (city, candidate)
/// distances; going through `Instance::dist` costs one metric-enum match
/// and one 16-byte `Point` struct load per pair. This layout hoists the
/// match out of the loop and streams the x/y coordinates from two flat
/// `f64` arrays, which the compiler can keep in vector registers for the
/// Euclidean-family metrics.
///
/// Results are bit-identical to the scalar path: each per-pair formula
/// is the very same `#[inline(always)]` free function
/// ([`euc_2d`], [`ceil_2d`], …) applied to the same coordinates.
#[derive(Debug, Clone)]
pub struct SoaCoords {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SoaCoords {
    /// Transpose an array-of-structs point slice into SoA form.
    pub fn from_points(pts: &[Point]) -> Self {
        SoaCoords {
            xs: pts.iter().map(|p| p.x).collect(),
            ys: pts.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The coordinates of city `i`.
    #[inline(always)]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Fill `out[i]` with the metric distance from `origin` to city
    /// `cands[i]` for every candidate.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cands.len()` or `metric` is
    /// [`Metric::Explicit`] (matrix metrics have no coordinates).
    pub fn batch_dists(&self, metric: &Metric, origin: Point, cands: &[u32], out: &mut [i64]) {
        assert_eq!(cands.len(), out.len(), "output slice must match candidates");
        // One match per batch, then a tight per-metric loop over the
        // flat coordinate arrays.
        macro_rules! batch {
            ($f:ident) => {
                for (o, &c) in out.iter_mut().zip(cands) {
                    let c = c as usize;
                    *o = $f(origin, Point::new(self.xs[c], self.ys[c]));
                }
            };
        }
        match metric {
            Metric::Euc2d => batch!(euc_2d),
            Metric::Ceil2d => batch!(ceil_2d),
            Metric::Att => batch!(att),
            Metric::Geo => batch!(geo),
            Metric::Max2d => batch!(max_2d),
            Metric::Man2d => batch!(man_2d),
            Metric::Explicit(..) => {
                panic!("explicit metric requires index-based lookup, not coordinates")
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    #[test]
    fn euc_2d_rounds_to_nearest() {
        assert_eq!(euc_2d(p(0.0, 0.0), p(3.0, 4.0)), 5);
        // sqrt(2) = 1.414... rounds to 1
        assert_eq!(euc_2d(p(0.0, 0.0), p(1.0, 1.0)), 1);
        // sqrt(8) = 2.828... rounds to 3
        assert_eq!(euc_2d(p(0.0, 0.0), p(2.0, 2.0)), 3);
        assert_eq!(euc_2d(p(0.0, 0.0), p(0.0, 0.0)), 0);
    }

    #[test]
    fn ceil_2d_rounds_up() {
        assert_eq!(ceil_2d(p(0.0, 0.0), p(1.0, 1.0)), 2);
        assert_eq!(ceil_2d(p(0.0, 0.0), p(3.0, 4.0)), 5);
        assert_eq!(ceil_2d(p(0.0, 0.0), p(0.0, 0.0)), 0);
    }

    #[test]
    fn max_and_man() {
        assert_eq!(max_2d(p(0.0, 0.0), p(3.0, 4.0)), 4);
        assert_eq!(man_2d(p(0.0, 0.0), p(3.0, 4.0)), 7);
    }

    #[test]
    fn att_is_at_least_scaled_euclidean() {
        // ATT distance is ceil-like on sqrt(d^2/10).
        let d = att(p(0.0, 0.0), p(10.0, 0.0));
        // sqrt(100/10) = sqrt(10) = 3.162..., nint = 3, 3 < 3.162 -> 4
        assert_eq!(d, 4);
    }

    #[test]
    fn att_exact_integer_not_bumped() {
        // dx = 10 => sqrt(1000/10) = 10 exactly; nint(10)=10, not bumped.
        let d = att(p(0.0, 0.0), p(0.0, 31.622_776_601_683_793));
        // sqrt(31.62..^2/10) = sqrt(99.999..) ~ 10.0 (slightly below),
        // nint = 10, 10 >= r -> stays 10
        assert_eq!(d, 10);
    }

    #[test]
    fn geo_matches_tsplib_reference_shape() {
        // Two identical points: distance 1 km (the +1.0 in the formula
        // truncates acos(1)=0 to 0, +1.0 -> 1). TSPLIB's own reference
        // code produces 0 only via acos rounding; accept 0 or 1 here and
        // pin symmetry instead.
        let a = p(49.45, 7.75); // Kaiserslautern-ish, DDD.MM
        let b = p(52.30, 13.25); // Berlin-ish
        let d1 = geo(a, b);
        let d2 = geo(b, a);
        assert_eq!(d1, d2);
        assert!(d1 > 300 && d1 < 600, "Kaiserslautern-Berlin ~ 400-450 km, got {d1}");
    }

    #[test]
    fn metric_dispatch() {
        let m = Metric::Euc2d;
        assert_eq!(m.distance(p(0.0, 0.0), p(3.0, 4.0)), 5);
        assert_eq!(m.tsplib_name(), "EUC_2D");
        assert!(m.is_geometric());
    }

    #[test]
    fn explicit_lookup() {
        let m = Metric::Explicit(vec![0, 2, 2, 0], 2);
        assert_eq!(m.explicit_distance(0, 1), 2);
        assert_eq!(m.explicit_distance(1, 1), 0);
        assert!(!m.is_geometric());
        assert_eq!(m.tsplib_name(), "EXPLICIT");
    }

    #[test]
    #[should_panic(expected = "explicit metric requires index-based lookup")]
    fn explicit_coordinate_distance_panics() {
        Metric::Explicit(vec![0], 1).distance(p(0.0, 0.0), p(1.0, 1.0));
    }

    #[test]
    fn batch_dists_bit_identical_to_scalar() {
        let pts: Vec<Point> = (0..64)
            .map(|i| p((i as f64 * 37.5) % 911.0, (i as f64 * 91.25) % 733.0))
            .collect();
        let soa = SoaCoords::from_points(&pts);
        assert_eq!(soa.len(), 64);
        let cands: Vec<u32> = (0..64u32).rev().collect();
        let mut out = vec![0i64; cands.len()];
        for m in [
            Metric::Euc2d,
            Metric::Ceil2d,
            Metric::Att,
            Metric::Max2d,
            Metric::Man2d,
        ] {
            for origin in [0usize, 17, 63] {
                soa.batch_dists(&m, pts[origin], &cands, &mut out);
                for (k, &c) in cands.iter().enumerate() {
                    assert_eq!(out[k], m.distance(pts[origin], pts[c as usize]), "{m:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "explicit metric requires index-based lookup")]
    fn batch_dists_rejects_explicit() {
        let soa = SoaCoords::from_points(&[p(0.0, 0.0), p(1.0, 0.0)]);
        let mut out = [0i64; 1];
        soa.batch_dists(&Metric::Explicit(vec![0, 1, 1, 0], 2), p(0.0, 0.0), &[1], &mut out);
    }

    #[test]
    fn symmetry_across_metrics() {
        let pts = [p(1.5, 2.5), p(-3.0, 4.0), p(100.25, -7.75)];
        for m in [Metric::Euc2d, Metric::Ceil2d, Metric::Att, Metric::Max2d, Metric::Man2d] {
            for &a in &pts {
                for &b in &pts {
                    assert_eq!(m.distance(a, b), m.distance(b, a), "{m:?}");
                }
            }
        }
    }
}
