//! k-nearest-neighbor candidate lists.
//!
//! Lin-Kernighan style searches never scan all `n` cities when extending
//! a move; they consult a fixed-size candidate list per city (Concorde's
//! default is 10–12 quadrant/nearest neighbors). [`NeighborLists`] stores
//! the lists in one flat array (CSR-like, `k` entries per city) for cache
//! friendliness, built from either spatial index, or by brute force for
//! explicit-matrix instances.

use crate::grid::Grid;
use crate::instance::Instance;
use crate::kdtree::KdTree;

/// Flat `k`-nearest-neighbor lists for every city.
#[derive(Debug, Clone)]
pub struct NeighborLists {
    k: usize,
    flat: Vec<u32>,
}

impl NeighborLists {
    /// Build lists of `k` nearest neighbors per city using the k-d tree
    /// (exact, robust on clustered data).
    pub fn build(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        if !inst.metric().is_geometric() {
            return Self::build_brute_force(inst, k);
        }
        let tree = KdTree::build(inst);
        let mut flat = vec![0u32; n * k];
        for c in 0..n {
            let nn = tree.k_nearest(c, k);
            debug_assert_eq!(nn.len(), k);
            flat[c * k..(c + 1) * k].copy_from_slice(&nn);
        }
        NeighborLists { k, flat }
    }

    /// Build lists via the uniform grid (fast on uniform data; falls back
    /// to the same exact semantics).
    pub fn build_with_grid(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        if !inst.metric().is_geometric() {
            return Self::build_brute_force(inst, k);
        }
        let grid = Grid::build(inst);
        let mut flat = vec![0u32; n * k];
        for c in 0..n {
            let nn = grid.k_nearest(inst, c, k);
            debug_assert_eq!(nn.len(), k);
            flat[c * k..(c + 1) * k].copy_from_slice(&nn);
        }
        NeighborLists { k, flat }
    }

    /// O(n² log n) fallback for explicit-matrix instances, ordered by the
    /// instance metric itself.
    pub fn build_brute_force(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        let mut flat = vec![0u32; n * k];
        let mut scratch: Vec<u32> = Vec::with_capacity(n - 1);
        for c in 0..n {
            scratch.clear();
            scratch.extend((0..n as u32).filter(|&o| o as usize != c));
            scratch.sort_by_key(|&o| (inst.dist(c, o as usize), o));
            flat[c * k..(c + 1) * k].copy_from_slice(&scratch[..k]);
        }
        NeighborLists { k, flat }
    }

    /// Construct from precomputed flat lists (used by the α-nearness
    /// builder in the `heldkarp` crate).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` is not a multiple of `k`.
    pub fn from_flat(k: usize, flat: Vec<u32>) -> Self {
        assert!(k > 0 && flat.len().is_multiple_of(k), "flat length must be n*k");
        NeighborLists { k, flat }
    }

    /// Candidates of city `c`, nearest first.
    #[inline(always)]
    pub fn of(&self, c: usize) -> &[u32] {
        &self.flat[c * self.k..(c + 1) * self.k]
    }

    /// List length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cities covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len() / self.k
    }

    /// Never empty for valid instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Point;
    use crate::metric::Metric;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Instance::new("rand", pts, Metric::Euc2d)
    }

    #[test]
    fn kdtree_and_grid_agree_on_distances() {
        let inst = random_instance(150, 8);
        let a = NeighborLists::build(&inst, 6);
        let b = NeighborLists::build_with_grid(&inst, 6);
        for c in 0..150 {
            let da: Vec<i64> = a.of(c).iter().map(|&o| inst.dist(c, o as usize)).collect();
            let db: Vec<i64> = b.of(c).iter().map(|&o| inst.dist(c, o as usize)).collect();
            assert_eq!(da, db, "city {c}");
        }
    }

    #[test]
    fn lists_sorted_by_distance() {
        let inst = random_instance(100, 9);
        let nl = NeighborLists::build(&inst, 8);
        for c in 0..100 {
            let ds: Vec<f64> = nl
                .of(c)
                .iter()
                .map(|&o| inst.point(o as usize).sq_dist(&inst.point(c)))
                .collect();
            for w in ds.windows(2) {
                assert!(w[0] <= w[1], "city {c} list not sorted");
            }
        }
    }

    #[test]
    fn k_clamped_to_n_minus_1() {
        let inst = random_instance(5, 1);
        let nl = NeighborLists::build(&inst, 50);
        assert_eq!(nl.k(), 4);
        assert_eq!(nl.len(), 5);
    }

    #[test]
    fn brute_force_for_explicit() {
        #[rustfmt::skip]
        let m = vec![
            0, 5, 2, 9,
            5, 0, 4, 1,
            2, 4, 0, 7,
            9, 1, 7, 0,
        ];
        let inst = Instance::explicit("m4", m, 4);
        let nl = NeighborLists::build(&inst, 2);
        assert_eq!(nl.of(0), &[2, 1]);
        assert_eq!(nl.of(1), &[3, 2]);
        assert_eq!(nl.of(3), &[1, 2]);
    }

    #[test]
    fn no_self_loops() {
        let inst = random_instance(80, 10);
        let nl = NeighborLists::build(&inst, 10);
        for c in 0..80 {
            assert!(!nl.of(c).contains(&(c as u32)));
        }
    }

    #[test]
    fn from_flat_roundtrip() {
        let nl = NeighborLists::from_flat(2, vec![1, 2, 0, 2, 0, 1]);
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.of(1), &[0, 2]);
    }
}
