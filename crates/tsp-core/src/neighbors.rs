//! k-nearest-neighbor candidate lists.
//!
//! Lin-Kernighan style searches never scan all `n` cities when extending
//! a move; they consult a fixed-size candidate list per city (Concorde's
//! default is 10–12 quadrant/nearest neighbors). [`NeighborLists`] stores
//! the lists in one flat array (CSR-like, `k` entries per city) for cache
//! friendliness, built from either spatial index, or by brute force for
//! explicit-matrix instances.
//!
//! Next to each neighbor id the structure caches the exact metric
//! distance in a parallel `i64` array, so candidate scans in the LK
//! inner loops read a precomputed value instead of recomputing sqrt
//! (EUC_2D) or trig (GEO) per probe. Construction chunks the per-city
//! k-NN queries across scoped threads — the serial pass is a visible
//! startup cost at pla85900 scale.

use crate::grid::Grid;
use crate::instance::Instance;
use crate::kdtree::KdTree;
use crate::metric::SoaCoords;

/// Below this many cities the build stays serial: thread spawn overhead
/// would dominate the k-NN work.
const PARALLEL_MIN_CITIES: usize = 2_048;

/// Flat `k`-nearest-neighbor lists for every city, with the metric
/// distance to each neighbor cached alongside.
#[derive(Debug, Clone)]
pub struct NeighborLists {
    k: usize,
    flat: Vec<u32>,
    /// `dists[c*k + j] == inst.dist(c, flat[c*k + j])`, CSR-parallel to
    /// `flat`. For α-nearness lists the *order* follows α, but the
    /// cached values are still true metric distances.
    dists: Vec<i64>,
}

impl NeighborLists {
    /// Build lists of `k` nearest neighbors per city using the k-d tree
    /// (exact, robust on clustered data).
    pub fn build(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        if !inst.metric().is_geometric() {
            return Self::build_brute_force(inst, k);
        }
        let tree = KdTree::build(inst);
        Self::build_with(inst, k, &|c| tree.k_nearest(c, k))
    }

    /// Build lists via the uniform grid (fast on uniform data; falls back
    /// to the same exact semantics).
    pub fn build_with_grid(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        if !inst.metric().is_geometric() {
            return Self::build_brute_force(inst, k);
        }
        let grid = Grid::build(inst);
        Self::build_with(inst, k, &|c| grid.k_nearest(inst, c, k))
    }

    /// O(n² log n) fallback, ordered by the instance metric itself for
    /// explicit matrices and by unrounded squared Euclidean distance for
    /// geometric instances — the latter matches the `(dist, id)` order
    /// of the k-d tree and grid queries exactly, so all three builders
    /// produce identical candidate ids.
    pub fn build_brute_force(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n - 1);
        let geometric = inst.metric().is_geometric();
        Self::build_with(inst, k, &|c| {
            let mut all: Vec<u32> = (0..n as u32).filter(|&o| o as usize != c).collect();
            if geometric {
                let p = inst.point(c);
                all.sort_by(|&a, &b| {
                    inst.point(a as usize)
                        .sq_dist(&p)
                        .partial_cmp(&inst.point(b as usize).sq_dist(&p))
                        .unwrap()
                        .then(a.cmp(&b))
                });
            } else {
                all.sort_by_key(|&o| (inst.dist(c, o as usize), o));
            }
            all.truncate(k);
            all
        })
    }

    /// Shared builder: run `query` for every city (in parallel chunks
    /// when the instance is large enough) and cache the metric distance
    /// of each returned neighbor.
    fn build_with<F>(inst: &Instance, k: usize, query: &F) -> Self
    where
        F: Fn(usize) -> Vec<u32> + Sync,
    {
        let n = inst.len();
        let mut flat = vec![0u32; n * k];
        let mut dists = vec![0i64; n * k];
        // SoA transpose once; the distance-caching loop then runs the
        // batched kernel instead of n*k dispatched Instance::dist calls.
        let soa = inst
            .metric()
            .is_geometric()
            .then(|| SoaCoords::from_points(inst.points()));
        let soa = soa.as_ref();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(16);
        if threads <= 1 || n < PARALLEL_MIN_CITIES {
            Self::fill_chunk(inst, soa, k, 0, &mut flat, &mut dists, query);
        } else {
            let per = n.div_ceil(threads);
            std::thread::scope(|s| {
                for (i, (fc, dc)) in flat
                    .chunks_mut(per * k)
                    .zip(dists.chunks_mut(per * k))
                    .enumerate()
                {
                    s.spawn(move || Self::fill_chunk(inst, soa, k, i * per, fc, dc, query));
                }
            });
        }
        NeighborLists { k, flat, dists }
    }

    /// Fill the lists for cities `base .. base + chunk_len/k`.
    fn fill_chunk<F>(
        inst: &Instance,
        soa: Option<&SoaCoords>,
        k: usize,
        base: usize,
        flat: &mut [u32],
        dists: &mut [i64],
        query: &F,
    ) where
        F: Fn(usize) -> Vec<u32>,
    {
        for i in 0..flat.len() / k {
            let c = base + i;
            let nn = query(c);
            debug_assert_eq!(nn.len(), k);
            flat[i * k..(i + 1) * k].copy_from_slice(&nn);
            match soa {
                Some(soa) => soa.batch_dists(
                    inst.metric(),
                    inst.point(c),
                    &nn,
                    &mut dists[i * k..(i + 1) * k],
                ),
                None => {
                    for (j, &o) in nn.iter().enumerate() {
                        dists[i * k + j] = inst.dist(c, o as usize);
                    }
                }
            }
        }
    }

    /// Construct from precomputed flat lists (used by the α-nearness
    /// builder in the `heldkarp` crate). Distances are cached from the
    /// instance metric — the list *order* may follow another key (α),
    /// but the cached values are always `inst.dist`.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != inst.len() * k`.
    pub fn from_flat(inst: &Instance, k: usize, flat: Vec<u32>) -> Self {
        assert!(
            k > 0 && flat.len() == inst.len() * k,
            "flat length must be n*k"
        );
        let mut dists = vec![0i64; flat.len()];
        for c in 0..inst.len() {
            for j in 0..k {
                dists[c * k + j] = inst.dist(c, flat[c * k + j] as usize);
            }
        }
        NeighborLists { k, flat, dists }
    }

    /// Candidates of city `c`, nearest first.
    #[inline(always)]
    pub fn of(&self, c: usize) -> &[u32] {
        &self.flat[c * self.k..(c + 1) * self.k]
    }

    /// Candidates of city `c` with their cached metric distances.
    #[inline(always)]
    pub fn of_with_dists(&self, c: usize) -> (&[u32], &[i64]) {
        let range = c * self.k..(c + 1) * self.k;
        (&self.flat[range.clone()], &self.dists[range])
    }

    /// Cached distances to the candidates of city `c` (parallel to
    /// [`Self::of`]).
    #[inline(always)]
    pub fn dists_of(&self, c: usize) -> &[i64] {
        &self.dists[c * self.k..(c + 1) * self.k]
    }

    /// List length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cities covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len() / self.k
    }

    /// Never empty for valid instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Point;
    use crate::metric::Metric;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Instance::new("rand", pts, Metric::Euc2d)
    }

    #[test]
    fn kdtree_and_grid_agree_on_distances() {
        // Stronger than distance agreement: the candidate *ids* must be
        // identical across the k-d tree, the grid, and brute force —
        // fixed-seed runs must not depend on the spatial index used.
        let inst = random_instance(150, 8);
        let a = NeighborLists::build(&inst, 6);
        let b = NeighborLists::build_with_grid(&inst, 6);
        let c3 = NeighborLists::build_brute_force(&inst, 6);
        for c in 0..150 {
            assert_eq!(a.of(c), b.of(c), "kdtree vs grid, city {c}");
            assert_eq!(a.of(c), c3.of(c), "kdtree vs brute, city {c}");
        }
    }

    #[test]
    fn builders_agree_on_ids_under_heavy_ties() {
        // A lattice is all ties: each city has 4 neighbors at d, 4 at
        // d√2, 4 at 2d... Every builder must resolve them to the same
        // (dist, id)-sorted prefix.
        let mut pts = Vec::new();
        for y in 0..11 {
            for x in 0..11 {
                pts.push(Point::new(x as f64 * 7.0, y as f64 * 7.0));
            }
        }
        let inst = Instance::new("lattice", pts, Metric::Euc2d);
        let tree = NeighborLists::build(&inst, 6);
        let grid = NeighborLists::build_with_grid(&inst, 6);
        let brute = NeighborLists::build_brute_force(&inst, 6);
        for c in 0..121 {
            assert_eq!(tree.of(c), brute.of(c), "kdtree vs brute, city {c}");
            assert_eq!(grid.of(c), brute.of(c), "grid vs brute, city {c}");
        }
    }

    #[test]
    fn lists_sorted_by_distance() {
        let inst = random_instance(100, 9);
        let nl = NeighborLists::build(&inst, 8);
        for c in 0..100 {
            let ds: Vec<f64> = nl
                .of(c)
                .iter()
                .map(|&o| inst.point(o as usize).sq_dist(&inst.point(c)))
                .collect();
            for w in ds.windows(2) {
                assert!(w[0] <= w[1], "city {c} list not sorted");
            }
        }
    }

    #[test]
    fn cached_distances_match_instance_metric() {
        let inst = random_instance(120, 14);
        for nl in [
            NeighborLists::build(&inst, 7),
            NeighborLists::build_with_grid(&inst, 7),
        ] {
            for c in 0..120 {
                let (ids, ds) = nl.of_with_dists(c);
                assert_eq!(ids.len(), ds.len());
                for (j, (&o, &d)) in ids.iter().zip(ds).enumerate() {
                    assert_eq!(d, inst.dist(c, o as usize), "city {c} cand {j}");
                }
                assert_eq!(nl.dists_of(c), ds);
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_semantics() {
        // Large enough to cross PARALLEL_MIN_CITIES on multi-core hosts.
        let inst = random_instance(3_000, 21);
        let nl = NeighborLists::build(&inst, 5);
        assert_eq!(nl.len(), 3_000);
        let tree = KdTree::build(&inst);
        for c in (0..3_000).step_by(97) {
            assert_eq!(nl.of(c), &tree.k_nearest(c, 5)[..], "city {c}");
            for (&o, &d) in nl.of(c).iter().zip(nl.dists_of(c)) {
                assert_eq!(d, inst.dist(c, o as usize));
            }
        }
    }

    #[test]
    fn k_clamped_to_n_minus_1() {
        let inst = random_instance(5, 1);
        let nl = NeighborLists::build(&inst, 50);
        assert_eq!(nl.k(), 4);
        assert_eq!(nl.len(), 5);
    }

    #[test]
    fn brute_force_for_explicit() {
        #[rustfmt::skip]
        let m = vec![
            0, 5, 2, 9,
            5, 0, 4, 1,
            2, 4, 0, 7,
            9, 1, 7, 0,
        ];
        let inst = Instance::explicit("m4", m, 4);
        let nl = NeighborLists::build(&inst, 2);
        assert_eq!(nl.of(0), &[2, 1]);
        assert_eq!(nl.of(1), &[3, 2]);
        assert_eq!(nl.of(3), &[1, 2]);
        assert_eq!(nl.dists_of(0), &[2, 5]);
    }

    #[test]
    fn no_self_loops() {
        let inst = random_instance(80, 10);
        let nl = NeighborLists::build(&inst, 10);
        for c in 0..80 {
            assert!(!nl.of(c).contains(&(c as u32)));
        }
    }

    #[test]
    fn from_flat_roundtrip() {
        let inst = random_instance(3, 2);
        let nl = NeighborLists::from_flat(&inst, 2, vec![1, 2, 0, 2, 0, 1]);
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.of(1), &[0, 2]);
        assert_eq!(nl.dists_of(1)[0], inst.dist(1, 0));
        assert_eq!(nl.dists_of(1)[1], inst.dist(1, 2));
    }
}
