//! Uniform spatial grid over the instance bounding box.
//!
//! The grid buckets cities into roughly `n` rectangular cells, so a
//! k-nearest-neighbor query expands rings of cells around the query
//! point and inspects O(k) candidates on uniform-ish data. It is the
//! cheap workhorse behind candidate-list construction; the k-d tree in
//! [`crate::kdtree`] covers strongly non-uniform data (clustered or
//! drill-plate instances) where grid occupancy degenerates.
//!
//! Cell sizes are chosen *per axis* and the grid dimensions are clamped
//! to `O(√n)` cells per axis, so degenerate inputs (e.g. collinear
//! cities) cannot blow the cell count up.

use crate::instance::{Instance, Point};

/// A bucketed uniform grid over 2-D city coordinates.
#[derive(Debug)]
pub struct Grid {
    min_x: f64,
    min_y: f64,
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `items` for cell `c`.
    starts: Vec<u32>,
    items: Vec<u32>,
}

impl Grid {
    /// Build a grid over all cities of a geometric instance.
    ///
    /// # Panics
    ///
    /// Panics if the instance metric is not geometric.
    pub fn build(inst: &Instance) -> Self {
        assert!(
            inst.metric().is_geometric(),
            "spatial grid requires coordinates"
        );
        let pts = inst.points();
        let n = pts.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in pts {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let width = (max_x - min_x).max(1e-9);
        let height = (max_y - min_y).max(1e-9);
        // Aim for ~1 city per cell, but never more than ~4√n cells per
        // axis: extreme aspect ratios would otherwise explode the cell
        // count (collinear data ⇒ height → 0 ⇒ millions of columns).
        let per_axis_cap = ((n as f64).sqrt() as usize * 4).max(1);
        let aspect = width / height;
        let target = n.max(1) as f64;
        let cols = ((target * aspect).sqrt().ceil() as usize).clamp(1, per_axis_cap);
        let rows = ((target / aspect).sqrt().ceil() as usize).clamp(1, per_axis_cap);
        let cell_w = width / cols as f64;
        let cell_h = height / rows as f64;

        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / cell_w) as usize).min(cols - 1);
            let cy = (((p.y - min_y) / cell_h) as usize).min(rows - 1);
            cy * cols + cx
        };

        // Counting sort into CSR.
        let ncells = cols * rows;
        let mut counts = vec![0u32; ncells + 1];
        for p in pts {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut items = vec![0u32; n];
        let mut fill = counts;
        for (i, p) in pts.iter().enumerate() {
            let c = cell_of(p);
            items[fill[c] as usize] = i as u32;
            fill[c] += 1;
        }
        Grid {
            min_x,
            min_y,
            cell_w,
            cell_h,
            cols,
            rows,
            starts,
            items,
        }
    }

    /// Cities in the grid cell containing `p` and the `ring` cells around
    /// it, appended to `out`.
    fn collect_ring(&self, p: Point, ring: usize, out: &mut Vec<u32>) {
        let cx = (((p.x - self.min_x) / self.cell_w) as isize).clamp(0, self.cols as isize - 1);
        let cy = (((p.y - self.min_y) / self.cell_h) as isize).clamp(0, self.rows as isize - 1);
        let r = ring as isize;
        for gy in (cy - r)..=(cy + r) {
            if gy < 0 || gy >= self.rows as isize {
                continue;
            }
            for gx in (cx - r)..=(cx + r) {
                if gx < 0 || gx >= self.cols as isize {
                    continue;
                }
                // Only the *border* of the ring (inner rings were already
                // collected by smaller `ring` values).
                if ring > 0 && (gy - cy).abs() != r && (gx - cx).abs() != r {
                    continue;
                }
                let c = gy as usize * self.cols + gx as usize;
                let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                out.extend_from_slice(&self.items[s..e]);
            }
        }
    }

    /// Ring radius beyond which every city is at least `ring *
    /// effective_cell` away from any point in the query's cell.
    fn safe_cell(&self) -> f64 {
        // Expansion happens along both axes; out-of-bounds rows/cols cost
        // nothing, so the binding axis is the one that still has cells.
        if self.rows == 1 {
            self.cell_w
        } else if self.cols == 1 {
            self.cell_h
        } else {
            self.cell_w.min(self.cell_h)
        }
    }

    /// The `k` nearest cities to city `query` (excluding itself), by
    /// unrounded squared Euclidean distance, closest first, ties broken
    /// by city id — the `(dist, id)` order every candidate-list builder
    /// agrees on.
    pub fn k_nearest(&self, inst: &Instance, query: usize, k: usize) -> Vec<u32> {
        let p = inst.point(query);
        let max_ring = self.cols.max(self.rows);
        let mut cands: Vec<u32> = Vec::with_capacity(4 * k);
        let mut ring = 0usize;
        let safe_cell = self.safe_cell();
        // Expand rings until the k-th best distance found so far is
        // certainly closer than anything a further ring could contain: a
        // city in a cell at ring r+1 or beyond is at least r*cell away
        // from any point of the query's cell.
        while ring <= max_ring {
            self.collect_ring(p, ring, &mut cands);
            if cands.len() > k {
                let mut dists: Vec<f64> = cands
                    .iter()
                    .filter(|&&c| c as usize != query)
                    .map(|&c| inst.point(c as usize).sq_dist(&p))
                    .collect();
                if dists.len() >= k {
                    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let dk = dists[k - 1];
                    let safe = ring as f64 * safe_cell;
                    // Strict `<`: at exactly the safe radius a further
                    // ring can still hold a city tied on distance whose
                    // lower id must win the (dist, id) tie-break shared
                    // with the k-d tree and brute-force builders.
                    if dk < safe * safe {
                        break;
                    }
                }
            }
            ring += 1;
        }
        cands.retain(|&c| c as usize != query);
        cands.sort_by(|&a, &b| {
            let da = inst.point(a as usize).sq_dist(&p);
            let db = inst.point(b as usize).sq_dist(&p);
            da.partial_cmp(&db).unwrap().then(a.cmp(&b))
        });
        cands.truncate(k);
        cands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Point;
    use crate::metric::Metric;

    fn line_instance(n: usize) -> Instance {
        let pts = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        Instance::new("line", pts, Metric::Euc2d)
    }

    #[test]
    fn nearest_on_a_line() {
        let inst = line_instance(20);
        let g = Grid::build(&inst);
        let nn = g.k_nearest(&inst, 5, 2);
        assert_eq!(nn.len(), 2);
        let set: std::collections::HashSet<u32> = nn.into_iter().collect();
        assert_eq!(set, [4u32, 6u32].into_iter().collect());
    }

    #[test]
    fn boundary_cities() {
        let inst = line_instance(20);
        let g = Grid::build(&inst);
        let nn = g.k_nearest(&inst, 0, 3);
        assert_eq!(nn, vec![1, 2, 3]);
        let nn = g.k_nearest(&inst, 19, 3);
        assert_eq!(nn, vec![18, 17, 16]);
    }

    #[test]
    fn k_larger_than_n() {
        let inst = line_instance(5);
        let g = Grid::build(&inst);
        let nn = g.k_nearest(&inst, 2, 10);
        assert_eq!(nn.len(), 4); // everyone but the query
    }

    #[test]
    fn degenerate_collinear_data_is_fast() {
        // 2000 cities on a line: grid dimensions must stay clamped and
        // queries must return instantly (regression test for a blow-up
        // where height → 0 produced ~10^5 columns).
        let inst = line_instance(2000);
        let g = Grid::build(&inst);
        assert!(g.cols <= 4 * 45 + 1, "cols {} not clamped", g.cols);
        let start = std::time::Instant::now();
        for q in [0usize, 999, 1999] {
            let nn = g.k_nearest(&inst, q, 8);
            assert_eq!(nn.len(), 8);
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "degenerate grid too slow"
        );
    }

    #[test]
    fn matches_brute_force() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let inst = Instance::new("rand200", pts, Metric::Euc2d);
        let g = Grid::build(&inst);
        for q in [0usize, 17, 99, 199] {
            let got = g.k_nearest(&inst, q, 8);
            let mut brute: Vec<u32> = (0..200u32).filter(|&c| c as usize != q).collect();
            let qp = inst.point(q);
            brute.sort_by(|&a, &b| {
                inst.point(a as usize)
                    .sq_dist(&qp)
                    .partial_cmp(&inst.point(b as usize).sq_dist(&qp))
                    .unwrap()
                    .then(a.cmp(&b))
            });
            brute.truncate(8);
            assert_eq!(got, brute, "query {q}");
        }
    }

    #[test]
    fn coincident_points_ok() {
        let mut pts = vec![Point::new(5.0, 5.0); 10];
        pts.push(Point::new(6.0, 5.0));
        let inst = Instance::new("dup", pts, Metric::Euc2d);
        let g = Grid::build(&inst);
        let nn = g.k_nearest(&inst, 10, 3);
        assert_eq!(nn.len(), 3);
    }
}
