//! # tsp-core
//!
//! Foundation crate for the `dist-clk` workspace: the data model for
//! symmetric Traveling Salesman Problem instances and tours, exactly as
//! needed by the Chained Lin-Kernighan family of heuristics and by the
//! distributed algorithm of Fischer & Merz (IPPS 2005).
//!
//! ## Contents
//!
//! - [`metric`] — TSPLIB edge-weight functions (`EUC_2D`, `CEIL_2D`,
//!   `ATT`, `GEO`, explicit matrices). All distances are integral
//!   (`i64`), following TSPLIB's rounding rules, so tour lengths are
//!   exact and portable across platforms.
//! - [`instance`] — [`Instance`]: a named set of cities plus a metric.
//! - [`tour`] — [`Tour`]: an array-based cyclic permutation with a
//!   position index, supporting the O(1) queries and segment operations
//!   local search needs, plus the double-bridge move.
//! - [`twolevel`] — [`TwoLevelList`]: the two-level doubly-linked tour
//!   with O(√n) flips, and [`tourops`] — the [`TourOps`]/[`TourRep`]
//!   traits that let local search run on either representation.
//! - [`neighbors`] — k-nearest-neighbor candidate lists with cached
//!   candidate distances.
//! - [`grid`] / [`kdtree`] — the two spatial indexes used to build
//!   candidate lists and to answer nearest-neighbor queries during tour
//!   construction.
//! - [`tsplib`] — a parser and writer for the TSPLIB file format, so
//!   real benchmark instances (fl1577, pr2392, …) drop in when available.
//! - [`generate`] — deterministic synthetic instance generators
//!   mirroring the structure of the paper's testbed (uniform `E`-style,
//!   clustered `C`-style, drill-plate `fl`-style, road-network-like, and
//!   rectangular grids with provably known optima).
//!
//! ## Example
//!
//! ```
//! use tsp_core::{generate, Tour};
//!
//! let inst = generate::uniform(100, 1_000_000.0, 42);
//! let tour = Tour::identity(inst.len());
//! assert_eq!(tour.len(), 100);
//! assert!(tour.is_valid());
//! let total = tour.length(&inst);
//! assert!(total > 0);
//! ```

pub mod generate;
pub mod grid;
pub mod instance;
pub mod kdtree;
pub mod metric;
pub mod neighbors;
pub mod partition;
pub mod tour;
pub mod tourops;
pub mod tsplib;
pub mod twolevel;

pub use instance::{Instance, Point};
pub use metric::{Metric, SoaCoords};
pub use neighbors::NeighborLists;
pub use partition::{Partition, PartitionNode, SubInstance};
pub use tour::Tour;
pub use tourops::{TourOps, TourRep};
pub use twolevel::TwoLevelList;

/// Crate-wide error type.
#[derive(Debug)]
pub enum Error {
    /// I/O failure while reading or writing a TSPLIB file.
    Io(std::io::Error),
    /// The TSPLIB input violated the format (message, line number if known).
    Parse(String, Option<usize>),
    /// The request was structurally invalid (e.g. a tour over the wrong
    /// number of cities).
    Invalid(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse(msg, Some(line)) => write!(f, "parse error at line {line}: {msg}"),
            Error::Parse(msg, None) => write!(f, "parse error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
