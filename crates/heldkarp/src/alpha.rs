//! α-nearness candidate lists (Helsgaun, EJOR 2000).
//!
//! `α(i,j)` is the increase of the minimum 1-tree length when the edge
//! `(i,j)` is required to be in the 1-tree. Edges with small α are
//! likely to be in good tours — Helsgaun showed candidate lists sorted
//! by α dominate plain nearest-neighbor lists for Lin-Kernighan moves.
//! Our `lkh_lite` baseline (standing in for LKH in the paper's Table 2)
//! consumes these lists.
//!
//! For `i, j` both different from the special node `s`:
//! `α(i,j) = c(i,j) − β(i,j)` where `β(i,j)` is the costliest edge on
//! the MST path between `i` and `j`. For edges at `s`:
//! `α(s,j) = c(s,j) − c₂` with `c₂` the second-cheapest edge at `s`.
//! All costs are the π-shifted costs from the ascent.

use tsp_core::{Instance, NeighborLists};

use crate::ascent::{held_karp_bound, AscentConfig};
use crate::mst::shifted_dist;
use crate::onetree::OneTree;

/// Build α-nearness candidate lists of width `k`.
///
/// Runs a Held-Karp ascent first (with `cfg`), then computes α values
/// from the best 1-tree in O(n²) time and O(n) memory per node.
pub fn alpha_candidate_lists(inst: &Instance, k: usize, cfg: &AscentConfig) -> NeighborLists {
    let res = held_karp_bound(inst, cfg);
    alpha_lists_from_tree(inst, &res.pi, &res.one_tree, k)
}

/// α-candidate lists from an existing 1-tree and potentials.
pub fn alpha_lists_from_tree(
    inst: &Instance,
    pi: &[i64],
    tree: &OneTree,
    k: usize,
) -> NeighborLists {
    let n = inst.len();
    let k = k.min(n - 1);
    let s = tree.special;

    // Adjacency of the MST part (excluding the special node's edges).
    let mut adj_heads = vec![u32::MAX; n];
    // Each non-root, non-special vertex contributes one edge (v, parent).
    let mut edge_to = Vec::with_capacity(2 * n);
    let mut edge_next = Vec::with_capacity(2 * n);
    let mut push_edge = |from: usize, to: usize, heads: &mut Vec<u32>| {
        edge_to.push(to as u32);
        edge_next.push(heads[from]);
        heads[from] = (edge_to.len() - 1) as u32;
    };
    for v in 0..n {
        if v == s {
            continue;
        }
        let p = tree.parent[v] as usize;
        if p != v && p != s {
            push_edge(v, p, &mut adj_heads);
            push_edge(p, v, &mut adj_heads);
        }
    }

    // Cheapest and second-cheapest shifted edges at the special node.
    let (mut c1, mut c2) = (i64::MAX, i64::MAX);
    for v in 0..n {
        if v == s {
            continue;
        }
        let d = shifted_dist(inst, pi, s, v);
        if d < c1 {
            c2 = c1;
            c1 = d;
        } else if d < c2 {
            c2 = d;
        }
    }

    let mut flat = vec![0u32; n * k];
    let mut beta = vec![0i64; n];
    let mut stack: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut cand: Vec<(i64, i64, u32)> = Vec::with_capacity(n);

    for i in 0..n {
        cand.clear();
        if i == s {
            // α(s,j) = c(s,j) − c₂ (forcing (s,j) evicts the pricier of
            // the two attachment edges); 0 for the two tree edges.
            for j in 0..n {
                if j == s {
                    continue;
                }
                let c = shifted_dist(inst, pi, s, j);
                let a = (c - c2).max(0);
                cand.push((a, c, j as u32));
            }
        } else {
            // β(i, ·) over the MST via DFS from i; β to the special node
            // handled separately below.
            beta[i] = i64::MIN;
            stack.clear();
            stack.push((i as u32, u32::MAX));
            while let Some((v, from)) = stack.pop() {
                let mut e = adj_heads[v as usize];
                while e != u32::MAX {
                    let u = edge_to[e as usize];
                    if u != from {
                        let w = shifted_dist(inst, pi, v as usize, u as usize);
                        beta[u as usize] = if v as usize == i { w } else { beta[v as usize].max(w) };
                        stack.push((u, v));
                    }
                    e = edge_next[e as usize];
                }
            }
            for (j, &bj) in beta.iter().enumerate().take(n) {
                if j == i {
                    continue;
                }
                let c = shifted_dist(inst, pi, i, j);
                let a = if j == s {
                    (c - c2).max(0)
                } else {
                    (c - bj).max(0)
                };
                cand.push((a, c, j as u32));
            }
        }
        // k smallest by (α, shifted cost, index).
        cand.sort_unstable();
        for (slot, &(_, _, j)) in cand.iter().take(k).enumerate() {
            flat[i * k + slot] = j;
        }
    }

    NeighborLists::from_flat(inst, k, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn tree_edges_have_alpha_zero_and_come_first() {
        let inst = generate::uniform(40, 10_000.0, 3);
        let cfg = AscentConfig {
            max_iterations: 30,
            ..Default::default()
        };
        let res = held_karp_bound(&inst, &cfg);
        let nl = alpha_lists_from_tree(&inst, &res.pi, &res.one_tree, 8);
        // Every 1-tree edge endpoint should list its tree partner among
        // the candidates (α = 0 ranks first or near-first).
        for (a, b) in res.one_tree.edges() {
            assert!(
                nl.of(a).contains(&(b as u32)) || nl.of(b).contains(&(a as u32)),
                "tree edge ({a},{b}) missing from both candidate lists"
            );
        }
    }

    #[test]
    fn lists_have_requested_width() {
        let inst = generate::uniform(30, 10_000.0, 4);
        let nl = alpha_candidate_lists(
            &inst,
            5,
            &AscentConfig {
                max_iterations: 20,
                ..Default::default()
            },
        );
        assert_eq!(nl.k(), 5);
        assert_eq!(nl.len(), 30);
        for c in 0..30 {
            assert!(!nl.of(c).contains(&(c as u32)));
        }
    }

    #[test]
    fn alpha_prefers_short_structural_edges() {
        // Two clusters joined by a bridge: α-lists inside a cluster must
        // stay inside the cluster except for the bridge endpoints.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(tsp_core::Point::new(i as f64 * 10.0, 0.0));
        }
        for i in 0..10 {
            pts.push(tsp_core::Point::new(5_000.0 + i as f64 * 10.0, 0.0));
        }
        let inst = tsp_core::Instance::new("bridge", pts, tsp_core::Metric::Euc2d);
        let nl = alpha_candidate_lists(
            &inst,
            3,
            &AscentConfig {
                max_iterations: 30,
                ..Default::default()
            },
        );
        // City 3 (interior of cluster 0) should only have cluster-0
        // candidates.
        for &c in nl.of(3) {
            assert!((c as usize) < 10, "interior city candidate crossed the bridge");
        }
    }
}
