//! # heldkarp
//!
//! Held-Karp 1-tree lower bound for symmetric TSP instances, plus the
//! α-nearness candidate lists derived from it (Helsgaun's LKH uses these
//! to steer its 5-opt search; our `lkh_lite` baseline does the same).
//!
//! The paper reports tour qualities relative to the optimum *or the
//! Held-Karp lower bound* for instances whose optimum is unknown
//! (fi10639, pla33810, pla85900) — this crate provides that reference
//! value for our synthetic stand-ins.
//!
//! ## Pieces
//!
//! - [`mst`] — Prim's algorithm over the (π-shifted) complete graph.
//! - [`onetree`] — minimum 1-trees: an MST over `V \ {special}` plus the
//!   two cheapest edges incident to the special node.
//! - [`ascent`] — subgradient ascent on the Lagrangian dual: maximizes
//!   `w(π) = len(T_π) − 2·Σπ` over node potentials π.
//! - [`alpha`] — α-nearness: `α(i,j)` is the 1-tree length increase when
//!   edge `(i,j)` is forced into the tree; candidate lists sorted by α
//!   are markedly better than plain nearest neighbors for LK moves.

pub mod alpha;
pub mod ascent;
pub mod mst;
pub mod onetree;

pub use alpha::{alpha_candidate_lists, alpha_lists_from_tree};
pub use ascent::{held_karp_bound, AscentConfig, AscentResult};
pub use onetree::OneTree;
