//! Prim's minimum spanning tree over the complete (π-shifted) graph.
//!
//! For complete graphs the array-based O(n²) Prim is optimal and
//! allocation-free after setup — no priority queue needed (perf-book
//! idiom: flat arrays beat heaps when every node is adjacent to every
//! other).

use tsp_core::Instance;

/// A spanning tree as a parent array: `parent[v]` is `v`'s neighbor on
/// the path to the root; `parent[root] == root`.
#[derive(Debug, Clone)]
pub struct Mst {
    pub parent: Vec<u32>,
    pub root: usize,
    /// Total length under the *shifted* costs used to build the tree.
    pub shifted_len: i64,
}

/// Cost of edge `(i, j)` shifted by node potentials:
/// `d(i,j) + π_i + π_j`. Potentials are kept in fixed-point `i64`
/// (scaled by the caller) so bound computations stay exact.
#[inline(always)]
pub fn shifted_dist(inst: &Instance, pi: &[i64], i: usize, j: usize) -> i64 {
    inst.dist(i, j) + pi[i] + pi[j]
}

/// Prim MST over the vertex subset `verts` (all distinct), under shifted
/// costs. O(|verts|²) time, O(|verts|) space.
///
/// # Panics
///
/// Panics if `verts.len() < 1`.
pub fn prim(inst: &Instance, pi: &[i64], verts: &[u32]) -> Mst {
    let m = verts.len();
    assert!(m >= 1, "MST needs at least one vertex");
    let root = verts[0] as usize;
    // best[k]: cheapest connection cost of verts[k] into the tree;
    // who[k]: the tree endpoint realizing it.
    let mut best = vec![i64::MAX; m];
    let mut who = vec![0u32; m];
    let mut in_tree = vec![false; m];
    let mut parent = vec![u32::MAX; inst.len()];
    parent[root] = root as u32;
    in_tree[0] = true;
    let mut shifted_len = 0i64;
    for k in 1..m {
        let v = verts[k] as usize;
        best[k] = shifted_dist(inst, pi, root, v);
        who[k] = root as u32;
    }
    for _ in 1..m {
        // Pick the cheapest fringe vertex.
        let mut kmin = usize::MAX;
        let mut dmin = i64::MAX;
        for k in 1..m {
            if !in_tree[k] && best[k] < dmin {
                dmin = best[k];
                kmin = k;
            }
        }
        let v = verts[kmin] as usize;
        in_tree[kmin] = true;
        parent[v] = who[kmin];
        shifted_len += dmin;
        // Relax.
        for k in 1..m {
            if !in_tree[k] {
                let u = verts[k] as usize;
                let d = shifted_dist(inst, pi, v, u);
                if d < best[k] {
                    best[k] = d;
                    who[k] = v as u32;
                }
            }
        }
    }
    Mst {
        parent,
        root,
        shifted_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{generate, Instance};

    fn mst_len_brute(inst: &Instance, verts: &[u32]) -> i64 {
        // Kruskal by sorting all edges (test-only reference).
        let m = verts.len();
        let mut edges = Vec::new();
        for a in 0..m {
            for b in (a + 1)..m {
                edges.push((
                    inst.dist(verts[a] as usize, verts[b] as usize),
                    a as u32,
                    b as u32,
                ));
            }
        }
        edges.sort();
        let mut uf: Vec<u32> = (0..m as u32).collect();
        fn find(uf: &mut Vec<u32>, x: u32) -> u32 {
            if uf[x as usize] != x {
                let r = find(uf, uf[x as usize]);
                uf[x as usize] = r;
            }
            uf[x as usize]
        }
        let mut total = 0i64;
        let mut used = 0;
        for (d, a, b) in edges {
            let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
            if ra != rb {
                uf[ra as usize] = rb;
                total += d;
                used += 1;
                if used == m - 1 {
                    break;
                }
            }
        }
        total
    }

    #[test]
    fn prim_matches_kruskal() {
        let inst = generate::uniform(60, 1000.0, 42);
        let pi = vec![0i64; 60];
        let verts: Vec<u32> = (0..60).collect();
        let mst = prim(&inst, &pi, &verts);
        assert_eq!(mst.shifted_len, mst_len_brute(&inst, &verts));
    }

    #[test]
    fn prim_on_subset() {
        let inst = generate::uniform(50, 1000.0, 1);
        let pi = vec![0i64; 50];
        let verts: Vec<u32> = (10..50).collect();
        let mst = prim(&inst, &pi, &verts);
        assert_eq!(mst.shifted_len, mst_len_brute(&inst, &verts));
        // Vertices outside the subset keep no parent.
        assert_eq!(mst.parent[0], u32::MAX);
    }

    #[test]
    fn parent_structure_is_a_tree() {
        let inst = generate::uniform(40, 1000.0, 9);
        let pi = vec![0i64; 40];
        let verts: Vec<u32> = (0..40).collect();
        let mst = prim(&inst, &pi, &verts);
        assert_eq!(mst.parent[mst.root], mst.root as u32);
        // Every vertex reaches the root.
        for v in 0..40usize {
            let mut cur = v;
            let mut steps = 0;
            while cur != mst.root {
                cur = mst.parent[cur] as usize;
                steps += 1;
                assert!(steps <= 40, "cycle in parent array");
            }
        }
    }

    #[test]
    fn potentials_shift_choice() {
        // Three collinear points; a huge potential on the middle point
        // forces the MST to connect the endpoints directly.
        let inst = Instance::new(
            "line3",
            vec![
                tsp_core::Point::new(0.0, 0.0),
                tsp_core::Point::new(1.0, 0.0),
                tsp_core::Point::new(2.0, 0.0),
            ],
            tsp_core::Metric::Euc2d,
        );
        let verts: Vec<u32> = vec![0, 1, 2];
        let no_pi = prim(&inst, &[0, 0, 0], &verts);
        assert_eq!(no_pi.shifted_len, 2); // 0-1, 1-2
        let heavy_mid = prim(&inst, &[0, 100, 0], &verts);
        // Tree must still span, but 0-2 (cost 2) replaces one mid edge.
        assert_eq!(heavy_mid.shifted_len, 2 + 101);
    }
}
