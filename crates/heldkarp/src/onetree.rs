//! Minimum 1-trees.
//!
//! A *1-tree* rooted at a special node `s` is a spanning tree over
//! `V \ {s}` plus the two cheapest edges incident to `s`. Every tour is
//! a 1-tree, so the minimum 1-tree length is a lower bound on the
//! optimal tour; Held & Karp sharpen it with node potentials (see
//! [`crate::ascent`]).

use tsp_core::Instance;

use crate::mst::{prim, shifted_dist};

/// A minimum 1-tree under shifted costs.
#[derive(Debug, Clone)]
pub struct OneTree {
    /// Special node (excluded from the MST, reattached by its two
    /// cheapest edges).
    pub special: usize,
    /// MST parent array over `V \ {special}` (parent[special] is one of
    /// its two attachment points).
    pub parent: Vec<u32>,
    /// The second attachment edge endpoint of the special node.
    pub second: usize,
    /// Degree of every node in the 1-tree.
    pub degree: Vec<u32>,
    /// Total 1-tree length under shifted costs.
    pub shifted_len: i64,
}

impl OneTree {
    /// Build the minimum 1-tree with special node `special` under the
    /// potentials `pi`.
    ///
    /// # Panics
    ///
    /// Panics if the instance has fewer than 3 cities.
    pub fn build(inst: &Instance, pi: &[i64], special: usize) -> OneTree {
        let n = inst.len();
        assert!(n >= 3);
        let verts: Vec<u32> = (0..n as u32).filter(|&v| v as usize != special).collect();
        let mst = prim(inst, pi, &verts);
        // Two cheapest edges from `special`.
        let (mut b1, mut b2) = (usize::MAX, usize::MAX);
        let (mut d1, mut d2) = (i64::MAX, i64::MAX);
        for v in 0..n {
            if v == special {
                continue;
            }
            let d = shifted_dist(inst, pi, special, v);
            if d < d1 {
                d2 = d1;
                b2 = b1;
                d1 = d;
                b1 = v;
            } else if d < d2 {
                d2 = d;
                b2 = v;
            }
        }
        let mut parent = mst.parent;
        parent[special] = b1 as u32;
        let mut degree = vec![0u32; n];
        for v in 0..n {
            if v == special || v == mst.root {
                continue;
            }
            degree[v] += 1;
            degree[parent[v] as usize] += 1;
        }
        degree[special] += 2;
        degree[b1] += 1;
        degree[b2] += 1;
        OneTree {
            special,
            parent,
            second: b2,
            degree,
            shifted_len: mst.shifted_len + d1 + d2,
        }
    }

    /// The Held-Karp dual value `w(π) = len(T_π) − 2·Σπ` for the
    /// potentials this tree was built with.
    pub fn dual_value(&self, pi: &[i64]) -> i64 {
        self.shifted_len - 2 * pi.iter().sum::<i64>()
    }

    /// Whether every node has degree 2 — i.e. the 1-tree *is* a tour
    /// (the ascent can stop: the bound is tight).
    pub fn is_tour(&self) -> bool {
        self.degree.iter().all(|&d| d == 2)
    }

    /// All 1-tree edges `(v, parent[v])` for non-root vertices plus the
    /// special node's two edges.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let n = self.parent.len();
        let mut out = Vec::with_capacity(n);
        // Find the MST root: the non-special vertex whose parent is itself.
        for v in 0..n {
            if v == self.special {
                continue;
            }
            let p = self.parent[v] as usize;
            if p != v {
                out.push((v, p));
            }
        }
        out.push((self.special, self.parent[self.special] as usize));
        out.push((self.special, self.second));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn one_tree_has_n_edges_and_degree_sum() {
        let inst = generate::uniform(30, 1000.0, 3);
        let pi = vec![0i64; 30];
        let t = OneTree::build(&inst, &pi, 0);
        let edges = t.edges();
        assert_eq!(edges.len(), 30); // n-2 MST edges + 2 special edges = n
        assert_eq!(t.degree.iter().sum::<u32>(), 60);
        assert_eq!(t.degree[0], 2);
    }

    #[test]
    fn one_tree_is_lower_bound() {
        let inst = generate::uniform(40, 1000.0, 7);
        let pi = vec![0i64; 40];
        let t = OneTree::build(&inst, &pi, 0);
        // Any tour is a 1-tree, so min 1-tree <= any tour length.
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..5 {
            let tour = tsp_core::Tour::random(40, &mut rng);
            assert!(t.shifted_len <= tour.length(&inst));
        }
    }

    #[test]
    fn dual_value_accounts_for_potentials() {
        let inst = generate::uniform(20, 1000.0, 9);
        let pi = vec![5i64; 20];
        let t = OneTree::build(&inst, &pi, 0);
        // Shifted length counts each node's pi once per incident edge
        // (sum deg * pi = 2 sum pi when tree is degree-2 everywhere); the
        // dual subtracts 2 sum pi, so for uniform pi the dual equals the
        // unshifted 1-tree length plus (sum_v (deg_v - 2) * pi_v) = same
        // uniform value only when degrees are all 2. Just pin the formula.
        assert_eq!(t.dual_value(&pi), t.shifted_len - 2 * 5 * 20);
    }

    #[test]
    fn tour_shaped_one_tree_detected() {
        // Cities on a circle: the minimum 1-tree is the tour itself.
        let pts: Vec<tsp_core::Point> = (0..12)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 12.0;
                tsp_core::Point::new(1000.0 * a.cos(), 1000.0 * a.sin())
            })
            .collect();
        let inst = tsp_core::Instance::new("circle", pts, tsp_core::Metric::Euc2d);
        let t = OneTree::build(&inst, &[0; 12], 0);
        assert!(t.is_tour());
    }
}
