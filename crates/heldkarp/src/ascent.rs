//! Subgradient ascent on the Held-Karp Lagrangian dual.
//!
//! Maximizes `w(π) = len(T_π) − 2·Σπ` where `T_π` is the minimum 1-tree
//! under costs `d(i,j) + π_i + π_j`. The subgradient at π is
//! `(deg_v − 2)_v`; the classic schedule increases π on high-degree
//! nodes and decreases it on leaves, with a step size halved every
//! period (Held & Karp 1971; the integer-π variant follows Helsgaun's
//! LKH ascent).
//!
//! Potentials are plain `i64` like the distances, so every bound value
//! is exact.

use tsp_core::Instance;

use crate::onetree::OneTree;

/// Tuning knobs for the ascent.
#[derive(Debug, Clone)]
pub struct AscentConfig {
    /// Maximum number of 1-tree constructions.
    pub max_iterations: usize,
    /// Initial step size; `None` derives it from the first 1-tree
    /// (`len / (2n)`, at least 1).
    pub initial_step: Option<i64>,
    /// Iterations per period before the step halves.
    pub period: usize,
    /// Special node for the 1-trees.
    pub special: usize,
}

impl Default for AscentConfig {
    fn default() -> Self {
        AscentConfig {
            max_iterations: 200,
            initial_step: None,
            period: 20,
            special: 0,
        }
    }
}

/// Outcome of the ascent.
#[derive(Debug, Clone)]
pub struct AscentResult {
    /// Best Held-Karp dual value found — a valid lower bound on the
    /// optimal tour length.
    pub bound: i64,
    /// Potentials achieving the bound.
    pub pi: Vec<i64>,
    /// The minimum 1-tree at those potentials.
    pub one_tree: OneTree,
    /// Number of 1-trees built.
    pub iterations: usize,
    /// True when the 1-tree became a tour (bound is optimal).
    pub tight: bool,
}

/// Run subgradient ascent, returning the best lower bound found.
///
/// ```
/// use tsp_core::generate;
/// use heldkarp::{held_karp_bound, AscentConfig};
///
/// let inst = generate::grid_known_optimum(6, 6, 100.0);
/// let res = held_karp_bound(&inst, &AscentConfig::default());
/// assert!(res.bound <= inst.known_optimum().unwrap());
/// ```
pub fn held_karp_bound(inst: &Instance, cfg: &AscentConfig) -> AscentResult {
    let n = inst.len();
    let mut pi = vec![0i64; n];
    let mut t = OneTree::build(inst, &pi, cfg.special);
    let mut best_bound = t.dual_value(&pi);
    let mut best_pi = pi.clone();
    let mut best_tree = t.clone();
    let mut iterations = 1;
    if t.is_tour() {
        return AscentResult {
            bound: best_bound,
            pi,
            one_tree: t,
            iterations,
            tight: true,
        };
    }

    let mut step = cfg
        .initial_step
        .unwrap_or_else(|| (best_bound / (2 * n as i64)).max(1));
    let mut since_improve = 0usize;
    // Previous subgradient for the momentum term (Helsgaun's 0.7/0.3 mix
    // stabilizes zig-zagging; we use integer halves).
    let mut prev_grad: Vec<i64> = vec![0; n];

    while iterations < cfg.max_iterations && step > 0 {
        // Subgradient with momentum.
        let mut moved = false;
        for v in 0..n {
            let g = t.degree[v] as i64 - 2;
            let delta = step * g + (step * prev_grad[v]) / 2;
            if delta != 0 {
                pi[v] += delta;
                moved = true;
            }
            prev_grad[v] = g;
        }
        if !moved {
            break;
        }
        t = OneTree::build(inst, &pi, cfg.special);
        iterations += 1;
        let w = t.dual_value(&pi);
        if w > best_bound {
            best_bound = w;
            best_pi.copy_from_slice(&pi);
            best_tree = t.clone();
            since_improve = 0;
        } else {
            since_improve += 1;
        }
        if t.is_tour() {
            return AscentResult {
                bound: best_bound,
                pi: best_pi,
                one_tree: best_tree,
                iterations,
                tight: true,
            };
        }
        if since_improve >= cfg.period {
            step /= 2;
            since_improve = 0;
        }
    }

    AscentResult {
        bound: best_bound,
        pi: best_pi,
        one_tree: best_tree,
        iterations,
        tight: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn bound_improves_over_plain_one_tree() {
        let inst = generate::uniform(60, 10_000.0, 5);
        let plain = OneTree::build(&inst, &vec![0; 60], 0).shifted_len;
        let res = held_karp_bound(&inst, &AscentConfig::default());
        assert!(res.bound >= plain, "ascent must not lose to π = 0");
        assert!(res.iterations > 1);
    }

    #[test]
    fn bound_below_known_optimum() {
        let inst = generate::grid_known_optimum(6, 6, 100.0);
        let res = held_karp_bound(&inst, &AscentConfig::default());
        let opt = inst.known_optimum().unwrap();
        assert!(res.bound <= opt, "bound {} above optimum {}", res.bound, opt);
        // HK is usually within ~1-2% on geometric instances; the grid is
        // benign, expect at least 95%.
        assert!(
            res.bound as f64 >= 0.95 * opt as f64,
            "bound {} too weak vs {}",
            res.bound,
            opt
        );
    }

    #[test]
    fn circle_is_tight() {
        let pts: Vec<tsp_core::Point> = (0..16)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 16.0;
                tsp_core::Point::new(10_000.0 * a.cos(), 10_000.0 * a.sin())
            })
            .collect();
        let inst = tsp_core::Instance::new("circle16", pts, tsp_core::Metric::Euc2d);
        let res = held_karp_bound(&inst, &AscentConfig::default());
        assert!(res.tight, "circle 1-tree should become a tour");
    }

    #[test]
    fn respects_iteration_budget() {
        let inst = generate::uniform(50, 10_000.0, 6);
        let cfg = AscentConfig {
            max_iterations: 5,
            ..AscentConfig::default()
        };
        let res = held_karp_bound(&inst, &cfg);
        assert!(res.iterations <= 5);
    }

    #[test]
    fn deterministic() {
        let inst = generate::uniform(40, 10_000.0, 8);
        let a = held_karp_bound(&inst, &AscentConfig::default());
        let b = held_karp_bound(&inst, &AscentConfig::default());
        assert_eq!(a.bound, b.bound);
        assert_eq!(a.pi, b.pi);
    }
}
