//! Property tests for the Held-Karp machinery: the bound is always a
//! true lower bound, is deterministic, and the α-lists are well-formed
//! on every generator family.

use heldkarp::{alpha_candidate_lists, held_karp_bound, AscentConfig, OneTree};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use tsp_core::{generate, Tour};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// w(π) from the ascent never exceeds any tour's length — the
    /// defining property of a Lagrangian lower bound.
    #[test]
    fn bound_below_every_tour(n in 10usize..80, seed in any::<u64>()) {
        let inst = generate::uniform(n, 100_000.0, seed);
        let cfg = AscentConfig { max_iterations: 40, ..Default::default() };
        let res = held_karp_bound(&inst, &cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..5 {
            let tour = Tour::random(n, &mut rng);
            prop_assert!(
                res.bound <= tour.length(&inst),
                "bound {} exceeds a tour of length {}",
                res.bound,
                tour.length(&inst)
            );
        }
    }

    /// More ascent iterations never lower the best bound.
    #[test]
    fn bound_monotone_in_iterations(seed in any::<u64>()) {
        let inst = generate::clustered(60, 100_000.0, 4, 3_000.0, seed);
        let mut prev = i64::MIN;
        for iters in [1usize, 10, 50, 150] {
            let cfg = AscentConfig { max_iterations: iters, ..Default::default() };
            let res = held_karp_bound(&inst, &cfg);
            prop_assert!(res.bound >= prev, "bound dropped: {} < {prev} at {iters} iterations", res.bound);
            prev = res.bound;
        }
    }

    /// 1-trees have exactly n edges and total degree 2n under any
    /// potentials.
    #[test]
    fn one_tree_shape(seed in any::<u64>(), pi_scale in 0i64..100) {
        let inst = generate::uniform(40, 100_000.0, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let pi: Vec<i64> = (0..40).map(|_| rng.gen_range(-pi_scale..=pi_scale)).collect();
        let t = OneTree::build(&inst, &pi, 0);
        prop_assert_eq!(t.edges().len(), 40);
        prop_assert_eq!(t.degree.iter().sum::<u32>(), 80);
        prop_assert_eq!(t.degree[0], 2);
    }
}

/// α-lists are well-formed on every generator family.
#[test]
fn alpha_lists_on_all_families() {
    let cfg = AscentConfig {
        max_iterations: 25,
        ..Default::default()
    };
    for inst in [
        generate::uniform(80, 100_000.0, 1),
        generate::clustered_dimacs(80, 2),
        generate::drill_plate(80, 3),
        generate::pcb_like(80, 4),
        generate::road_like(80, 5),
        generate::grid_known_optimum(8, 10, 100.0),
    ] {
        let nl = alpha_candidate_lists(&inst, 5, &cfg);
        assert_eq!(nl.len(), inst.len(), "{}", inst.name());
        assert_eq!(nl.k(), 5);
        for c in 0..inst.len() {
            assert!(!nl.of(c).contains(&(c as u32)), "{} self-loop", inst.name());
            let unique: std::collections::HashSet<_> = nl.of(c).iter().collect();
            assert_eq!(unique.len(), 5, "{} duplicate candidates", inst.name());
        }
    }
}

/// The grid's HK bound sandwiches tightly under the known optimum.
#[test]
fn grid_bound_tight() {
    let inst = generate::grid_known_optimum(10, 10, 100.0);
    let res = held_karp_bound(&inst, &AscentConfig::default());
    let opt = inst.known_optimum().unwrap();
    assert!(res.bound <= opt);
    assert!(res.bound as f64 >= 0.95 * opt as f64, "bound {} weak vs {opt}", res.bound);
}
