//! Property tests for the Held-Karp machinery: the bound is always a
//! true lower bound, is deterministic, and the α-lists are well-formed
//! on every generator family.

use heldkarp::mst::shifted_dist;
use heldkarp::{alpha_candidate_lists, alpha_lists_from_tree, held_karp_bound, AscentConfig, OneTree};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use tsp_core::{generate, Instance, Tour};

/// Brute-force β(i,j): the costliest shifted edge on the MST path from
/// `i` to `j`, found by a fresh DFS per pair — O(n) per query, O(n³)
/// over all pairs, against which the production one-DFS-per-row sweep
/// is checked.
fn beta_by_dfs(adj: &[Vec<(usize, i64)>], i: usize, j: usize) -> i64 {
    let mut stack = vec![(i, usize::MAX, i64::MIN)];
    while let Some((v, from, max_w)) = stack.pop() {
        if v == j {
            return max_w;
        }
        for &(u, w) in &adj[v] {
            if u != from {
                stack.push((u, v, max_w.max(w)));
            }
        }
    }
    panic!("MST (excluding the special node) is disconnected: no path {i} -> {j}");
}

/// Reference α-lists computed the slow, obvious way.
fn alpha_reference(inst: &Instance, pi: &[i64], tree: &OneTree, k: usize) -> Vec<Vec<u32>> {
    let n = inst.len();
    let s = tree.special;
    // MST adjacency over V \ {s}: one (v, parent) edge per non-special
    // vertex whose parent is neither itself (root) nor s.
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    for v in 0..n {
        if v == s {
            continue;
        }
        let p = tree.parent[v] as usize;
        if p != v && p != s {
            let w = shifted_dist(inst, pi, v, p);
            adj[v].push((p, w));
            adj[p].push((v, w));
        }
    }
    // Second-cheapest shifted edge at the special node.
    let mut at_s: Vec<i64> = (0..n)
        .filter(|&v| v != s)
        .map(|v| shifted_dist(inst, pi, s, v))
        .collect();
    at_s.sort_unstable();
    let c2 = at_s[1];

    (0..n)
        .map(|i| {
            let mut cand: Vec<(i64, i64, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let c = shifted_dist(inst, pi, i, j);
                    let a = if i == s || j == s {
                        (c - c2).max(0)
                    } else {
                        (c - beta_by_dfs(&adj, i, j)).max(0)
                    };
                    (a, c, j as u32)
                })
                .collect();
            cand.sort_unstable();
            cand.into_iter().take(k).map(|(_, _, j)| j).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// w(π) from the ascent never exceeds any tour's length — the
    /// defining property of a Lagrangian lower bound.
    #[test]
    fn bound_below_every_tour(n in 10usize..80, seed in any::<u64>()) {
        let inst = generate::uniform(n, 100_000.0, seed);
        let cfg = AscentConfig { max_iterations: 40, ..Default::default() };
        let res = held_karp_bound(&inst, &cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..5 {
            let tour = Tour::random(n, &mut rng);
            prop_assert!(
                res.bound <= tour.length(&inst),
                "bound {} exceeds a tour of length {}",
                res.bound,
                tour.length(&inst)
            );
        }
    }

    /// More ascent iterations never lower the best bound.
    #[test]
    fn bound_monotone_in_iterations(seed in any::<u64>()) {
        let inst = generate::clustered(60, 100_000.0, 4, 3_000.0, seed);
        let mut prev = i64::MIN;
        for iters in [1usize, 10, 50, 150] {
            let cfg = AscentConfig { max_iterations: iters, ..Default::default() };
            let res = held_karp_bound(&inst, &cfg);
            prop_assert!(res.bound >= prev, "bound dropped: {} < {prev} at {iters} iterations", res.bound);
            prev = res.bound;
        }
    }

    /// The production α-lists (one DFS sweep per row over the MST)
    /// match a brute-force O(n³) reference that recomputes β(i,j) as
    /// the max-cost MST-path edge via a fresh DFS per pair — including
    /// the special node's `α(s,j) = (c(s,j) − c₂)⁺` row, in both
    /// directions (row of `s`, and `s` as a candidate of other rows).
    #[test]
    fn alpha_lists_match_bruteforce_beta_reference(n in 8usize..28, seed in any::<u64>()) {
        let inst = generate::uniform(n, 10_000.0, seed);
        let cfg = AscentConfig { max_iterations: 25, ..Default::default() };
        let res = held_karp_bound(&inst, &cfg);
        let k = 5.min(n - 1);
        let got = alpha_lists_from_tree(&inst, &res.pi, &res.one_tree, k);
        let want = alpha_reference(&inst, &res.pi, &res.one_tree, k);
        for (i, row) in want.iter().enumerate() {
            prop_assert_eq!(
                got.of(i), &row[..],
                "α row {} diverges (special node {})", i, res.one_tree.special
            );
        }
    }

    /// 1-trees have exactly n edges and total degree 2n under any
    /// potentials.
    #[test]
    fn one_tree_shape(seed in any::<u64>(), pi_scale in 0i64..100) {
        let inst = generate::uniform(40, 100_000.0, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let pi: Vec<i64> = (0..40).map(|_| rng.gen_range(-pi_scale..=pi_scale)).collect();
        let t = OneTree::build(&inst, &pi, 0);
        prop_assert_eq!(t.edges().len(), 40);
        prop_assert_eq!(t.degree.iter().sum::<u32>(), 80);
        prop_assert_eq!(t.degree[0], 2);
    }
}

/// α-lists are well-formed on every generator family.
#[test]
fn alpha_lists_on_all_families() {
    let cfg = AscentConfig {
        max_iterations: 25,
        ..Default::default()
    };
    for inst in [
        generate::uniform(80, 100_000.0, 1),
        generate::clustered_dimacs(80, 2),
        generate::drill_plate(80, 3),
        generate::pcb_like(80, 4),
        generate::road_like(80, 5),
        generate::grid_known_optimum(8, 10, 100.0),
    ] {
        let nl = alpha_candidate_lists(&inst, 5, &cfg);
        assert_eq!(nl.len(), inst.len(), "{}", inst.name());
        assert_eq!(nl.k(), 5);
        for c in 0..inst.len() {
            assert!(!nl.of(c).contains(&(c as u32)), "{} self-loop", inst.name());
            let unique: std::collections::HashSet<_> = nl.of(c).iter().collect();
            assert_eq!(unique.len(), 5, "{} duplicate candidates", inst.name());
        }
    }
}

/// The grid's HK bound sandwiches tightly under the known optimum.
#[test]
fn grid_bound_tight() {
    let inst = generate::grid_known_optimum(10, 10, 100.0);
    let res = held_karp_bound(&inst, &AscentConfig::default());
    let opt = inst.known_optimum().unwrap();
    assert!(res.bound <= opt);
    assert!(res.bound as f64 >= 0.95 * opt as f64, "bound {} weak vs {opt}", res.bound);
}
