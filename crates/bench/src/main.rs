//! Experiment CLI for the bench crate. A thin sibling of the root
//! `repro` binary that additionally knows how to pass an instance
//! argument to the `profile` experiment:
//!
//! ```text
//! cargo run -p bench -- profile                      # default stand-in
//! cargo run -p bench -- profile path/to/file.tsp     # TSPLIB file
//! cargo run -p bench -- profile E1k.1 --full         # testbed name
//! cargo run -p bench -- table3                       # any repro id
//! cargo run -p bench -- list
//! ```

use bench::experiments::{self, churn, hub_failover, monitor, perf, profile, service, shard};
use bench::testbed::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let command = positional.next().map(|s| s.as_str()).unwrap_or("list");

    match command {
        "list" => {
            println!("experiments: {}", experiments::ALL.join(", "));
            println!("usage: bench <id>|all [--full]");
            println!("       bench profile [<tsplib-file>|<testbed-name>] [--full]");
            println!("       bench perf [--smoke]   # array vs two-level tour sweep");
            println!("       bench churn [--smoke]  # seeded kill/revive chaos sweep");
            println!("       bench hub-failover [--smoke]  # hub death, election, epoch fencing");
            println!("       bench monitor [--smoke]  # live mid-run telemetry scrape over TCP");
            println!("       bench shard [--smoke]  # divide-and-optimize sharding, 200k -> 1M");
            println!("       bench service [--smoke]  # multi-tenant job service over TCP");
        }
        "all" => {
            for id in experiments::ALL {
                run_one(id, &scale);
            }
            println!("all reports written to target/repro/");
        }
        "perf" => {
            // Full sweep (≥10k cities) unless --smoke caps it for CI.
            perf::run_mode(smoke).write().expect("write report");
        }
        "churn" => {
            // Seeded kill/revive chaos sweep; --smoke caps it for CI.
            churn::run_mode(smoke).write().expect("write report");
        }
        "hub-failover" => {
            // Hub-death election sweep; --smoke caps it for CI.
            hub_failover::run_mode(smoke).write().expect("write report");
        }
        "monitor" => {
            // Live telemetry plane end-to-end; --smoke caps it for CI.
            monitor::run_mode(smoke).write().expect("write report");
        }
        "shard" => {
            // Divide-and-optimize sweep; --smoke caps it for CI.
            shard::run_mode(smoke).write().expect("write report");
        }
        "service" => {
            // Multi-tenant job fleet over TCP; --smoke caps it for CI.
            service::run_mode(smoke).write().expect("write report");
        }
        "profile" => {
            let report = match positional.next() {
                Some(arg) => match profile::resolve_instance(arg, &scale) {
                    Ok(inst) => profile::run_on(&inst, &scale),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                },
                None => profile::run(&scale),
            };
            report.write().expect("write report");
        }
        id => run_one(id, &scale),
    }
}

fn run_one(id: &str, scale: &Scale) {
    eprintln!("== running {id} ({} runs) ==", scale.runs);
    let started = std::time::Instant::now();
    match experiments::run(id, scale) {
        Some(report) => {
            report.write().expect("write report");
            eprintln!("== {id} done in {:.1}s ==", started.elapsed().as_secs_f64());
        }
        None => {
            eprintln!("unknown experiment {id:?}; try `bench list`");
            std::process::exit(2);
        }
    }
}
