//! # bench
//!
//! The experiment library regenerating every table and figure of the
//! paper's evaluation (§3–§4), at laptop scale (see DESIGN.md §3 for
//! the substitutions and §4 for the experiment index).
//!
//! Each experiment is a function producing a [`report::Report`]
//! (markdown table + CSV series) written under `target/repro/`. The
//! root binary `repro` dispatches to them:
//!
//! ```text
//! cargo run --release --bin repro -- all        # everything
//! cargo run --release --bin repro -- table3     # one experiment
//! cargo run --release --bin repro -- table3 --full   # paper-scale runs
//! ```

pub mod calibrate;
pub mod experiments;
pub mod report;
pub mod testbed;

pub use report::Report;
pub use testbed::{Reference, Scale, TestInstance};
