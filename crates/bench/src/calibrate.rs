//! Machine calibration (the paper's §4.3 DIMACS normalization).
//!
//! The DIMACS challenge normalizes running times to a 500 MHz Alpha by
//! timing a benchmark solver on reference instances. We do the same in
//! miniature: a fixed, deterministic CLK workload is timed and the
//! ratio against a recorded reference duration yields this machine's
//! normalization factor. Reported times in Table 2 are multiplied by
//! it, so numbers from different machines are comparable.

use lk::{Budget, ChainedLk, ChainedLkConfig};
use tsp_core::{generate, NeighborLists};

/// Reference duration of [`calibration_workload`] on the machine the
/// repository's EXPERIMENTS.md numbers were recorded on (seconds).
pub const REFERENCE_SECONDS: f64 = 1.0;

/// Run the fixed calibration workload; returns elapsed seconds.
pub fn calibration_workload() -> f64 {
    let inst = generate::uniform(1000, 1_000_000.0, 424242);
    let nl = NeighborLists::build(&inst, 10);
    let cfg = ChainedLkConfig {
        seed: 424242,
        ..Default::default()
    };
    let mut clk = ChainedLk::new(&inst, &nl, cfg);
    let start = std::time::Instant::now();
    let res = clk.run(&Budget::kicks(300));
    let secs = start.elapsed().as_secs_f64();
    // Consume the result so the optimizer cannot elide the work.
    assert!(res.length > 0);
    secs
}

/// The machine's normalization factor: multiply measured seconds by
/// this to get reference-machine seconds (like the paper's 1.96–3.68
/// Alpha factors).
pub fn normalization_factor() -> f64 {
    REFERENCE_SECONDS / calibration_workload().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_completes_and_factor_is_positive() {
        let f = normalization_factor();
        assert!(f > 0.0);
        assert!(f.is_finite());
    }
}
