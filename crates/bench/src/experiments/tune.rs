//! Internal diagnostic (not a paper experiment): where does the
//! cooperative advantage kick in as the budget grows? Used to pick the
//! quick-scale budgets; kept because it regenerates the tuning data in
//! EXPERIMENTS.md.

use lk::KickStrategy;

use crate::experiments::common::{dist_config, mean, run_clk_many, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new("tune", "Budget maturity: CLK vs DistCLK across budgets");
    let sized = |b: usize| ((b as f64 * scale.size_factor) as usize).max(128);
    let instances = [
        ("fl1577*", generate::drill_plate(sized(1577), 13)),
        ("E1k*", generate::uniform(sized(1000), 1_000_000.0, 12)),
    ];
    let kick = KickStrategy::RandomWalk(50);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, inst) in &instances {
        for clk_kicks in [500u64, 1500, 4000] {
            let clk = run_clk_many(inst, kick, clk_kicks, scale.runs, 0xE1, None);
            let clk_mean = mean(&clk.iter().map(|r| r.length as f64).collect::<Vec<_>>());
            let mut cfg = dist_config(scale, kick, scale.nodes, 0);
            cfg.clk_kicks_per_call = 5;
            cfg.budget = lk::Budget::kicks((clk_kicks / 10 / 5).max(1));
            let dist = run_dist_many(inst, &cfg, scale.runs, 0xE2, None);
            let dist_mean = mean(&dist.iter().map(|r| r.best_length as f64).collect::<Vec<_>>());
            rows.push(vec![
                name.to_string(),
                clk_kicks.to_string(),
                format!("{clk_mean:.0}"),
                format!("{dist_mean:.0}"),
                format!("{:+.3}%", (dist_mean - clk_mean) / clk_mean * 100.0),
            ]);
            csv.push(format!("{name},{clk_kicks},{clk_mean:.1},{dist_mean:.1}"));
        }
    }
    report.table(
        &["Instance", "CLK kicks", "CLK mean", "Dist mean (1/10 per node)", "Dist vs CLK"],
        &rows,
    );
    report.series("tune", "instance,clk_kicks,clk_mean,dist_mean", csv);
    report
}
