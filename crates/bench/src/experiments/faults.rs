//! **Fault sweep** (extension beyond the paper) — tour quality under an
//! unreliable network.
//!
//! The paper's cluster had a dedicated switched Ethernet; its only
//! robustness claim is that the algorithm "should keep working" when
//! the network degrades. This experiment measures that directly: the
//! in-memory lockstep network is wrapped in
//! [`p2p::fault::FaultyTransport`] and message **drop** and wire-level
//! **corruption** rates are swept on the paper's hypercube and on a
//! ring (the sparsest topology, where every lost broadcast hurts the
//! most). Corrupted tours that survive the codec are fed to the
//! receive-side validation in the node loop; the `rejected` column
//! counts how many it turned away.
//!
//! Expected shape: quality degrades smoothly with the fault rate (no
//! cliff), the hypercube tolerates faults better than the ring (more
//! redundant paths), and corruption never crashes a run or pollutes
//! the reported best (every reported length is recomputed locally).

use distclk::run_lockstep_over;
use lk::KickStrategy;
use p2p::fault::{FaultConfig, FaultyTransport};
use p2p::memory::InMemoryNetwork;
use p2p::Topology;
use tsp_core::{generate, NeighborLists};

use crate::experiments::common::{dist_config, mean};
use crate::report::Report;
use crate::testbed::Scale;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new(
        "faults",
        "Fault sweep: tour quality under message drop and corruption",
    );
    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(256);
    let inst = generate::uniform(sized(1000), 1_000_000.0, 21);
    let nl = NeighborLists::build(&inst, 10);
    let kick = KickStrategy::RandomWalk(50);
    let mut csv = Vec::new();

    for (fault_kind, rates) in [
        ("drop", [0.0, 0.1, 0.2, 0.4]),
        ("corrupt", [0.0, 0.1, 0.2, 0.4]),
    ] {
        let mut rows = Vec::new();
        for topo in [Topology::Hypercube, Topology::Ring] {
            for &rate in &rates {
                let mut lens = Vec::new();
                let mut rejected_per_run = Vec::new();
                for run in 0..scale.runs {
                    let mut cfg = dist_config(scale, kick, scale.nodes, 0);
                    cfg.topology = topo;
                    cfg.seed = 0xFA + run as u64;
                    let fcfg = match fault_kind {
                        "drop" => FaultConfig::drop_rate(rate, cfg.seed),
                        _ => FaultConfig::corrupt_rate(rate, cfg.seed),
                    };
                    let (eps, stats) = InMemoryNetwork::build(cfg.nodes, cfg.topology);
                    let wrapped: Vec<_> = eps
                        .into_iter()
                        .map(|e| FaultyTransport::new(e, fcfg))
                        .collect();
                    let res = run_lockstep_over(&inst, &nl, &cfg, wrapped, Some(stats));
                    let rejected: u64 = res.nodes.iter().map(|n| n.rejected).sum();
                    csv.push(format!(
                        "{fault_kind},{topo:?},{rate},{run},{},{rejected}",
                        res.best_length
                    ));
                    lens.push(res.best_length as f64);
                    rejected_per_run.push(rejected as f64);
                }
                rows.push(vec![
                    format!("{topo:?}"),
                    format!("{rate}"),
                    format!("{:.0}", mean(&lens)),
                    format!("{:.1}", mean(&rejected_per_run)),
                ]);
            }
        }
        report.para(&format!(
            "Message {fault_kind} rate sweep ({} nodes, mean of {} runs; \
             'rejected' counts received tours turned away by validation):",
            scale.nodes, scale.runs
        ));
        report.table(
            &["Topology", "Rate", "Mean best length", "Mean rejected"],
            &rows,
        );
    }

    report.series(
        "faults",
        "fault,topology,rate,run,best_length,rejected",
        csv,
    );
    report
}
