//! **§4.2.1** — variator strength and restarts case study.
//!
//! The paper walks through two runs on fi10639: run A needs only weak
//! perturbation (strength briefly 2, then a better tour resets it);
//! run B climbs through strengths 2, 3, 4 before a node finds a better
//! tour. We log every strength change and restart of two seeds and
//! print the same narrative timeline.

use distclk::NodeEvent;
use lk::KickStrategy;

use crate::experiments::common::{dist_config, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new("variator", "Variator strength & restarts (paper §4.2.1)");
    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(256);
    let inst = generate::road_like(sized(2600), 18);

    let mut cfg = dist_config(scale, KickStrategy::RandomWalk(50), scale.nodes, 0);
    // Lower thresholds so strength dynamics are visible at our scaled
    // budgets (the paper's c_v=64 needs thousands of iterations).
    cfg.c_v = 4;
    cfg.c_r = 24;
    let runs = run_dist_many(&inst, &cfg, 2, 0xAB, None);

    let mut csv = Vec::new();
    for (label, run) in ["A", "B"].iter().zip(runs.iter()) {
        let mut rows = Vec::new();
        let mut improvements = 0usize;
        let mut max_strength = 1u32;
        let mut restarts = 0usize;
        for n in &run.nodes {
            for e in &n.events {
                match e {
                    NodeEvent::Improved { secs, length, local } => {
                        improvements += 1;
                        csv.push(format!(
                            "{label},{},{secs:.4},improved,{length},{}",
                            n.id,
                            if *local { "local" } else { "received" }
                        ));
                    }
                    NodeEvent::StrengthChanged { secs, strength } => {
                        max_strength = max_strength.max(*strength);
                        rows.push(vec![
                            format!("node {}", n.id),
                            format!("{secs:.3}s"),
                            format!("NumPerturbations -> {strength}"),
                        ]);
                        csv.push(format!("{label},{},{secs:.4},strength,{strength},", n.id));
                    }
                    NodeEvent::Restart { secs } => {
                        restarts += 1;
                        rows.push(vec![
                            format!("node {}", n.id),
                            format!("{secs:.3}s"),
                            "restart (c_r exceeded)".into(),
                        ]);
                        csv.push(format!("{label},{},{secs:.4},restart,,", n.id));
                    }
                    _ => {}
                }
            }
        }
        report.para(&format!(
            "**Run {label}**: {improvements} improving tours across the network, \
             max perturbation strength {max_strength}, {restarts} restarts, final \
             length {}.",
            run.best_length
        ));
        if !rows.is_empty() {
            report.table(&["Node", "Time", "Event"], &rows);
        }
    }
    report.series("events", "run,node,secs,event,value,source", csv);
    report
}
