//! Shared machinery for the experiment drivers.

use distclk::{run_lockstep, DistConfig, DistResult};
use lk::{Budget, ChainedLk, ChainedLkConfig, ClkResult, KickStrategy, Trace};
use p2p::Topology;
use tsp_core::{Instance, NeighborLists};

use crate::testbed::{Reference, Scale};

/// Run standalone CLK `runs` times with distinct seeds.
pub fn run_clk_many(
    inst: &Instance,
    kick: KickStrategy,
    kicks: u64,
    runs: usize,
    seed0: u64,
    target: Option<i64>,
) -> Vec<ClkResult> {
    let nl = NeighborLists::build(inst, 10);
    (0..runs)
        .map(|r| {
            let cfg = ChainedLkConfig {
                kick,
                seed: seed0 + r as u64,
                ..Default::default()
            };
            let mut engine = ChainedLk::new(inst, &nl, cfg);
            let mut budget = Budget::kicks(kicks);
            if let Some(t) = target {
                budget = budget.with_target(t);
            }
            engine.run(&budget)
        })
        .collect()
}

/// Build a `DistConfig` from the scale knobs.
pub fn dist_config(scale: &Scale, kick: KickStrategy, nodes: usize, seed: u64) -> DistConfig {
    DistConfig {
        nodes,
        topology: Topology::Hypercube,
        clk: ChainedLkConfig {
            kick,
            ..Default::default()
        },
        clk_kicks_per_call: scale.kicks_per_call,
        budget: Budget::kicks(scale.dist_calls_per_node()),
        seed,
        ..Default::default()
    }
}

/// Run the distributed algorithm `runs` times with distinct seeds.
///
/// Uses the deterministic lockstep driver: this host may be
/// single-core, where per-node wall time across different thread
/// counts is not comparable; effort (CLK calls / kicks) is the time
/// axis for every experiment (see DESIGN.md §3).
pub fn run_dist_many(
    inst: &Instance,
    base: &DistConfig,
    runs: usize,
    seed0: u64,
    target: Option<i64>,
) -> Vec<DistResult> {
    // Lists must come from the shared wire config (candidate kind +
    // width), not a hardcoded builder — see `distclk::build_neighbors`.
    let nl = distclk::build_neighbors(inst, base);
    (0..runs)
        .map(|r| {
            let mut cfg = base.clone();
            cfg.seed = seed0 + r as u64;
            if let Some(t) = target {
                cfg.budget = cfg.budget.clone().with_target(t);
            }
            run_lockstep(inst, &nl, &cfg)
        })
        .collect()
}

/// The quality reference for an instance: the true optimum when known,
/// otherwise the best length observed across the supplied runs
/// (surrogate, as documented in EXPERIMENTS.md).
pub fn reference_for(inst: &Instance, observed: impl IntoIterator<Item = i64>) -> Reference {
    if let Some(opt) = inst.known_optimum() {
        Reference::Optimum(opt)
    } else {
        let best = observed.into_iter().min().expect("at least one run");
        Reference::Surrogate(best)
    }
}

/// Mean of a float series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Mean excess of a set of lengths over a reference.
pub fn mean_excess(reference: &Reference, lengths: &[i64]) -> f64 {
    mean(&lengths
        .iter()
        .map(|&l| reference.excess(l))
        .collect::<Vec<_>>())
}

/// Best-so-far length at an effort point (kicks) from a trace.
pub fn length_at_kicks(trace: &Trace, kicks: u64) -> Option<i64> {
    trace
        .points()
        .iter()
        .take_while(|&&(_, k, _)| k <= kicks)
        .map(|&(_, _, l)| l)
        .last()
}

/// Mean time (seconds) at which each trace first reached `length`;
/// `None` if any run never reached it.
pub fn mean_time_to(traces: &[Trace], length: i64) -> Option<f64> {
    let mut times = Vec::with_capacity(traces.len());
    for t in traces {
        times.push(t.time_to_reach(length)?);
    }
    Some(mean(&times))
}

/// Mean effort (kicks / CLK calls) at which each trace first reached
/// `length`; `None` if any run never reached it.
pub fn mean_kicks_to(traces: &[Trace], length: i64) -> Option<f64> {
    let mut efforts = Vec::with_capacity(traces.len());
    for t in traces {
        efforts.push(t.kicks_to_reach(length)? as f64);
    }
    Some(mean(&efforts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::generate;

    #[test]
    fn clk_many_distinct_seeds() {
        let inst = generate::uniform(80, 10_000.0, 401);
        let runs = run_clk_many(&inst, KickStrategy::Random, 5, 3, 100, None);
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.tour.is_valid());
        }
    }

    #[test]
    fn reference_prefers_known_optimum() {
        let grid = generate::grid_known_optimum(4, 4, 100.0);
        let r = reference_for(&grid, [99999]);
        assert!(matches!(r, Reference::Optimum(1600)));
        let uni = generate::uniform(64, 1000.0, 1);
        let r = reference_for(&uni, [500, 400, 450]);
        assert!(matches!(r, Reference::Surrogate(400)));
    }

    #[test]
    fn length_at_kicks_walks_trace() {
        let mut t = Trace::new();
        t.record(0.0, 0, 100);
        t.record(0.1, 5, 90);
        t.record(0.2, 9, 80);
        assert_eq!(length_at_kicks(&t, 0), Some(100));
        assert_eq!(length_at_kicks(&t, 5), Some(90));
        assert_eq!(length_at_kicks(&t, 7), Some(90));
        assert_eq!(length_at_kicks(&t, 100), Some(80));
    }

    #[test]
    fn mean_time_to_requires_all_runs() {
        let mut a = Trace::new();
        a.record(1.0, 0, 50);
        let mut b = Trace::new();
        b.record(3.0, 0, 50);
        assert_eq!(mean_time_to(&[a.clone(), b], 50), Some(2.0));
        let c = Trace::new();
        assert_eq!(mean_time_to(&[a, c], 50), None);
    }
}
