//! **Figure 3** — effect of parallelization: convergence of DistCLK
//! with 8 nodes vs. 1 node vs. standalone ABCC-CLK, on the fl3795 and
//! fi10639 stand-ins.
//!
//! Paper shape: the 8-node curve dominates the 1-node curve, which
//! dominates plain CLK; on the drill instance only the distributed
//! variants escape the plateau.

use lk::KickStrategy;

use crate::experiments::common::{dist_config, run_clk_many, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new("figure3", "Figure 3: parallelization effect (CSV series)");
    report.para(
        "Per-configuration best-so-far series (seconds, kicks, length). The 8-node \
         series uses the network-best trace; per-node time is the x-axis as in the \
         paper.",
    );

    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(128);
    let instances = [
        ("fl3795", generate::drill_plate(sized(3795), 16)),
        ("fi10639", generate::road_like(sized(2600), 18)),
    ];
    let kick = KickStrategy::RandomWalk(50);

    let mut rows = Vec::new();
    for (name, inst) in &instances {
        let clk = run_clk_many(inst, kick, scale.clk_kicks, 1, 0x31, None).remove(0);
        report.series(
            format!("{name}_clk"),
            "secs,kicks,length",
            clk.trace
                .points()
                .iter()
                .map(|&(s, k, l)| format!("{s},{k},{l}"))
                .collect(),
        );
        rows.push(vec![
            name.to_string(),
            "ABCC-CLK".into(),
            clk.length.to_string(),
        ]);

        for nodes in [1usize, scale.nodes] {
            let cfg = dist_config(scale, kick, nodes, 0x32);
            let dist = run_dist_many(inst, &cfg, 1, 0x32, None).remove(0);
            report.series(
                format!("{name}_dist{nodes}"),
                "secs,kicks,length",
                dist.network_trace
                    .points()
                    .iter()
                    .map(|&(s, k, l)| format!("{s},{k},{l}"))
                    .collect(),
            );
            rows.push(vec![
                name.to_string(),
                format!("DistCLK {nodes} node(s)"),
                dist.best_length.to_string(),
            ]);
        }
    }

    report.table(&["Instance", "Configuration", "Final length"], &rows);
    report
}
