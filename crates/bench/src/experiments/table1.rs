//! **Table 1** — speed-up of the distributed algorithm: per-node effort
//! for ABCC-CLK, DistCLK(1 node) and DistCLK(8 nodes) to reach fixed
//! quality levels, plus the 1-node/8-node speed-up factor.
//!
//! Paper shape: the 8-node variant reaches each level several times —
//! often *more than 8 times* — faster than the 1-node variant
//! (super-linear cooperation), and reaches levels plain CLK never
//! attains within its (10×) budget.
//!
//! Effort unit: kicks (CLK) / kick-equivalents (DistCLK: CLK calls ×
//! internal kicks per call). Wall time is not used because the harness
//! may run on a single core, where per-node wall time across different
//! node counts is incomparable (DESIGN.md §3). Quality levels are
//! placed relative to the best length over *all* runs of the instance
//! (surrogate optimum), so they discriminate at any scale — the paper
//! used fixed percentages over known optima, which our scaled stand-ins
//! reach either instantly or never.

use lk::KickStrategy;

use crate::experiments::common::{dist_config, mean_kicks_to, run_clk_many, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new(
        "table1",
        "Table 1: per-node effort to reach quality levels (CLK vs DistCLK 1/8 nodes)",
    );
    report.para(&format!(
        "{} runs per configuration; CLK budget {} kicks; DistCLK per-node budget {} \
         kick-equivalents (1/10). Levels are % above the best length over all runs of \
         the instance. Entries: mean kicks per node to first reach the level; '-' = \
         not reached by every run of that configuration.",
        scale.runs,
        scale.clk_kicks,
        scale.dist_kicks_per_node()
    ));

    let header = [
        "Instance",
        "Level",
        "ABCC-CLK",
        "1 node",
        "8 nodes",
        "Factor(1v8)",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = Vec::new();

    let sized = |b: usize| ((b as f64 * scale.size_factor) as usize).max(200);
    let instances = [
        ("pr2392*", generate::pcb_like(sized(2392), 14)),
        ("fi10639*", generate::road_like(sized(2600), 18)),
    ];
    for (name, inst) in &instances {
        emit_instance(scale, inst, name, &mut rows, &mut csv);
    }

    report.table(&header, &rows);
    report.series(
        "speedup",
        "instance,level,clk_kicks,one_node_kicks,eight_node_kicks,factor",
        csv,
    );
    report
}

fn emit_instance(
    scale: &Scale,
    inst: &tsp_core::Instance,
    name: &str,
    rows: &mut Vec<Vec<String>>,
    csv: &mut Vec<String>,
) {
    let kick = KickStrategy::RandomWalk(50);
    let clk_runs = run_clk_many(inst, kick, scale.clk_kicks, scale.runs, 0x11, None);
    let clk_traces: Vec<_> = clk_runs.iter().map(|r| r.trace.clone()).collect();

    let one_cfg = dist_config(scale, kick, 1, 0);
    let one_runs = run_dist_many(inst, &one_cfg, scale.runs, 0x12, None);
    let one_traces: Vec<_> = one_runs.iter().map(|r| r.network_trace.clone()).collect();

    let eight_cfg = dist_config(scale, kick, scale.nodes, 0);
    let eight_runs = run_dist_many(inst, &eight_cfg, scale.runs, 0x13, None);
    let eight_traces: Vec<_> = eight_runs
        .iter()
        .map(|r| r.network_trace.clone())
        .collect();

    // Surrogate reference: best final length over every run.
    let best = clk_runs
        .iter()
        .map(|r| r.length)
        .chain(one_runs.iter().map(|r| r.best_length))
        .chain(eight_runs.iter().map(|r| r.best_length))
        .min()
        .expect("runs exist");

    // Distributed traces record CLK calls; convert to kick-equivalents.
    let per_call = scale.kicks_per_call as f64;
    let levels = [(0.01, "1%"), (0.005, "0.5%"), (0.002, "0.2%")];

    for &(frac, label) in &levels {
        let target = best + (best as f64 * frac) as i64;
        let e_clk = mean_kicks_to(&clk_traces, target);
        let e_one = mean_kicks_to(&one_traces, target).map(|c| c * per_call);
        let e_eight = mean_kicks_to(&eight_traces, target).map(|c| c * per_call);
        let factor = match (e_one, e_eight) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.2}", a / b),
            (Some(_), Some(_)) => ">1 (8n instant)".into(),
            _ => "-".into(),
        };
        let fmt = |e: Option<f64>| e.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into());
        rows.push(vec![
            name.to_string(),
            label.to_string(),
            fmt(e_clk),
            fmt(e_one),
            fmt(e_eight),
            factor.clone(),
        ]);
        csv.push(format!(
            "{},{},{},{},{},{}",
            name,
            label,
            e_clk.map(|t| t.to_string()).unwrap_or_default(),
            e_one.map(|t| t.to_string()).unwrap_or_default(),
            e_eight.map(|t| t.to_string()).unwrap_or_default(),
            factor
        ));
    }
}
