//! One module per paper table/figure (see DESIGN.md §4 for the index).

pub mod ablation;
pub mod churn;
pub mod common;
pub mod faults;
pub mod figure2;
pub mod figure3;
pub mod hub_failover;
pub mod messages;
pub mod monitor;
pub mod perf;
pub mod profile;
pub mod service;
pub mod shard;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod tune;
pub mod variator;

use crate::report::Report;
use crate::testbed::Scale;

/// Run one experiment by id; `None` for unknown ids.
pub fn run(id: &str, scale: &Scale) -> Option<Report> {
    let report = match id {
        "table1" => table1::run(scale),
        "table2" => table2::run(scale),
        "table3" => table3::run(scale),
        "table4" => table4::run(scale),
        "table5" => table5::run(scale),
        "figure2" => figure2::run(scale),
        "figure3" => figure3::run(scale),
        "messages" => messages::run(scale),
        "variator" => variator::run(scale),
        "tune" => tune::run(scale),
        "ablation" => ablation::run(scale),
        "faults" => faults::run(scale),
        "churn" => churn::run(scale),
        "hub-failover" => hub_failover::run(scale),
        "monitor" => monitor::run(scale),
        "profile" => profile::run(scale),
        "perf" => perf::run(scale),
        "shard" => shard::run(scale),
        "service" => service::run(scale),
        _ => return None,
    };
    Some(report)
}

/// All experiment ids in suggested execution order.
pub const ALL: [&str; 18] = [
    "table3", "table4", "table5", "table1", "table2", "figure2", "figure3", "messages",
    "variator", "ablation", "faults", "churn", "hub-failover", "monitor", "profile", "perf",
    "shard", "service",
];
