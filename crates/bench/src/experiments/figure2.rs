//! **Figure 2** — convergence traces.
//!
//! (a, b): tour length vs. CPU time for standalone CLK under each of
//! the four kicking strategies (fl1577 and sw24978 stand-ins).
//! (c, d): DistCLK (8 nodes) vs. ABCC-CLK on the same instances with
//! the Random-walk kick.
//!
//! Paper shape: on the drill instance CLK flat-lines in a local optimum
//! while DistCLK keeps improving; on the road instance DistCLK reaches
//! CLK's final level in a small fraction of the per-node time.

use lk::KickStrategy;

use crate::experiments::common::{dist_config, run_clk_many, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new("figure2", "Figure 2: convergence traces (CSV series)");
    report.para(
        "Series are written as CSV (seconds, kicks, best length); plot length vs. \
         seconds to reproduce the figure. One representative run per configuration.",
    );

    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(128);
    let instances = [
        ("fl1577", generate::drill_plate(sized(1577), 13)),
        ("sw24978", generate::road_like(sized(4000), 19)),
    ];

    let mut summary_rows = Vec::new();
    for (name, inst) in &instances {
        // Panels (a)/(b): CLK per strategy.
        for strategy in KickStrategy::ALL {
            let run = run_clk_many(inst, strategy, scale.clk_kicks, 1, 0xF2, None)
                .remove(0);
            let rows: Vec<String> = run
                .trace
                .points()
                .iter()
                .map(|&(s, k, l)| format!("{s},{k},{l}"))
                .collect();
            summary_rows.push(vec![
                name.to_string(),
                format!("CLK {}", strategy.name()),
                run.length.to_string(),
                format!("{:.2}", run.seconds),
            ]);
            report.series(
                format!("{}_clk_{}", name, strategy.name().to_lowercase().replace('-', "")),
                "secs,kicks,length",
                rows,
            );
        }
        // Panels (c)/(d): DistCLK 8 nodes, Random-walk.
        let cfg = dist_config(scale, KickStrategy::RandomWalk(50), scale.nodes, 0xF3);
        let dist = run_dist_many(inst, &cfg, 1, 0xF3, None).remove(0);
        let rows: Vec<String> = dist
            .network_trace
            .points()
            .iter()
            .map(|&(s, k, l)| format!("{s},{k},{l}"))
            .collect();
        summary_rows.push(vec![
            name.to_string(),
            "DistCLK 8 nodes".into(),
            dist.best_length.to_string(),
            format!("{:.2}", dist.wall_seconds),
        ]);
        report.series(format!("{name}_dist8"), "secs,kicks,length", rows);
    }

    report.table(
        &["Instance", "Configuration", "Final length", "Seconds"],
        &summary_rows,
    );
    report
}
