//! **Hub-failover experiment** (extension beyond the paper) — cost of
//! losing the lifecycle hub mid-run.
//!
//! The paper's hub exists only for bootstrap; our lifecycle extension
//! made it a live service, and this PR made the role migratable
//! (DESIGN.md §9 "hub migration"). For each seed a
//! [`ChurnSchedule::seeded_hub_failover`] kills the hub, kills a
//! second node so the *elected* successor must serve the DOWN, revives
//! that node (the successor serves the REJOIN), and finally revives
//! the old hub, which returns as a regular member behind the epoch
//! fence. The same seed with zero churn is the quality baseline.
//!
//! Reported per seed: the consensus winner and epoch (must agree
//! across every clean node), promotions and rejoins served, and the
//! tour-quality gap vs the clean run. Expected shape: consensus on
//! every seed, at least one served rejoin, and a small quality gap —
//! hub failure costs the network a couple of members for a while, not
//! its ability to cooperate.

use distclk::{run_lockstep, run_lockstep_churn, ChurnSchedule, DistConfig};
use lk::Budget;
use obs_api::kinds;
use p2p::Topology;
use tsp_core::{generate, NeighborLists};

use crate::experiments::common::mean;
use crate::report::Report;
use crate::testbed::Scale;

pub fn run(scale: &Scale) -> Report {
    run_mode(scale.size_factor < 1.0)
}

/// Run the hub-failover sweep. `smoke` keeps the instance and budgets
/// CI-friendly; the full mode uses a paper-sized instance.
pub fn run_mode(smoke: bool) -> Report {
    let (cities, calls, seeds) = if smoke {
        (200usize, 14u64, 5u64)
    } else {
        (1_000, 60, 10)
    };
    let nodes = 8usize;
    let mut report = Report::new(
        "hub-failover",
        format!(
            "Hub failover: election, epoch fencing, lifecycle service under a dead hub ({} mode)",
            if smoke { "smoke" } else { "full" }
        ),
    );
    report.para(&format!(
        "Each seed crashes the lifecycle hub mid-run; the survivors \
         elect the minimum alive id, the winner resumes DOWN/REJOIN \
         service, and the old hub later returns as a regular member \
         behind the epoch fence. All {nodes}-node runs use the \
         deterministic lockstep driver, so every row is exactly \
         reproducible.",
    ));

    let inst = generate::uniform(cities, 1_000_000.0, 37);
    let nl = NeighborLists::build(&inst, 10);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut gaps = Vec::new();
    let mut consensus_failures = 0u64;
    for seed in 0..seeds {
        let cfg = DistConfig {
            nodes,
            topology: Topology::Hypercube,
            budget: Budget::kicks(calls),
            clk_kicks_per_call: 3,
            seed,
            ..Default::default()
        };
        let schedule = ChurnSchedule::seeded_hub_failover(seed, nodes);
        let churned = run_lockstep_churn(&inst, &nl, &cfg, &schedule);
        let clean = run_lockstep(&inst, &nl, &cfg);

        let consensus = churned.hub_consensus();
        if consensus.is_none() {
            consensus_failures += 1;
        }
        let (hub, epoch) = consensus.unwrap_or((None, 0));
        let hub_str = hub.map_or("—".to_string(), |h| h.to_string());
        let promotions = churned.metrics.counter(kinds::C_PROMOTIONS);
        let rejoins_served = churned.metrics.counter(kinds::C_HUB_REJOINS_SERVED);
        let gap = (churned.best_length - clean.best_length) as f64
            / clean.best_length.max(1) as f64
            * 100.0;
        gaps.push(gap);
        csv.push(format!(
            "{seed},{hub_str},{epoch},{promotions},{rejoins_served},{},{},{:.3}",
            churned.best_length, clean.best_length, gap
        ));
        rows.push(vec![
            seed.to_string(),
            hub_str,
            epoch.to_string(),
            promotions.to_string(),
            rejoins_served.to_string(),
            churned.best_length.to_string(),
            clean.best_length.to_string(),
            format!("{gap:+.2}%"),
        ]);
    }

    report.table(
        &[
            "Seed",
            "Hub",
            "Epoch",
            "Promotions",
            "Rejoins served",
            "Best (failover)",
            "Best (clean)",
            "Gap",
        ],
        &rows,
    );
    report.para(&format!(
        "Hub consensus reached on {}/{seeds} seeds; mean quality gap of \
         the failover runs vs their clean baselines: {:+.2}%.",
        seeds - consensus_failures,
        mean(&gaps)
    ));
    report.series(
        "hub-failover",
        "seed,hub,epoch,promotions,rejoins_served,best_failover,best_clean,gap_pct",
        csv,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_hub_failover_runs_and_renders() {
        let report = run_mode(true);
        assert!(report.markdown.contains("Hub failover"));
        assert!(report.markdown.contains("Rejoins served"));
        assert!(report.markdown.contains("consensus reached on 5/5 seeds"));
        let (_, _, rows) = report
            .csv
            .iter()
            .find(|(n, _, _)| n == "hub-failover")
            .unwrap();
        assert_eq!(rows.len(), 5, "one row per smoke seed");
    }
}
