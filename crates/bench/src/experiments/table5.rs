//! **Table 5** — distance of DistCLK's average tour from the reference
//! after short and long per-node budgets (each one tenth of Table 4's
//! CLK budgets, as in the paper).
//!
//! Paper shape: at every budget point DistCLK's excess is far below
//! CLK's from Table 4; many small instances are solved outright
//! ("OPT" cells).

use lk::KickStrategy;

use crate::experiments::common::{dist_config, mean_excess, reference_for, run_dist_many};
use crate::report::{fmt_excess, Report};
use crate::testbed::{small_testbed, Scale};

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new(
        "table5",
        "Table 5: DistCLK (8 nodes) average excess after short/long per-node budgets",
    );
    let long_calls = scale.dist_calls_per_node();
    let short_calls = (long_calls / 10).max(1);
    report.para(&format!(
        "{} runs; short = {} CLK calls/node (paper: 10 s), long = {} calls/node \
         (paper: 10^3 s); {} internal kicks per call; hypercube of {} nodes.",
        scale.runs, short_calls, long_calls, scale.kicks_per_call, scale.nodes
    ));

    let header = vec![
        "Instance",
        "Random short", "Random long",
        "Geometric short", "Geometric long",
        "Close short", "Close long",
        "Random-Walk short", "Random-Walk long",
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();

    let mut testbed = small_testbed(scale);
    if scale.runs <= 3 {
        testbed.truncate(4);
    }

    for t in &testbed {
        let inst = &t.inst;
        let mut per_strategy = Vec::new();
        let mut all: Vec<i64> = Vec::new();
        for (i, strategy) in KickStrategy::ALL.into_iter().enumerate() {
            let mut short_cfg = dist_config(scale, strategy, scale.nodes, 0);
            short_cfg.budget = lk::Budget::kicks(short_calls);
            let short_runs = run_dist_many(inst, &short_cfg, scale.runs, 0x5a + i as u64 * 131, None);

            let mut long_cfg = dist_config(scale, strategy, scale.nodes, 0);
            long_cfg.budget = lk::Budget::kicks(long_calls);
            let long_runs = run_dist_many(inst, &long_cfg, scale.runs, 0x5b + i as u64 * 131, None);

            let short_lens: Vec<i64> = short_runs.iter().map(|r| r.best_length).collect();
            let long_lens: Vec<i64> = long_runs.iter().map(|r| r.best_length).collect();
            all.extend(&short_lens);
            all.extend(&long_lens);
            per_strategy.push((strategy, short_lens, long_lens));
        }
        let reference = reference_for(inst, all.iter().copied());
        let mut row = vec![t.paper_name.to_string()];
        for (s, short_lens, long_lens) in &per_strategy {
            let es = mean_excess(&reference, short_lens);
            let el = mean_excess(&reference, long_lens);
            row.push(fmt_excess(es));
            row.push(fmt_excess(el));
            csv.push(format!(
                "{},{},{:.6},{:.6},{}",
                t.paper_name,
                s.name(),
                es,
                el,
                reference.label()
            ));
        }
        rows.push(row);
    }

    let header_refs: Vec<&str> = header.iter().map(|s| &**s).collect();
    report.table(&header_refs, &rows);
    report.series("excess", "instance,strategy,short_excess,long_excess,reference", csv);
    report
}
