//! **Churn experiment** (extension beyond the paper) — tour quality and
//! recovery behavior under node crashes and rejoins.
//!
//! The paper's cluster assumed stable membership for a whole run. This
//! experiment measures what the self-healing layer buys: for each seed
//! a [`ChurnSchedule`] kills 2 of the 8 nodes at early rounds and lets
//! one of them rejoin (with `BestRequest`/`BestReply` state resync),
//! then the degraded run is compared against the same seed with zero
//! churn. Expected shape: the network keeps terminating, surviving
//! tours stay valid, and the quality gap versus the clean run is
//! small — the hypercube's redundancy plus the repair clique keep
//! improvements flowing around the corpses.
//!
//! Artifacts: a per-seed CSV series and `churn_events.jsonl`, the
//! merged failure-handling event timeline (peer-down, rejoin, resync)
//! of the first seed, for offline inspection.

use distclk::{run_lockstep, run_lockstep_churn, ChurnSchedule, DistConfig};
use lk::Budget;
use p2p::Topology;
use tsp_core::{generate, NeighborLists};

use crate::experiments::common::mean;
use crate::report::Report;
use crate::testbed::Scale;

pub fn run(scale: &Scale) -> Report {
    run_mode(scale.size_factor < 1.0)
}

/// Run the churn sweep. `smoke` keeps the instance and budgets
/// CI-friendly; the full mode uses a paper-sized instance.
pub fn run_mode(smoke: bool) -> Report {
    let (cities, calls, seeds) = if smoke {
        (200usize, 14u64, 5u64)
    } else {
        (1_000, 60, 10)
    };
    let nodes = 8usize;
    let mut report = Report::new(
        "churn",
        format!(
            "Node churn: crashes, self-healing, rejoin with resync ({} mode)",
            if smoke { "smoke" } else { "full" }
        ),
    );
    report.para(&format!(
        "Each seed kills 2 of {nodes} nodes on a seeded schedule and \
         revives one (rejoin + state resync); the same seed is also run \
         with zero churn as the baseline. Runs use the deterministic \
         lockstep driver, so every row is exactly reproducible.",
    ));

    let inst = generate::uniform(cities, 1_000_000.0, 31);
    let nl = NeighborLists::build(&inst, 10);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut gaps = Vec::new();
    let mut first_events = Vec::new();
    for seed in 0..seeds {
        let cfg = DistConfig {
            nodes,
            topology: Topology::Hypercube,
            budget: Budget::kicks(calls),
            clk_kicks_per_call: 3,
            seed,
            ..Default::default()
        };
        let schedule = ChurnSchedule::seeded(seed, nodes, 2, 1);
        let churned = run_lockstep_churn(&inst, &nl, &cfg, &schedule);
        let clean = run_lockstep(&inst, &nl, &cfg);

        let aborted = churned.nodes.iter().filter(|n| n.aborted).count();
        let resyncs = churned.metrics.counter("node.resyncs");
        let gap = (churned.best_length - clean.best_length) as f64
            / clean.best_length.max(1) as f64
            * 100.0;
        gaps.push(gap);
        csv.push(format!(
            "{seed},{aborted},{resyncs},{},{},{:.3}",
            churned.best_length, clean.best_length, gap
        ));
        rows.push(vec![
            seed.to_string(),
            aborted.to_string(),
            resyncs.to_string(),
            churned.best_length.to_string(),
            clean.best_length.to_string(),
            format!("{gap:+.2}%"),
        ]);
        if seed == 0 {
            let keep = [
                "node.peer_down",
                "node.rejoin",
                "node.best_request",
                "node.best_reply",
                "node.resync",
                "node.resync_timeout",
            ];
            for n in &churned.nodes {
                first_events.extend(
                    n.obs_events
                        .iter()
                        .filter(|e| keep.contains(&e.kind.as_ref()))
                        .cloned(),
                );
            }
            first_events.sort_by_key(|e| e.t_ns);
        }
    }

    report.table(
        &[
            "Seed",
            "Aborted",
            "Resyncs",
            "Best (churn)",
            "Best (clean)",
            "Gap",
        ],
        &rows,
    );
    report.para(&format!(
        "Mean quality gap of the churned runs vs their clean baselines: \
         {:+.2}%.",
        mean(&gaps)
    ));
    report.series(
        "churn",
        "seed,aborted,resyncs,best_churn,best_clean,gap_pct",
        csv,
    );

    // Failure-handling timeline of seed 0 as JSONL, like the profile
    // experiment's event log.
    let path = Report::out_dir().join("churn_events.jsonl");
    let mut buf = Vec::new();
    if obs_api::write_jsonl(&mut buf, &first_events).is_ok() && std::fs::write(&path, &buf).is_ok()
    {
        report.para(&format!(
            "Failure-handling event log (seed 0): `{}` ({} events).",
            path.display(),
            first_events.len()
        ));
    } else {
        report.para("_Failed to write the JSONL churn event log._");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_churn_runs_and_renders() {
        let report = run_mode(true);
        assert!(report.markdown.contains("Node churn"));
        assert!(report.markdown.contains("Seed"));
        assert!(report.csv.iter().any(|(n, _, _)| n == "churn"));
        let (_, _, rows) = report.csv.iter().find(|(n, _, _)| n == "churn").unwrap();
        assert_eq!(rows.len(), 5, "one row per smoke seed");
    }
}
