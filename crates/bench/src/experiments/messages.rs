//! **§4 prelude** — message statistics of the distributed runs.
//!
//! The paper reports: ~84.9 broadcasts per 8-node run on sw24978, ~11
//! messages per node, most broadcasts early in the run, negligible
//! total communication. We reproduce every statistic from the shared
//! network counters and the per-node event logs.

use distclk::NodeEvent;
use lk::KickStrategy;

use crate::experiments::common::{dist_config, run_dist_many};
use crate::report::Report;
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new("messages", "Message statistics (paper §4 prelude)");
    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(256);
    let inst = generate::road_like(sized(4000), 19);
    let cfg = dist_config(scale, KickStrategy::RandomWalk(50), scale.nodes, 0x99);
    let runs = run_dist_many(&inst, &cfg, scale.runs, 0x99, None);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut total_broadcasts = 0u64;
    let mut first10_fracs: Vec<f64> = Vec::new();
    for (i, r) in runs.iter().enumerate() {
        let broadcasts = r.total_broadcasts();
        total_broadcasts += broadcasts;
        let (msgs, bytes, tours) = r.messages;
        // When (fraction of per-node budget) were the first 10 local
        // improvements broadcast?
        let mut times: Vec<f64> = r
            .nodes
            .iter()
            .flat_map(|n| {
                n.events.iter().filter_map(|e| match e {
                    NodeEvent::Improved {
                        secs, local: true, ..
                    } => Some(*secs),
                    _ => None,
                })
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let horizon = r
            .nodes
            .iter()
            .map(|n| n.seconds)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let first10 = times.iter().take(10).copied().collect::<Vec<_>>();
        let frac = first10.last().map(|t| t / horizon).unwrap_or(0.0);
        first10_fracs.push(frac);
        rows.push(vec![
            format!("run {i}"),
            broadcasts.to_string(),
            format!("{:.1}", broadcasts as f64 / scale.nodes as f64),
            msgs.to_string(),
            bytes.to_string(),
            format!("{:.1}%", frac * 100.0),
        ]);
        csv.push(format!("{i},{broadcasts},{msgs},{bytes},{tours},{frac:.4}"));
    }

    report.para(&format!(
        "{} runs of {} nodes on a road-like instance (n = {}). 'First-10 point' is \
         the fraction of the run's horizon at which the 10th tour broadcast had \
         happened — the paper observes the first 10 messages within the first ~4% of \
         the budget.",
        runs.len(),
        scale.nodes,
        inst.len()
    ));
    report.table(
        &[
            "Run",
            "Broadcasts",
            "Broadcasts/node",
            "Messages",
            "Wire bytes",
            "First-10 point",
        ],
        &rows,
    );
    report.para(&format!(
        "Average broadcasts per run: {:.1}; average first-10 point: {:.1}% of the run.",
        total_broadcasts as f64 / runs.len() as f64,
        100.0 * first10_fracs.iter().sum::<f64>() / first10_fracs.len().max(1) as f64
    ));
    report.series(
        "stats",
        "run,broadcasts,messages,bytes,tour_msgs,first10_frac",
        csv,
    );
    report
}
