//! **Table 3** — number of runs (out of `scale.runs`) that found the
//! optimum, per kicking strategy, for standalone CLK vs. the 8-node
//! distributed algorithm with one tenth of the per-node budget.
//!
//! Paper shape to reproduce: DistCLK succeeds on (almost) every
//! instance/strategy where CLK does, and solves the drill-plate
//! (`fl…`) instances that CLK fails on in 0/10 runs; Random kicking is
//! competitive on the small/easy instances but falls behind on
//! structured ones.

use lk::KickStrategy;

use crate::experiments::common::{dist_config, reference_for, run_clk_many, run_dist_many};
use crate::report::Report;
use crate::testbed::{small_testbed, Scale};

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new(
        "table3",
        "Table 3: runs that found the optimum (CLK vs DistCLK, per kicking strategy)",
    );
    report.para(&format!(
        "{} runs per cell; CLK budget {} kicks; DistCLK: {} nodes x {} kicks/node \
         (paper's 10:1 per-node budget ratio). 'Optimum' = known optimum for the \
         grid instance (matched exactly); other instances use the surrogate \
         best-known over all runs with a 0.03% acceptance band (EXPERIMENTS.md).",
        scale.runs,
        scale.clk_kicks,
        scale.nodes,
        scale.dist_kicks_per_node(),
    ));

    let header = vec![
        "Instance", "n",
        "Random CLK", "Random Dist",
        "Geometric CLK", "Geometric Dist",
        "Close CLK", "Close Dist",
        "Random-Walk CLK", "Random-Walk Dist",
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();

    // Quick mode trims the testbed to keep the suite fast.
    let mut testbed = small_testbed(scale);
    if scale.runs <= 3 {
        testbed.truncate(4);
    }

    for t in &testbed {
        let inst = &t.inst;
        let target = inst.known_optimum();
        let mut cells: Vec<(KickStrategy, usize, usize)> = Vec::new();
        let mut all_lengths: Vec<i64> = Vec::new();
        let mut per_strategy: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();

        for strategy in KickStrategy::ALL {
            let clk_runs = run_clk_many(
                inst,
                strategy,
                scale.clk_kicks,
                scale.runs,
                0xC1 + strategy_ix(strategy) as u64 * 1000,
                target,
            );
            let dist_cfg = dist_config(scale, strategy, scale.nodes, 0);
            let dist_runs = run_dist_many(
                inst,
                &dist_cfg,
                scale.runs,
                0xD1 + strategy_ix(strategy) as u64 * 1000,
                target,
            );
            let clk_lens: Vec<i64> = clk_runs.iter().map(|r| r.length).collect();
            let dist_lens: Vec<i64> = dist_runs.iter().map(|r| r.best_length).collect();
            all_lengths.extend(&clk_lens);
            all_lengths.extend(&dist_lens);
            per_strategy.push((clk_lens, dist_lens));
            cells.push((strategy, 0, 0)); // success counts filled below
        }

        let reference = reference_for(inst, all_lengths.iter().copied());
        let opt = reference.value();
        // Known optima are matched exactly (as in the paper). Surrogate
        // references (= the single best run over all 24 runs of this
        // instance) get a 0.03% acceptance band: demanding an exact
        // match to the global best would just reward whichever
        // configuration produced that one run.
        let threshold = match reference {
            crate::testbed::Reference::Optimum(v) => v,
            _ => opt + (opt as f64 * 0.0003) as i64,
        };
        for (i, (clk_lens, dist_lens)) in per_strategy.iter().enumerate() {
            cells[i].1 = clk_lens.iter().filter(|&&l| l <= threshold).count();
            cells[i].2 = dist_lens.iter().filter(|&&l| l <= threshold).count();
        }

        let mut row = vec![t.paper_name.to_string(), inst.len().to_string()];
        for &(_, clk_ok, dist_ok) in &cells {
            row.push(format!("{clk_ok}/{}", scale.runs));
            row.push(format!("{dist_ok}/{}", scale.runs));
        }
        rows.push(row);
        for &(s, clk_ok, dist_ok) in &cells {
            csv.push(format!(
                "{},{},{},{},{},{}",
                t.paper_name,
                inst.len(),
                s.name(),
                clk_ok,
                dist_ok,
                scale.runs
            ));
        }
    }

    let header_refs: Vec<&str> = header.iter().map(|s| &**s).collect();
    report.table(&header_refs, &rows);
    report.series(
        "successes",
        "instance,n,strategy,clk_success,dist_success,runs",
        csv,
    );
    report
}

fn strategy_ix(s: KickStrategy) -> usize {
    KickStrategy::ALL
        .iter()
        .position(|&x| x == s)
        .expect("strategy in ALL")
}
