//! `service` — solver-as-a-service: the multi-tenant job layer over
//! real TCP, under churn, with fairness and conformance contracts.
//!
//! A persistent [`distclk::SolverService`] cluster sits behind the
//! lifecycle hub's `JOB` command. A fleet of tenants submits
//! deadline- and kick-bounded jobs over real sockets (payloads mix
//! van Hemert-style evolver-hardened instances with uniform ones), a
//! worker is killed while every stream is live, and each client
//! records its improving-tour stream shape and terminal verdict.
//!
//! Contract checks riding along, all recorded in the `service` section
//! of `target/repro/BENCH_lk.json`:
//!
//! - **streams monotone** — every client's improvement stream is
//!   strictly decreasing and ends at the terminal tour;
//! - **churn survived** — every accepted job completes (counter
//!   identity `jobs_completed == jobs_accepted`) despite the mid-run
//!   worker kill, with at least one reassignment observed;
//! - **conformant** — a single service job is bit-identical to a
//!   direct [`distclk::run_over_transports`] run with the same
//!   seed/config (the conformance suite's identity, spot-checked
//!   end-to-end over TCP);
//! - **fairness** — a greedy tenant hammering past its flow budget is
//!   rejected at admission (`ERR` on the status line), and the
//!   rejections are exactly the overshoot.
//!
//! ```text
//! cargo run --release -p bench -- service            # full fleet
//! cargo run --release -p bench -- service --smoke    # CI-fast
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use distclk::{
    build_neighbors, hard_suite, points_to_json, run_over_transports, DistConfig, DoneReason,
    EvolveConfig, JobPayload, JobSpec, ServiceConfig, ServiceJobHandler, SolverService,
};
use lk::Budget;
use obs_api::kinds;
use p2p::hub::{submit_job, LifecycleHub};
use p2p::{InMemoryNetwork, Message, TcpConfig, Topology};
use tsp_core::generate;

use crate::report::Report;
use crate::testbed::Scale;

/// One tenant's view of its job: stream shape + terminal verdict.
struct JobRow {
    client: u64,
    job: u64,
    bound: String,
    improvements: usize,
    first_len: i64,
    final_len: i64,
    reason: u8,
    monotone: bool,
    secs: f64,
}

impl JobRow {
    /// Anytime gain: how much the stream improved on the construction
    /// tour before the bound tripped.
    fn gain_pct(&self) -> f64 {
        if self.first_len <= 0 {
            return 0.0;
        }
        (self.first_len - self.final_len) as f64 / self.first_len as f64 * 100.0
    }
}

/// Cheap CLK calls keep the fleet snappy; identical template on the
/// service and the direct conformance reference.
fn engine() -> DistConfig {
    DistConfig {
        clk_kicks_per_call: 3,
        ..Default::default()
    }
}

fn json_payload_of(inst: &tsp_core::Instance) -> JobPayload {
    let pts: Vec<(f64, f64)> = (0..inst.len())
        .map(|i| (inst.point(i).x, inst.point(i).y))
        .collect();
    JobPayload::Json(points_to_json(&pts))
}

/// Submit one job over TCP and drain its stream to the terminal frame.
fn run_client(
    addr: std::net::SocketAddr,
    client: u64,
    spec: JobSpec,
    bound: String,
    tcp: &TcpConfig,
) -> JobRow {
    let started = Instant::now();
    let (job, mut stream) = submit_job(addr, &spec.to_submit(client), tcp).expect("submit");
    let mut lengths: Vec<i64> = Vec::new();
    loop {
        match stream.next_frame().expect("stream frame") {
            Message::JobAccept { .. } => {}
            Message::JobImproved { length, .. } => lengths.push(length),
            Message::JobDone { reason, length, .. } => {
                let monotone = lengths.windows(2).all(|w| w[1] < w[0])
                    && lengths.last().is_some_and(|&l| l == length);
                return JobRow {
                    client,
                    job,
                    bound,
                    improvements: lengths.len(),
                    first_len: lengths.first().copied().unwrap_or(i64::MAX),
                    final_len: length,
                    reason,
                    monotone,
                    secs: started.elapsed().as_secs_f64(),
                };
            }
            other => panic!("client {client}: unexpected frame {other:?}"),
        }
    }
}

/// Single-job identity over the full TCP path: same payload, seed and
/// kick budget as a direct one-node `run_over_transports` run.
fn conformance_check(
    addr: std::net::SocketAddr,
    payload: &JobPayload,
    seed: u64,
    kicks: u64,
    tcp: &TcpConfig,
) -> bool {
    let inst = payload.parse().expect("conformance payload parses");
    let mut cfg = engine();
    cfg.nodes = 1;
    cfg.seed = seed;
    cfg.budget = Budget::kicks(kicks);
    let nl = build_neighbors(&inst, &cfg);
    let (eps, _) = InMemoryNetwork::build(1, cfg.topology);
    let reference = run_over_transports(&inst, &nl, &cfg, eps);

    let spec = JobSpec::new(payload.clone()).seed(seed).kicks(kicks);
    let row = run_client(addr, 500, spec, "conformance".into(), tcp);
    row.reason == DoneReason::Budget.code() && row.final_len == reference.best_length
}

/// Hammer the admission path past one tenant's flow budget; returns
/// `(accepted, rejected)` out of `attempts`.
fn fairness_probe(
    addr: std::net::SocketAddr,
    payload: &JobPayload,
    attempts: u32,
    tcp: &TcpConfig,
) -> (u32, u32) {
    let (mut accepted, mut rejected) = (0, 0);
    for i in 0..attempts {
        let spec = JobSpec::new(payload.clone()).seed(i as u64).kicks(1);
        match submit_job(addr, &spec.to_submit(999), tcp) {
            Ok((_, mut stream)) => {
                accepted += 1;
                // Drain to the terminal frame so the cluster is idle
                // again before the next attempt.
                loop {
                    if let Message::JobDone { .. } = stream.next_frame().expect("fairness stream") {
                        break;
                    }
                }
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("job rejected"),
                    "fairness probe failed with a non-admission error: {msg}"
                );
                rejected += 1;
            }
        }
    }
    (accepted, rejected)
}

/// Dispatcher entry (registry + `bench all`): smoke below full scale.
pub fn run(scale: &Scale) -> Report {
    run_mode(scale.size_factor < 1.0)
}

/// Run the fleet. `smoke` keeps instance sizes and deadlines
/// CI-friendly; full mode runs a larger fleet on bigger instances.
pub fn run_mode(smoke: bool) -> Report {
    let (workers, tenants, deadline_ms, kick_budget, kill_at_ms) = if smoke {
        (3usize, 8u64, 900u64, 5u64, 250u64)
    } else {
        (4, 16, 3_000, 12, 800)
    };
    let flow_limit = 3u64;
    let seed = 4242u64;

    // Adversarial fixtures (deterministic under the seed) + a uniform
    // baseline: regressions should surface on the hard ones.
    let evolve = if smoke {
        EvolveConfig {
            cities: 24,
            generations: 2,
            offspring: 2,
            kicks: 3,
            ..Default::default()
        }
    } else {
        EvolveConfig::default()
    };
    let hard = hard_suite(&evolve, 42, 2);
    let uniform = generate::uniform(if smoke { 48 } else { 200 }, 10_000.0, 900);
    let payloads = [
        json_payload_of(&hard[0].0),
        json_payload_of(&hard[1].0),
        json_payload_of(&uniform),
    ];

    let svc = Arc::new(SolverService::start(ServiceConfig {
        workers,
        engine: engine(),
        default_limit: flow_limit,
        ..Default::default()
    }));
    let mut hub = LifecycleHub::start("127.0.0.1:0", 2, Topology::Ring).expect("hub");
    ServiceJobHandler::attach(Arc::clone(&svc), &hub);
    let addr = hub.addr();
    let tcp = TcpConfig::default();

    // The fleet: every third tenant is kick-bounded, the rest ride a
    // wall-clock deadline; payloads rotate over the fixture set.
    let fleet_started = Instant::now();
    let clients: Vec<_> = (0..tenants)
        .map(|client| {
            let payload = payloads[client as usize % payloads.len()].clone();
            let tcp = tcp.clone();
            std::thread::spawn(move || {
                let (spec, bound) = if client % 3 == 2 {
                    (
                        JobSpec::new(payload).seed(client).kicks(kick_budget),
                        format!("kicks({kick_budget})"),
                    )
                } else {
                    (
                        JobSpec::new(payload)
                            .seed(client)
                            .deadline(Duration::from_millis(deadline_ms)),
                        format!("deadline({deadline_ms}ms)"),
                    )
                };
                run_client(addr, client, spec, bound, &tcp)
            })
        })
        .collect();

    // All streams live; crash worker 1 under them. Worker 1 is placed
    // first by the least-loaded scheduler (lowest-id ties), so however
    // the concurrent TCP submissions interleave it is guaranteed to
    // carry deadline-bounded work that is still in flight at the kill.
    // (Killing the *last*-placed worker would be flaky: round-robin
    // placement can alias with the kick-bounded tenants, leaving that
    // worker idle once the fast kick jobs drain.)
    std::thread::sleep(Duration::from_millis(kill_at_ms));
    svc.kill_worker(1);

    let mut rows: Vec<JobRow> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    rows.sort_by_key(|r| r.client);
    let fleet_secs = fleet_started.elapsed().as_secs_f64();

    // Post-churn contracts on the degraded cluster.
    let conformant = conformance_check(addr, &payloads[2], 12_345, 6, &tcp);
    let fairness_attempts = flow_limit as u32 + 2;
    let (fair_accepted, fair_rejected) = fairness_probe(addr, &payloads[2], fairness_attempts, &tcp);

    let snapshot = svc.obs().snapshot();
    let submitted = snapshot.counter(kinds::C_SVC_SUBMITTED);
    let accepted = snapshot.counter(kinds::C_SVC_ACCEPTED);
    let completed = snapshot.counter(kinds::C_SVC_COMPLETED);
    let expired = snapshot.counter(kinds::C_SVC_EXPIRED);
    let reassigned = snapshot.counter(kinds::C_SVC_REASSIGNED);
    let improvements = snapshot.counter(kinds::C_SVC_IMPROVEMENTS);

    let streams_monotone = rows.iter().all(|r| r.monotone);
    let churn_survived = completed == accepted && reassigned >= 1;

    let mut report = Report::new(
        "service",
        format!(
            "Solver-as-a-service: {tenants} tenants over TCP ({} fleet)",
            if smoke { "smoke" } else { "full" }
        ),
    );
    report.para(&format!(
        "{workers}-worker service behind the lifecycle hub's `JOB` \
         command; {tenants} tenants over real sockets (payloads rotate \
         over 2 evolver-hardened instances and a uniform one), worker \
         1 killed at t = {kill_at_ms} ms with every stream live. \
         Fleet drained in {fleet_secs:.2} s."
    ));

    let mut table = Vec::new();
    let mut csv = Vec::new();
    for r in &rows {
        table.push(vec![
            r.client.to_string(),
            r.bound.clone(),
            r.improvements.to_string(),
            r.first_len.to_string(),
            r.final_len.to_string(),
            format!("{:.2}%", r.gain_pct()),
            DoneReason::from_code(r.reason).label().to_string(),
            r.monotone.to_string(),
            format!("{:.2}", r.secs),
        ]);
        csv.push(format!(
            "{},{},{},{},{},{:.4},{},{},{:.4}",
            r.client,
            r.job,
            r.bound,
            r.improvements,
            r.first_len,
            r.gain_pct(),
            r.reason,
            r.monotone,
            r.secs
        ));
    }
    report.table(
        &[
            "client", "bound", "improvements", "first len", "final len", "anytime gain",
            "reason", "monotone", "secs",
        ],
        &table,
    );
    report.series(
        "tenants",
        "client,job,bound,improvements,first_len,gain_pct,reason,monotone,secs",
        csv,
    );
    report.para(&format!(
        "Counters: {submitted} submitted, {accepted} accepted, \
         {completed} completed, {expired} expired, {reassigned} \
         reassigned, {improvements} streamed improvements. Conformance \
         (TCP job vs direct engine, seed 12345): {conformant}. Fairness \
         (limit {flow_limit}, {fairness_attempts} attempts by one \
         tenant): {fair_accepted} accepted, {fair_rejected} rejected."
    ));

    assert!(streams_monotone, "a tenant observed a non-monotone stream");
    assert!(
        churn_survived,
        "accepted-job loss under churn: {completed}/{accepted} completed, {reassigned} reassigned"
    );
    assert!(conformant, "service job diverged from the direct engine");
    assert_eq!(
        fair_rejected,
        fairness_attempts - flow_limit as u32,
        "fairness rejections must be exactly the overshoot"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"service\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"tenants\": {tenants},");
    let _ = writeln!(json, "  \"jobs_submitted\": {submitted},");
    let _ = writeln!(json, "  \"jobs_accepted\": {accepted},");
    let _ = writeln!(json, "  \"jobs_completed\": {completed},");
    let _ = writeln!(json, "  \"jobs_expired\": {expired},");
    let _ = writeln!(json, "  \"jobs_reassigned\": {reassigned},");
    let _ = writeln!(json, "  \"improvements\": {improvements},");
    let _ = writeln!(json, "  \"streams_monotone\": {streams_monotone},");
    let _ = writeln!(json, "  \"churn_survived\": {churn_survived},");
    let _ = writeln!(json, "  \"conformant\": {conformant},");
    let _ = writeln!(
        json,
        "  \"fairness\": {{\"limit\": {flow_limit}, \"attempts\": {fairness_attempts}, \
         \"accepted\": {fair_accepted}, \"rejections\": {fair_rejected}}},"
    );
    let _ = writeln!(json, "  \"fairness_rejections\": {fair_rejected},");
    let _ = writeln!(json, "  \"fleet_secs\": {fleet_secs:.6},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"client\": {}, \"job\": {}, \"bound\": \"{}\", \
             \"improvements\": {}, \"first_len\": {}, \"final_len\": {}, \
             \"gain_pct\": {:.4}, \"reason\": {}, \"monotone\": {}, \
             \"secs\": {:.6}}}{}",
            r.client,
            r.job,
            r.bound,
            r.improvements,
            r.first_len,
            r.final_len,
            r.gain_pct(),
            r.reason,
            r.monotone,
            r.secs,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match crate::report::merge_bench_json("service", &json) {
        Ok(path) => report.para(&format!(
            "Machine-readable: `{}` (section `service`).",
            path.display()
        )),
        Err(e) => report.para(&format!("_Failed to write BENCH_lk.json: {e}._")),
    }

    hub.stop();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_runs_and_writes_json() {
        let report = run_mode(true);
        assert!(report.markdown.contains("anytime gain"));
        assert!(report.csv.iter().any(|(n, _, _)| n == "tenants"));
        let json = std::fs::read_to_string(Report::out_dir().join("BENCH_lk.json"))
            .expect("BENCH_lk.json written");
        assert!(json.contains("\"service\":"));
        assert!(json.contains("\"jobs_accepted\""));
        assert!(json.contains("\"jobs_completed\""));
        assert!(json.contains("\"streams_monotone\": true"));
        assert!(json.contains("\"churn_survived\": true"));
        assert!(json.contains("\"conformant\": true"));
        assert!(json.contains("\"fairness_rejections\": 2"));
    }
}
