//! **Table 2** — comparison with other heuristic TSP solver families,
//! normalized by the machine calibration factor (§4.3):
//!
//! - **LKH** → our `lkh_lite` (α-nearness LK): better final tours,
//!   much longer time.
//! - **Walshaw's multilevel CLK** → our `multilevel`: fast, final
//!   quality below DistCLK's first-iteration quality.
//! - **Cook & Seymour tour merging** → our `tour_merge` over 10 CLK
//!   tours: excellent quality, mid-range time.
//! - **DistCLK** — per the paper: time is per-node CPU time × nodes.
//!
//! Paper shape: DistCLK needs more time on small instances but the
//! ratio shifts in its favour as instances grow.

use lk::lkh_lite::{lkh_lite, LkhLiteConfig};
use lk::multilevel::{multilevel_clk, MultilevelConfig};
use lk::tour_merge::merge_tours;
use lk::KickStrategy;

use crate::calibrate::normalization_factor;
use crate::experiments::common::{dist_config, reference_for, run_clk_many, run_dist_many};
use crate::report::{fmt_excess, fmt_secs, Report};
use crate::testbed::Scale;
use tsp_core::generate;

pub fn run(scale: &Scale) -> Report {
    let mut report = Report::new(
        "table2",
        "Table 2: normalized comparison with LKH-lite / multilevel CLK / tour merging",
    );
    let factor = normalization_factor();
    report.para(&format!(
        "Machine normalization factor {factor:.3} (fixed CLK workload vs. the recorded \
         reference; the DIMACS methodology in miniature). DistCLK time = per-node \
         seconds x {} nodes, as in the paper.",
        scale.nodes
    ));

    let header = [
        "Instance",
        "LKH-lite dist / time",
        "Multilevel dist / time",
        "TourMerge dist / time",
        "DistCLK dist / time",
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();

    let sized = |base: usize| ((base as f64 * scale.size_factor) as usize).max(128);
    let instances = vec![
        ("pr2392*", generate::pcb_like(sized(1200), 14)),
        ("fl3795*", generate::drill_plate(sized(1900), 16)),
        ("fnl4461*", generate::uniform(sized(2200), 1_000_000.0, 17)),
    ];

    for (name, inst) in &instances {
        // LKH-lite.
        let lkh_cfg = LkhLiteConfig {
            trials: (scale.clk_kicks / 4).max(50),
            seed: 21,
            ..Default::default()
        };
        let lkh_start = std::time::Instant::now();
        let lkh = lkh_lite(inst, &lkh_cfg, &lk::Budget::kicks(lkh_cfg.trials));
        let lkh_secs = lkh_start.elapsed().as_secs_f64();

        // Multilevel.
        let ml_start = std::time::Instant::now();
        let ml = multilevel_clk(inst, &MultilevelConfig::default(), 22);
        let ml_secs = ml_start.elapsed().as_secs_f64();

        // Tour merging over 10 independent CLK tours.
        let tm_start = std::time::Instant::now();
        let parents = run_clk_many(
            inst,
            KickStrategy::Geometric(12),
            (scale.clk_kicks / 10).max(20),
            10,
            23,
            None,
        );
        let parent_tours: Vec<_> = parents.into_iter().map(|r| r.tour).collect();
        let tm_tour = merge_tours(inst, &parent_tours);
        let tm_len = tm_tour.length(inst);
        let tm_secs = tm_start.elapsed().as_secs_f64();

        // DistCLK.
        let cfg = dist_config(scale, KickStrategy::RandomWalk(50), scale.nodes, 24);
        let dist = run_dist_many(inst, &cfg, 1, 24, None).remove(0);
        // Lockstep runs the whole network on one thread, so its wall
        // time IS the total CPU over all nodes — the paper's "per-node
        // CPU time x 8" quantity.
        let dist_secs = dist.wall_seconds;

        let reference = reference_for(
            inst,
            [lkh.clk.length, ml.length, tm_len, dist.best_length],
        );
        let cell = |len: i64, secs: f64| {
            format!("{} / {}", fmt_excess(reference.excess(len)), fmt_secs(secs * factor))
        };
        rows.push(vec![
            name.to_string(),
            cell(lkh.clk.length, lkh_secs),
            cell(ml.length, ml_secs),
            cell(tm_len, tm_secs),
            cell(dist.best_length, dist_secs),
        ]);
        csv.push(format!(
            "{},{},{:.4},{},{:.4},{},{:.4},{},{:.4}",
            name,
            lkh.clk.length,
            lkh_secs * factor,
            ml.length,
            ml_secs * factor,
            tm_len,
            tm_secs * factor,
            dist.best_length,
            dist_secs * factor
        ));
    }

    report.table(&header, &rows);
    report.series(
        "comparison",
        "instance,lkh_len,lkh_nsecs,ml_len,ml_nsecs,tm_len,tm_nsecs,dist_len,dist_nsecs",
        csv,
    );
    report
}
