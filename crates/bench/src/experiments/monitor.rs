//! **Live monitor mode** (extension beyond the paper) — drives the
//! distributed telemetry plane end-to-end on a real TCP deployment.
//!
//! A [`LifecycleHub`] is started with its live [`TelemetryStore`];
//! nodes bootstrap through it over real sockets and solve a
//! known-optimum grid while shipping telemetry frames to the
//! lifecycle-hub holder (node 0), which merges them into the hub's
//! store. Meanwhile this thread scrapes `METRICS` and `STATUS` over
//! TCP *mid-run*, exactly like an external Prometheus scraper or a
//! human with `nc`, and records a per-node convergence timeline.
//!
//! Artifacts written to `target/repro/`:
//!
//! - `monitor.md` — the report (scrape counts, stall totals, final
//!   gap, cross-node span correlation);
//! - `monitor_timeline.csv` — one row per (scrape, node): live best
//!   length, gap vs the known optimum, iteration rate, stall flag,
//!   RTT and clock-offset estimates;
//! - `monitor_trace.json` — Chrome trace-event JSON (open in Perfetto
//!   or `chrome://tracing`) of every shipped event and span,
//!   re-stamped onto the hub's clock via the per-node offsets the
//!   store estimated at ingest.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use distclk::{run_over_transports_telemetry, DistConfig, TelemetryAttach};
use lk::Budget;
use obs_api::Obs;
use p2p::hub::{join_via_hub, scrape_metrics, scrape_status, LifecycleHub};
use p2p::tcp::TcpEndpoint;
use p2p::{TcpConfig, Topology};
use tsp_core::generate;

use crate::report::Report;
use crate::testbed::Scale;

pub fn run(scale: &Scale) -> Report {
    run_mode(scale.size_factor < 1.0)
}

/// Run the live monitor. `smoke` keeps the instance and budget
/// CI-friendly; the full mode watches a 1024-city solve.
pub fn run_mode(smoke: bool) -> Report {
    // Grids small enough to finish fast but big enough that no node's
    // *initial* CLK pass lands on the optimum — cooperation (broadcast
    // → adopt) must happen live, mid-run, where the scraper sees it.
    let (side, calls, kicks_per_call, scrape_every_ms) = if smoke {
        (22usize, 150u64, 2u64, 10u64)
    } else {
        (40, 400, 10, 50)
    };
    let nodes = 4usize;
    // Complete graph: telemetry frames are one hop (no routing), so
    // every node needs a direct edge to the hub holder.
    let topology = Topology::Complete;

    let mut report = Report::new(
        "monitor",
        format!(
            "Live monitor: mid-run telemetry scrape over TCP ({} mode)",
            if smoke { "smoke" } else { "full" }
        ),
    );
    report.para(
        "Nodes solve a known-optimum grid over real sockets while \
         shipping metric deltas, events, and convergence state to the \
         lifecycle-hub holder; this thread scrapes the hub's METRICS \
         and STATUS commands mid-run and exports the merged timeline.",
    );

    let inst = generate::grid_known_optimum(side, side, 100.0);
    let optimum = inst.known_optimum().expect("grid optimum is known");
    let cfg = DistConfig {
        nodes,
        topology,
        budget: Budget::kicks(calls),
        clk_kicks_per_call: kicks_per_call,
        telemetry_every: 1,
        // Rotate construction heuristics so nodes start from distinct
        // tours: early broadcasts then genuinely improve peers, and
        // the trace shows cross-node adoptions (spans sharing one
        // broadcast id on several tracks).
        diversify_construction: true,
        seed: 42,
        ..Default::default()
    };
    let nl = distclk::build_neighbors(&inst, &cfg);

    // The hub's scrape server and the solve share one store: frames
    // cross the node transport to node 0, node 0 ingests into this
    // Arc, and TCP scrapes on the hub port read the same view.
    let mut hub = LifecycleHub::start_with("127.0.0.1:0", nodes, topology, Obs::for_node(1000))
        .expect("start lifecycle hub");
    let store = hub.telemetry();
    store.set_reference(Some(optimum));

    let mut endpoints = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let mut ep = TcpEndpoint::bind(usize::MAX, "127.0.0.1:0").expect("bind node endpoint");
        let info = join_via_hub(hub.addr(), ep.listen_addr()).expect("join via hub");
        ep.set_id(info.id);
        for (nid, addr) in &info.neighbors {
            ep.connect_to(*nid, *addr).expect("dial neighbor");
        }
        endpoints.push(ep);
    }

    let net_cfg = TcpConfig::default();
    let hub_addr = hub.addr();
    let mut timeline: Vec<String> = Vec::new();
    let mut scrape_ok = 0u64;
    let mut last_metrics = String::new();
    let started = Instant::now();
    let result = std::thread::scope(|scope| {
        let solver = scope.spawn(|| {
            run_over_transports_telemetry(
                &inst,
                &nl,
                &cfg,
                endpoints,
                Some((Arc::clone(&store), TelemetryAttach::Node(0))),
            )
        });
        while !solver.is_finished() {
            let t = started.elapsed().as_secs_f64();
            if let (Ok(metrics), Ok(status)) = (
                scrape_metrics(hub_addr, &net_cfg),
                scrape_status(hub_addr, &net_cfg),
            ) {
                let rows = status_to_rows(t, &status);
                if !rows.is_empty() {
                    scrape_ok += 1;
                    timeline.extend(rows);
                    last_metrics = metrics;
                }
            }
            std::thread::sleep(Duration::from_millis(scrape_every_ms));
        }
        solver.join().expect("solver thread panicked")
    });
    let wall = started.elapsed().as_secs_f64();

    // Final scrape so the timeline always ends on the converged state
    // (and the smoke run has rows even if the solve outpaced the
    // scraper).
    if let Ok(status) = scrape_status(hub_addr, &net_cfg) {
        timeline.extend(status_to_rows(wall, &status));
    }
    if let Ok(metrics) = scrape_metrics(hub_addr, &net_cfg) {
        last_metrics = metrics;
    }

    // Chrome trace export: events were re-stamped onto the hub's
    // timeline at ingest (half-RTT clock-offset estimate per node),
    // so the export is cross-node causally ordered as-is.
    let events = store.events();
    let trace = obs_api::chrome_trace_json(&events);
    let trace_path = Report::out_dir().join("monitor_trace.json");
    std::fs::write(&trace_path, &trace).expect("write trace.json");

    // Cross-node span correlation: groups of `node.round` spans from
    // different nodes sharing one broadcast id — a tour migration.
    let mut by_bcast: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    for e in &events {
        if e.field_u64("dur_ns").is_some() {
            if let Some(b) = e.field_u64("bcast") {
                by_bcast.entry(b).or_default().insert(e.node);
            }
        }
    }
    let cross_node_spans = by_bcast.values().filter(|s| s.len() >= 2).count();

    let reporting = store.nodes().len();
    let merged = store.merged_snapshot();
    let stalls = merged.counter(obs_api::kinds::C_STALLS);
    let frames = merged.counter("telemetry.frames");
    let gap = (result.best_length - optimum) as f64 * 100.0 / optimum as f64;
    report.para(&format!(
        "{side}x{side} grid (optimum {optimum}), {nodes} nodes over TCP, \
         {calls} CLK calls each: finished at {} ({gap:+.3}% vs optimum) \
         in {wall:.2}s.",
        result.best_length
    ));
    report.para(&format!(
        "Telemetry: nodes_reporting={reporting} frames={frames} \
         scrape_ok={scrape_ok} stalls={stalls} \
         cross_node_spans={cross_node_spans} \
         events_exported={} trace={}",
        events.len(),
        trace_path.display(),
    ));
    if !obs_api::ENABLED {
        report.para(
            "Note: built without the obs feature — events and spans are \
             compiled out, so the trace is empty; metric shipping and \
             the STATUS convergence view still work.",
        );
    }
    // A taste of the Prometheus exposition for the report.
    let scrape_excerpt: Vec<&str> = last_metrics
        .lines()
        .filter(|l| l.starts_with("telemetry_") || l.starts_with("node_clk_calls"))
        .collect();
    if !scrape_excerpt.is_empty() {
        report.para(&format!("METRICS excerpt:\n```\n{}\n```", scrape_excerpt.join("\n")));
    }
    report.series(
        "timeline",
        "t_secs,node,best,gap_pct,rate,stalled,rtt_ns,offset_ns,clk_calls",
        timeline,
    );
    hub.stop();
    report
}

/// Parse one `STATUS` body into timeline CSV rows (one per node line).
/// Line shape: `NODE <id> BEST <len> GAP <pct|-> RATE <r> STALLED <s>
/// RTT <ns> OFFSET <ns> CALLS <n>`.
fn status_to_rows(t: f64, status: &str) -> Vec<String> {
    status
        .lines()
        .filter_map(|line| {
            let tok: Vec<&str> = line.split_whitespace().collect();
            if tok.len() < 16 || tok[0] != "NODE" {
                return None;
            }
            Some(format!(
                "{t:.3},{},{},{},{},{},{},{},{}",
                tok[1], tok[3], tok[5], tok[7], tok[9], tok[11], tok[13], tok[15]
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_monitor_scrapes_live_and_exports_artifacts() {
        let report = run_mode(true);
        assert!(report.markdown.contains("Live monitor"));
        assert!(report.markdown.contains("nodes_reporting=4"));
        // The scrape loop must have caught the run in flight at least
        // once: the budget gives the solve ample wall time vs the
        // 10 ms scrape cadence.
        assert!(
            report.markdown.contains("scrape_ok=") && !report.markdown.contains("scrape_ok=0 "),
            "no successful mid-run scrape:\n{}",
            report.markdown
        );
        let (_, header, rows) = report
            .csv
            .iter()
            .find(|(n, _, _)| n == "timeline")
            .expect("timeline series");
        assert!(header.starts_with("t_secs,node,best"));
        assert!(!rows.is_empty(), "empty convergence timeline");
        let trace = std::fs::read_to_string(Report::out_dir().join("monitor_trace.json"))
            .expect("trace.json written");
        // JSON-array flavor of the trace-event format.
        assert!(trace.trim_start().starts_with('['), "{trace}");
        if obs_api::ENABLED {
            assert!(trace.contains("\"ph\":\"X\""), "no complete (span) events");
            assert!(trace.contains("node.round"), "no round spans in trace");
        }
    }

    #[test]
    fn status_parser_extracts_node_rows() {
        let body = "NODE 0 BEST 14400 GAP 0.0000 RATE 12.50 STALLED 0 RTT 180000 OFFSET -250 CALLS 37\nMOVED 3\n";
        let rows = status_to_rows(1.5, body);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], "1.500,0,14400,0.0000,12.50,0,180000,-250,37");
    }
}
